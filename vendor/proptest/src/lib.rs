//! Offline stand-in for `proptest`.
//!
//! Implements the surface this workspace's property tests use:
//! [`Strategy`] with `prop_map` / `prop_flat_map`, integer-range and
//! tuple strategies, [`Just`], [`collection::vec`], [`any`] (including
//! `prop::sample::Index`), [`ProptestConfig::with_cases`], and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case
//! reports its case number and the test's fixed seed — rerunning the
//! test replays it exactly), and the value stream is seeded from the
//! test's module path + name, so runs are fully deterministic without
//! a persistence file.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Value`.
    ///
    /// Unlike the real trait there is no `ValueTree`/shrinking layer:
    /// a strategy is just a deterministic sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn gen(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to pick a dependent
        /// follow-up strategy, then draws from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn gen(&self, rng: &mut TestRng) -> S::Value {
            (**self).gen(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn gen(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.gen(rng)).gen(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub use strategy::{Just, Strategy};

/// The generator handed to strategies. Deterministic per test.
pub type TestRng = StdRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $bits:expr),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8 => 8, u16 => 16, u32 => 32, u64 => 64, usize => 64, i8 => 8, i16 => 16, i32 => 32, i64 => 64, isize => 64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A position drawn uniformly from a collection of as-yet-unknown
    /// length: call [`Index::index`] with the length to resolve it.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves to a position in `0..len`.
        ///
        /// # Panics
        /// If `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            // Multiply-shift keeps the choice uniform across `len`.
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rand::RngCore::next_u64(rng))
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Accepted size arguments for [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end_excl: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { start: r.start, end_excl: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { start: *r.start(), end_excl: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end_excl: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end_excl {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end_excl)
            };
            (0..len).map(|_| self.element.gen(rng)).collect()
        }
    }
}

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic per-test seed: FNV-1a over the test's full path.
pub fn rng_for_test(full_name: &str) -> TestRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in full_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, TestCaseError,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, e.g.
/// `proptest! { #[test] fn p(x in 0u8..8) { prop_assert!(x < 8); } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let ($($arg,)+) = $crate::Strategy::gen(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u8..16, (a, b) in (1u32..=4, 10usize..20)) {
            prop_assert!(x < 16);
            prop_assert!((1..=4).contains(&a));
            prop_assert!((10..20).contains(&b), "b out of range: {}", b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn maps_and_collections(
            v in prop::collection::vec(0u32..100, 3..6),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
            let chosen = v[pick.index(v.len())];
            prop_assert!(chosen < 100);
            let doubled = Just(7u32).prop_map(|n| n * 2).prop_flat_map(|n| n..n + 1);
            let n = crate::Strategy::gen(&doubled, &mut crate::rng_for_test("inner"));
            prop_assert_eq!(n, 14);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng_for_test("x::y");
        let mut b = crate::rng_for_test("x::y");
        let s = crate::collection::vec(0u64..1_000_000, 8..9);
        assert_eq!(crate::Strategy::gen(&s, &mut a), crate::Strategy::gen(&s, &mut b));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        // No `#[test]` on the inner fn: it is invoked directly (an
        // attribute here would be inert and trip `unnameable_test_items`).
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
