//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input by walking the raw `TokenStream` (no
//! `syn`/`quote`, which are equally unfetchable offline) and emits an
//! `impl serde::Serialize` producing a `serde::Json` tree with serde's
//! default shape: structs → objects in field order, newtype structs →
//! transparent, tuple structs → arrays, unit enum variants → strings,
//! newtype variants → `{"Variant": inner}`, tuple variants →
//! `{"Variant": [..]}`, struct variants → `{"Variant": {..}}`.
//! `#[serde(skip)]` on a named field omits it.
//!
//! Limitations (checked against this workspace, which satisfies them):
//! no generic type parameters on derived types, and no other
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the offline stand-in's Json-tree form).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::UnitStruct => "::serde::Json::Null".to_owned(),
        ItemKind::TupleStruct(arity) => tuple_struct_body(*arity),
        ItemKind::NamedStruct(fields) => named_fields_expr(fields, "&self."),
        ItemKind::Enum(variants) => enum_body(&item.name, variants),
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_json(&self) -> ::serde::Json {{ {} }}\n\
         }}",
        item.name, body
    )
    .parse()
    .expect("serde_derive stub generated invalid Rust")
}

/// Accepts `#[derive(Deserialize)]` and emits the marker impl. Nothing
/// in the workspace deserializes into typed values (only untyped
/// `serde_json::Value`), so no decoding code is generated.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {} {{}}", item.name)
        .parse()
        .expect("serde_derive stub generated invalid Rust")
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn tuple_struct_body(arity: usize) -> String {
    match arity {
        0 => "::serde::Json::Null".to_owned(),
        1 => "::serde::Serialize::to_json(&self.0)".to_owned(),
        n => {
            let items: Vec<String> =
                (0..n).map(|i| format!("::serde::Serialize::to_json(&self.{i})")).collect();
            format!("::serde::Json::Array(vec![{}])", items.join(", "))
        }
    }
}

/// `{"f1": .., "f2": ..}` over named fields; `access` is the prefix
/// applied to each field name (`&self.` in struct impls, `` for
/// variant bindings which are already references).
fn named_fields_expr(fields: &[String], access: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_json({access}{f}))"))
        .collect();
    format!("::serde::Json::Object(vec![{}])", pairs.join(", "))
}

fn enum_body(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                VariantFields::Unit => {
                    format!("{name}::{vname} => ::serde::Json::Str(\"{vname}\".to_string())")
                }
                VariantFields::Tuple(1) => format!(
                    "{name}::{vname}(__f0) => ::serde::Json::Object(vec![(\
                         \"{vname}\".to_string(), ::serde::Serialize::to_json(__f0))])"
                ),
                VariantFields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let items: Vec<String> =
                        binds.iter().map(|b| format!("::serde::Serialize::to_json({b})")).collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Json::Object(vec![(\
                             \"{vname}\".to_string(), ::serde::Json::Array(vec![{}]))])",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                VariantFields::Named(fields) => {
                    let inner = named_fields_expr(fields, "");
                    format!(
                        "{name}::{vname} {{ {} }} => ::serde::Json::Object(vec![(\
                             \"{vname}\".to_string(), {inner})])",
                        fields.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(",\n"))
}

// ---- token-stream parsing ----------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility to the `struct` / `enum` keyword.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // #[...]
            TokenTree::Ident(id) if *id.to_string() == *"struct" => {
                let name = ident_at(&tokens, i + 1);
                return Item { name, kind: parse_struct_kind(&tokens, i + 2) };
            }
            TokenTree::Ident(id) if *id.to_string() == *"enum" => {
                let name = ident_at(&tokens, i + 1);
                return Item { name, kind: parse_enum_kind(&tokens, i + 2) };
            }
            _ => i += 1, // pub, pub(...), etc.
        }
    }
    panic!("serde_derive stub: no struct or enum found in derive input");
}

fn ident_at(tokens: &[TokenTree], i: usize) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, found {other:?}"),
    }
}

fn parse_struct_kind(tokens: &[TokenTree], i: usize) -> ItemKind {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            ItemKind::NamedStruct(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            ItemKind::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
        other => panic!(
            "serde_derive stub: generic or unsupported struct shape at {other:?} \
             (generics are not supported — this workspace derives none)"
        ),
    }
}

/// Parses `name: Type, ...` from a brace group, honouring
/// `#[serde(skip)]` and tracking `<...>` depth so commas inside
/// generic types don't split fields. `()`/`[]`/`{}` arrive as single
/// `Group` tokens, so only angle brackets need manual depth counting.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Field attributes.
        let mut skip = false;
        while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
            (tokens.get(i), tokens.get(i + 1))
        {
            if p.as_char() != '#' {
                break;
            }
            if attr_is_serde_skip(g.stream()) {
                skip = true;
            }
            i += 2;
        }
        // Visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if *id.to_string() == *"pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1; // pub(crate) and friends
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        let name = name.to_string();
        i += 1;
        // `:` then the type, up to a comma at angle depth 0.
        debug_assert!(matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'));
        i += 1;
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        if !skip {
            fields.push(name);
        }
    }
    fields
}

/// Counts comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        saw_any = true;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_enum_kind(tokens: &[TokenTree], i: usize) -> ItemKind {
    let Some(TokenTree::Group(g)) = tokens.get(i) else {
        panic!("serde_derive stub: generic enums are not supported");
    };
    let body: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0;
    while j < body.len() {
        // Variant attributes (doc comments etc.).
        while matches!(&body.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            j += 2;
        }
        let Some(TokenTree::Ident(name)) = body.get(j) else { break };
        let name = name.to_string();
        j += 1;
        let fields = match body.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                j += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                j += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip to the comma separating variants (covers discriminants).
        while let Some(tok) = body.get(j) {
            j += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    ItemKind::Enum(variants)
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if *id.to_string() == *"serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(id) if *id.to_string() == *"skip")),
        _ => false,
    }
}
