//! Offline stand-in for `criterion`.
//!
//! Same macro and builder surface as the real crate for the benches in
//! this workspace (`benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`,
//! `criterion_group!`/`criterion_main!`), but measurement is a plain
//! calibrated wall-clock loop: per benchmark it auto-scales the
//! iteration count to a ~¼-second budget and reports the mean
//! nanoseconds per iteration on stdout as
//! `bench: <group>/<id> ... <mean> ns/iter (<iters> iters)`.
//! No statistics, no HTML report, no saved baselines.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target number of measurement samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs `routine` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.0, &mut routine);
        self
    }

    /// Like [`Self::bench_function`], passing `input` to the routine.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.0, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Ends the group. (The real crate finalises reports here; the
    /// stand-in prints per-benchmark lines eagerly, so this is a no-op
    /// kept for API compatibility.)
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { sample_size: self.sample_size, result: None };
        routine(&mut bencher);
        if let Some(m) = bencher.result {
            println!(
                "bench: {}/{} ... {:.1} ns/iter ({} iters)",
                self.name, id, m.mean_ns, m.iters
            );
        }
    }
}

/// Identifies one benchmark within a group, e.g. `trie_insert/1000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

struct Measurement {
    mean_ns: f64,
    iters: u64,
}

/// Timing harness handed to each benchmark routine.
pub struct Bencher {
    sample_size: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine`, auto-calibrating the iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: time single runs until 10ms or 5 runs.
        let mut est_ns: f64 = 0.0;
        let mut calib_runs = 0u32;
        let calib_start = Instant::now();
        while calib_runs < 5 && calib_start.elapsed().as_millis() < 10 {
            let t = Instant::now();
            black_box(routine());
            est_ns = est_ns.max(t.elapsed().as_nanos() as f64);
            calib_runs += 1;
        }
        // Aim for sample_size samples within a ~250ms budget.
        const BUDGET_NS: f64 = 250_000_000.0;
        let per_sample = (BUDGET_NS / self.sample_size as f64).max(1.0);
        let iters_per_sample = (per_sample / est_ns.max(1.0)).clamp(1.0, 1_000_000.0) as u64;
        let samples = self.sample_size.max(1) as u64;

        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        let bench_start = Instant::now();
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total_ns += t.elapsed().as_nanos();
            total_iters += iters_per_sample;
            // Hard stop so pathological routines can't hang a run.
            if bench_start.elapsed().as_secs() >= 2 {
                break;
            }
        }
        self.result = Some(Measurement {
            mean_ns: total_ns as f64 / total_iters.max(1) as f64,
            iters: total_iters,
        });
    }
}

/// Bundles benchmark functions into a runnable group, mirroring the
/// real crate's simple form: `criterion_group!(benches, f, g);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups:
/// `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test --benches` the harness passes flags the
            // real criterion understands; the stand-in just runs.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran > 0, "routine never executed");
    }
}
