//! Offline stand-in for the `rand` crate.
//!
//! Supplies the exact surface this workspace uses — `Rng::gen_range` /
//! `gen_bool`, `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}` — backed by SplitMix64.
//!
//! The stream is deterministic per seed but NOT bit-compatible with the
//! real `StdRng` (ChaCha12): seeded synthetic worlds keep the same
//! *statistical* shape yet differ in detail from runs against real
//! rand. Determinism invariants (same seed ⇒ same output) hold either
//! way, which is what the test suite pins.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing randomness methods, blanket-implemented for any
/// [`RngCore`] like the real crate.
pub trait Rng: RngCore {
    /// A uniform value in `range` (`a..b` or `a..=b`).
    ///
    /// Uses multiply-shift reduction; the modulo bias at 64 bits is
    /// far below anything a simulation statistic could observe.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`, mirroring the real crate.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // 53 high bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// A generator seeded from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_128 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                self.start.wrapping_add((draw % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                if span == 0 {
                    return draw as $t; // full-width range
                }
                start.wrapping_add((draw % span) as $t)
            }
        }
    )*};
}

impl_sample_range_128!(u128, i128);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (Steele et al.,
    /// "Fast splittable pseudorandom number generators", OOPSLA 2014).
    /// Full 2^64 period, passes BigCrush — ample for simulation
    /// workloads, and a single `u64` of state keeps cloning cheap.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-advance once so seed 0 doesn't start at raw state 0.
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Slice extension methods.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let a_run: Vec<u32> = (0..16).map(|_| a.gen_range(0..1000)).collect();
        let c_run: Vec<u32> = (0..16).map(|_| c.gen_range(0..1000)).collect();
        assert_ne!(a_run, c_run);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u8..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice sorted");
        assert!(v.choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }
}
