//! Offline stand-in for `serde_json`, layered on the `serde` stub's
//! concrete [`Json`] tree. Provides the surface this workspace uses:
//! [`to_string`], [`from_str`] (a real recursive-descent JSON parser,
//! since tests round-trip emitted records), the untyped [`Value`]
//! alias, and the [`json!`] macro for object literals.

pub use serde::Json;
use serde::Serialize;

/// Untyped JSON value, like `serde_json::Value`.
pub type Value = Json;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of the failure when parsing.
    pub offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string. Infallible for the
/// stub's data model, but keeps serde_json's `Result` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

/// Parses a JSON document into an untyped [`Value`].
///
/// Unlike the real generic `from_str<T>`, this stub only produces
/// `Value` — every call site in the workspace annotates exactly that.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: msg.to_owned(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("unexpected token"))
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.parse::<f64>().is_err() {
            return Err(self.err("invalid number"));
        }
        Ok(Json::Num(text.to_owned()))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by any
                            // emitter in this workspace; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, Error> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.eat("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Builds a [`Value`] from an object literal, e.g.
/// `json!({ "command": label, "data": value })`. Values can be any
/// `Serialize` expression. Only the object form is provided — the
/// workspace uses no other shapes.
#[macro_export]
macro_rules! json {
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Json::Object(vec![
            $(($key.to_string(), ::serde::Serialize::to_json(&$val))),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_emitted_records() {
        let rec = json!({ "command": "demo", "data": vec![1u32, 2, 3] });
        let text = to_string(&rec).unwrap();
        assert_eq!(text, r#"{"command":"demo","data":[1,2,3]}"#);
        let back = from_str(&text).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back["command"], "demo");
        assert_eq!(back["data"].as_array().map(Vec::len), Some(3));
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = from_str(r#"{"s": "a\"b\nc", "n": -3.5e2, "l": [true, null]}"#).unwrap();
        assert_eq!(v["s"].as_str(), Some("a\"b\nc"));
        assert_eq!(v["n"].as_f64(), Some(-350.0));
        assert_eq!(v["l"][1], Json::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("").is_err());
    }
}
