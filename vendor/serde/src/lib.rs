//! Offline stand-in for the `serde` facade.
//!
//! This workspace builds in containers with no access to crates.io, so
//! the real serde cannot be fetched. This crate supplies the same
//! *surface* the workspace actually uses — the `Serialize` /
//! `Deserialize` traits and their derive macros — backed by a single
//! concrete data model ([`Json`]) instead of serde's generic
//! serializer architecture. `#[derive(Serialize)]` (see the sibling
//! `serde_derive` stub) generates a `to_json` tree mirroring serde's
//! default encodings: structs become objects, newtype structs are
//! transparent, unit enum variants become strings, and data-carrying
//! variants become externally-tagged single-entry objects.
//!
//! Swapping the real serde back in is a one-line change in the
//! workspace `Cargo.toml`; no call site would change.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A JSON value tree — the single data model all serialization targets.
///
/// Object fields keep insertion order (a `Vec` of pairs, not a map),
/// matching `serde_json`'s `preserve_order` behaviour so that derived
/// output lists struct fields in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text (avoids f64 precision loss
    /// for u128 and friends).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, idx: usize) -> &Json {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Json::Str(s) if s == other)
    }
}

impl PartialEq<str> for Json {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Json::Str(s) if s == other)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact JSON, like `serde_json::to_string`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_into(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => escape_into(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Types that can render themselves as a [`Json`] tree.
///
/// The stand-in for serde's `Serialize`; derived by
/// `#[derive(Serialize)]`.
pub trait Serialize {
    /// The value as a JSON tree.
    fn to_json(&self) -> Json;
}

/// Marker stand-in for serde's `Deserialize`. The workspace only ever
/// deserializes untyped `serde_json::Value`s, so the derive emits no
/// code and nothing bounds on this trait.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Num(self.to_string())
            }
        })*
    };
}

impl_ser_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_json(&self) -> Json {
                if self.is_finite() {
                    Json::Num(self.to_string())
                } else {
                    Json::Null
                }
            }
        })*
    };
}

impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_json())).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        })*
    };
}

impl_ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_json() {
        let v = Json::Object(vec![
            ("a".into(), Json::Num("1".into())),
            ("b".into(), Json::Array(vec![Json::Bool(true), Json::Null])),
            ("c".into(), Json::Str("x\"y".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn std_impls_compose() {
        let v = vec![(1u32, "one".to_string()), (2, "two".to_string())];
        assert_eq!(v.to_json().to_string(), r#"[[1,"one"],[2,"two"]]"#);
        assert_eq!(Some(3u8).to_json(), Json::Num("3".into()));
        assert_eq!(None::<u8>.to_json(), Json::Null);
    }

    #[test]
    fn index_and_eq_sugar() {
        let v = Json::Object(vec![("k".into(), Json::Str("v".into()))]);
        assert_eq!(v["k"], "v");
        assert_eq!(v["missing"], Json::Null);
    }
}
