//! Section 6's worked example: a transient fault becomes a persistent
//! failure because the ROA that keeps a repository reachable is stored
//! *in that repository*.
//!
//! ```sh
//! cargo run --example circular_dependency
//! ```

use bgp_sim::RpkiPolicy;
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::{LoopbackWorld, ModelRpki, ValidationOptions};

fn main() {
    // Premises: Figure 5 (right) validity (Sprint's covering /12-13
    // ROA exists), Continental hosts its repository at 63.174.23.0
    // inside its own /20, the relying party drops invalid routes.
    let mut w = ModelRpki::build();
    w.add_figure5_right_roa(Moment(2));

    // A healthy relying party has the complete cache.
    let healthy = w.validate_with(ValidationOptions::at(Moment(3)));
    println!("healthy cache: {} VRPs", healthy.vrps.len());

    // The transient fault: ONE corrupted rsync session from
    // Continental's repository.
    let node = w.repos.node_of("rpki.continental.example").unwrap();
    w.net.faults.corrupt_nth(node, w.rp_node, 1);
    let faulted = w.validate_with(ValidationOptions::at(Moment(4)));
    println!(
        "after one corrupted session: {} VRPs ({} lost)",
        faulted.vrps.len(),
        healthy.vrps.len() - faulted.vrps.len()
    );

    // The fault is gone. The repository is fine. Watch the loop:
    let degraded = faulted.vrps.clone();
    let ModelRpki { net, repos, rp_node, tal, topology, announcements, .. } = &mut w;
    let tals = std::slice::from_ref(&*tal);
    let mut world = LoopbackWorld {
        net,
        repos,
        rp_node: *rp_node,
        rp_asn: asn::RELYING_PARTY,
        tals,
        topology,
        announcements,
        policy: RpkiPolicy::DropInvalid,
    };
    let stuck = world.run(&degraded, Moment(5));
    println!(
        "fixed point under drop-invalid: {} VRPs; unreachable repositories: {:?}",
        stuck.vrps.len(),
        stuck.unreachable_repos
    );
    assert!(!stuck.can_fetch("rpki.continental.example"));

    // Why: the route to 63.174.23.0 (Continental's repo) is INVALID —
    // covered by Sprint's /12-13 ROA, matched by nothing — unless the
    // relying party holds the (63.174.16.0/20, AS17054) ROA… which
    // lives at that very repository.
    println!(
        "\nthe trap: fetching the repairing ROA requires a route that is invalid \
         without the repairing ROA"
    );

    // Manual recovery, as the paper notes, needs an out-of-band step;
    // one option is temporarily relaxing to depref-invalid.
    let mut relaxed = LoopbackWorld { policy: RpkiPolicy::DeprefInvalid, ..world };
    let recovered = relaxed.run(&stuck.vrps, Moment(6));
    println!(
        "after temporarily depreferring instead of dropping: {} VRPs, Continental fetchable: {}",
        recovered.vrps.len(),
        recovered.can_fetch("rpki.continental.example")
    );
    assert_eq!(recovered.vrps.len(), healthy.vrps.len());
    println!("\ncircular_dependency OK: transient fault persisted until manual intervention");
}
