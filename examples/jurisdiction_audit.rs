//! A Table 4-style audit: generate a synthetic Internet and find every
//! resource certificate whose descendants sit outside the issuing RIR's
//! jurisdiction — each one a cross-border whacking capability.
//!
//! ```sh
//! cargo run --example jurisdiction_audit
//! ```

use rpki_risk::jurisdiction_report;
use topogen::{Config, SyntheticInternet};

fn main() {
    let config = Config {
        seed: 7,
        transits: 20,
        stubs: 150,
        roa_adoption: 1.0,
        cross_border: 0.2,
        anchors: true,
        self_hosting: 1.0,
    };
    println!(
        "auditing a synthetic Internet (seed {}, {} orgs expected)…\n",
        config.seed,
        config.transits + config.stubs
    );
    let world = SyntheticInternet::generate(config);
    let report = jurisdiction_report(&world);

    println!(
        "{} of {} RCs cover at least one country outside their parent RIR's region:\n",
        report.rcs_crossing_borders, report.rcs_examined
    );
    for row in report.rows.iter().take(15) {
        println!(
            "  {:<14} {:<18} via {:<7} → {}",
            row.holder,
            row.rc.join(","),
            row.rir,
            row.foreign_countries.join(",")
        );
    }
    if report.rows.len() > 15 {
        println!("  … and {} more", report.rows.len() - 15);
    }

    // The paper's headline examples are planted as anchors and must
    // surface.
    for name in ["Level3", "Cogent", "Sprint-63"] {
        let row = report.rows.iter().find(|r| r.holder == name).expect("anchor present");
        println!(
            "\n{} can whack ROAs in {} foreign countries through {}",
            row.holder,
            row.foreign_countries.len(),
            row.rc.join(",")
        );
    }
    println!("\njurisdiction_audit OK");
}
