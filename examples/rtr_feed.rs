//! Feeding routers over the RPKI-to-Router protocol (RFC 6810): the
//! last hop of the pipeline, and one more place where a whack's effect
//! is delayed, batched — and visible as a suspicious withdraw.
//!
//! The routers sit on the simulated network behind the framed RTR
//! fabric, so the feed path is subject to the same fault model as
//! everything else: a partitioned router simply stays stale.
//!
//! ```sh
//! cargo run --example rtr_feed
//! ```

use rpki_attacks::{plan_whack, CaView};
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::ModelRpki;
use rpki_rp::fabric::{pump_until, RtrEndpoint};
use rpki_rp::{Route, RouteValidity, RtrFabric, RtrRouter, VrpUpdate};

/// Runs the network for one RTR window, dispatching frames to the
/// cache fabric and both routers.
fn pump(w: &mut ModelRpki, fabric: &mut RtrFabric, a: &mut RtrRouter, b: &mut RtrRouter) {
    let deadline = w.net.now() + 1_000;
    let mut endpoints: Vec<&mut dyn RtrEndpoint> = vec![fabric, a, b];
    pump_until(&mut w.net, deadline, &mut endpoints);
}

fn main() {
    let mut w = ModelRpki::build();
    let victim = Route::new("63.174.16.0/20".parse().unwrap(), asn::CONTINENTAL);

    // The relying party serves RTR from its own node; two routers sync
    // from it over the simulated network.
    let mut fabric = RtrFabric::new(w.rp_node, 1, 16);
    let node_a = w.net.add_node("router-a");
    let node_b = w.net.add_node("router-b");
    fabric.attach(node_a);
    fabric.attach(node_b);
    let mut router_a = RtrRouter::new(node_a, w.rp_node);
    let mut router_b = RtrRouter::new(node_b, w.rp_node);

    // The relying party validates and publishes into its RTR cache: one
    // publish, a SerialNotify fanned out to each attached router.
    let run = w.validate_direct(Moment(2));
    fabric.publish(&mut w.net, VrpUpdate::snapshot(run.vrps.iter().copied()));
    pump(&mut w, &mut fabric, &mut router_a, &mut router_b);
    println!(
        "relying party validated {} VRPs; RTR cache at serial {}",
        run.vrps.len(),
        fabric.server().serial()
    );
    println!(
        "router A at serial {} with {} VRPs; router B likewise",
        router_a.client().serial(),
        router_a.client().len()
    );
    assert_eq!(router_a.client().cache().classify(victim), RouteValidity::Valid);

    // Sprint whacks Continental's covering ROA.
    let rc = w.sprint.issued_cert_for(w.continental.key_id()).unwrap().clone();
    let view = CaView::from_repos(&rc, &w.repos);
    let file = w.covering_roa_file();
    let plan = plan_whack(std::slice::from_ref(&view), &file).unwrap();
    plan.execute(&mut w.sprint, Moment(3)).unwrap();
    w.publish_all(Moment(3));

    // Until the RP revalidates and publishes, routers act on old data:
    // the whack has *latency*.
    assert_eq!(router_a.client().cache().classify(victim), RouteValidity::Valid);
    println!("\nafter the whack, before the next RTR cycle: routers still see the victim as valid");

    // Router B drops off the network for this cycle; the RP's next
    // validation run publishes the delta (one withdraw).
    w.net.faults.partition(w.rp_node, node_b);
    let run = w.validate_direct(Moment(4));
    assert!(fabric.publish(&mut w.net, VrpUpdate::snapshot(run.vrps.iter().copied())));
    pump(&mut w, &mut fabric, &mut router_a, &mut router_b);
    println!("cache publish → serial {}", fabric.server().serial());

    assert_eq!(router_a.client().cache().classify(victim), RouteValidity::Unknown);
    assert_eq!(router_b.client().cache().classify(victim), RouteValidity::Valid);
    println!(
        "router A now sees the victim as {}; router B (partitioned, {} serial behind) still {}",
        router_a.client().cache().classify(victim),
        fabric.serial_lag(node_b).unwrap(),
        router_b.client().cache().classify(victim)
    );

    // B reconnects and catches up from the delta history.
    w.net.faults.heal(w.rp_node, node_b);
    fabric.renotify(&mut w.net, node_b);
    pump(&mut w, &mut fabric, &mut router_a, &mut router_b);
    assert_eq!(router_b.client().serial(), fabric.server().serial());
    assert_eq!(router_b.client().cache().classify(victim), RouteValidity::Unknown);

    println!(
        "\nrtr_feed OK: whacks reach the data plane with RTR-cycle latency, \
         as a single withdraw PDU any router operator could log and question"
    );
}
