//! Feeding routers over the RPKI-to-Router protocol (RFC 6810): the
//! last hop of the pipeline, and one more place where a whack's effect
//! is delayed, batched — and visible as a suspicious withdraw.
//!
//! ```sh
//! cargo run --example rtr_feed
//! ```

use rpki_attacks::{plan_whack, CaView};
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::ModelRpki;
use rpki_rp::{Route, RouteValidity, RtrClient, RtrServer};

fn main() {
    let mut w = ModelRpki::build();
    let victim = Route::new("63.174.16.0/20".parse().unwrap(), asn::CONTINENTAL);

    // The relying party validates and loads its RTR cache.
    let run = w.validate_direct(Moment(2));
    let mut cache_server = RtrServer::new(1, 16);
    cache_server.update(run.vrps.iter().copied());
    println!(
        "relying party validated {} VRPs; RTR cache at serial {}",
        run.vrps.len(),
        cache_server.serial()
    );

    // Two routers sync from it.
    let mut router_a = RtrClient::new();
    let mut router_b = RtrClient::new();
    rpki_rp::rtr::poll_cycle(&mut router_a, &cache_server);
    rpki_rp::rtr::poll_cycle(&mut router_b, &cache_server);
    println!(
        "router A at serial {} with {} VRPs; router B likewise",
        router_a.serial(),
        router_a.len()
    );
    assert_eq!(router_a.cache().classify(victim), RouteValidity::Valid);

    // Sprint whacks Continental's covering ROA.
    let rc = w.sprint.issued_cert_for(w.continental.key_id()).unwrap().clone();
    let view = CaView::from_repos(&rc, &w.repos);
    let file = w.covering_roa_file();
    let plan = plan_whack(std::slice::from_ref(&view), &file).unwrap();
    plan.execute(&mut w.sprint, Moment(3)).unwrap();
    w.publish_all(Moment(3));

    // Until the RP revalidates and the routers poll, they still act on
    // the old data: the whack has *latency*.
    assert_eq!(router_a.cache().classify(victim), RouteValidity::Valid);
    println!("\nafter the whack, before the next RTR cycle: routers still see the victim as valid");

    // The RP's next validation run feeds the cache; the server computes
    // the delta (one withdraw).
    let run = w.validate_direct(Moment(4));
    let notify = cache_server.update(run.vrps.iter().copied()).expect("changed");
    println!("cache update → {notify:?}");

    // Router A polls; router B misses this cycle (it will catch up).
    let query = router_a.poll();
    let response = cache_server.handle(&query);
    let withdraws =
        response.iter().filter(|p| matches!(p, rpki_rp::RtrPdu::Prefix(d) if !d.announce)).count();
    println!("router A receives {withdraws} withdraw in {} PDUs", response.len());
    for pdu in &response {
        router_a.handle(pdu);
    }
    assert_eq!(router_a.cache().classify(victim), RouteValidity::Unknown);
    assert_eq!(router_b.cache().classify(victim), RouteValidity::Valid);
    println!(
        "router A now sees the victim as {}; router B (one cycle behind) still {}",
        router_a.cache().classify(victim),
        router_b.cache().classify(victim)
    );

    // B catches up on its next poll.
    rpki_rp::rtr::poll_cycle(&mut router_b, &cache_server);
    assert_eq!(router_b.serial(), cache_server.serial());
    assert_eq!(router_b.cache().classify(victim), RouteValidity::Unknown);

    println!(
        "\nrtr_feed OK: whacks reach the data plane with RTR-cycle latency, \
         as a single withdraw PDU any router operator could log and question"
    );
}
