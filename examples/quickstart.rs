//! Quickstart: build a tiny RPKI, publish it, validate it, and classify
//! BGP routes — the whole pipeline in one file.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ipres::{Asn, ResourceSet};
use netsim::Network;
use rpki_ca::CertAuthority;
use rpki_objects::{Encode, Moment, RepoUri, RoaPrefix, RpkiObject, Span, TrustAnchorLocator};
use rpki_repo::RepoRegistry;
use rpki_rp::{NetworkSource, Route, ValidationConfig, Validator};

fn main() {
    // 1. A network with a relying party and two repository hosts.
    let mut net = Network::new(1);
    let rp = net.add_node("relying-party");
    let mut repos = RepoRegistry::new();
    repos.create(&mut net, "rpki.registry.example");
    repos.create(&mut net, "rpki.isp.example");

    // 2. A registry (trust anchor) that suballocates 10.0.0.0/8 to an
    //    ISP.
    let registry_dir = RepoUri::new("rpki.registry.example", &["repo"]);
    let isp_dir = RepoUri::new("rpki.isp.example", &["repo"]);
    let mut registry = CertAuthority::new("Registry", "quickstart-registry", registry_dir);
    registry.certify_self(ResourceSet::from_prefix_strs("10.0.0.0/8"), Moment(0), Span::days(3650));
    let mut isp = CertAuthority::new("ExampleISP", "quickstart-isp", isp_dir.clone());
    let cert = registry
        .issue_cert(
            "ExampleISP",
            isp.public_key(),
            ResourceSet::from_prefix_strs("10.20.0.0/16"),
            isp_dir.clone(),
            Moment(0),
        )
        .expect("registry holds the /8");
    isp.install_cert(cert);

    // 3. The ISP authorises AS 65001 to originate its /16 and
    //    subprefixes down to /20.
    let roa = isp
        .issue_roa(
            Asn(65001),
            vec![RoaPrefix::up_to("10.20.0.0/16".parse().unwrap(), 20)],
            Moment(0),
        )
        .expect("own space");
    println!("issued {roa}");

    // 4. Publish everything: the TA certificate out of band, each CA's
    //    snapshot at its publication point.
    let ta_dir = RepoUri::new("rpki.registry.example", &["ta"]);
    let ta_cert = registry.cert().expect("self-signed").clone();
    repos.by_host_mut("rpki.registry.example").unwrap().publish_raw(
        &ta_dir,
        "root.cer",
        RpkiObject::Cert(ta_cert).to_bytes(),
    );
    for ca in [&mut registry, &mut isp] {
        let dir = ca.sia().clone();
        let snap = ca.publication_snapshot(Moment(1));
        repos.by_host_mut(dir.host()).unwrap().publish_snapshot(&dir, &snap);
    }

    // 5. A relying party validates over the (simulated) network from a
    //    trust anchor locator.
    let tal = TrustAnchorLocator::new(ta_dir.join("root.cer"), registry.public_key());
    let mut source = NetworkSource::new(&mut net, &repos, rp);
    let run = Validator::new(ValidationConfig::at(Moment(2)))
        .run(&mut source, std::slice::from_ref(&tal));
    println!(
        "validated {} CA(s), {} VRP(s), {} diagnostic(s)",
        run.cas.len(),
        run.vrps.len(),
        run.diagnostics.len()
    );

    // 6. Classify routes per RFC 6811.
    let cache = run.vrp_cache();
    let routes = [
        ("the ISP's own /16", Route::new("10.20.0.0/16".parse().unwrap(), Asn(65001))),
        ("an authorised /20", Route::new("10.20.16.0/20".parse().unwrap(), Asn(65001))),
        ("a subprefix hijack", Route::new("10.20.16.0/20".parse().unwrap(), Asn(666))),
        ("a too-long /24", Route::new("10.20.16.0/24".parse().unwrap(), Asn(65001))),
        ("an unrelated prefix", Route::new("192.0.2.0/24".parse().unwrap(), Asn(65001))),
    ];
    for (label, route) in routes {
        println!("{label:>22}: {route} → {}", cache.classify(route));
    }

    assert_eq!(run.vrps.len(), 1);
    println!("\nquickstart OK");
}
