//! Table 6 as a story: the same network, two threats, three policies —
//! and no policy wins both.
//!
//! ```sh
//! cargo run --example policy_tradeoff
//! ```

use bgp_sim::{Announcement, RpkiPolicy};
use ipres::Asn;
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::tradeoff::TradeoffScenario;
use rpki_risk::{policy_tradeoff, ModelRpki};
use rpki_rp::{Vrp, VrpCache};

fn main() {
    let mut w = ModelRpki::build();
    let attacker = Asn(666);
    w.topology.add_provider_customer(asn::SPRINT, attacker);

    // Caches: intact (all ROAs + Sprint's covering /12-13), and whacked
    // (Continental's /20 ROA removed — its route turns INVALID because
    // the covering ROA remains).
    let covering = Vrp::new("63.160.0.0/12".parse().unwrap(), 13, asn::SPRINT);
    let mut intact = w.validate_direct(Moment(2)).vrps;
    intact.push(covering);
    let whacked: Vec<Vrp> = intact.iter().copied().filter(|v| v.asn != asn::CONTINENTAL).collect();
    let cache_intact: VrpCache = intact.into_iter().collect();
    let cache_whacked: VrpCache = whacked.into_iter().collect();

    let table = policy_tradeoff(&TradeoffScenario {
        topology: &w.topology,
        announcements: &w.announcements,
        victim: Announcement {
            prefix: "63.174.16.0/20".parse().unwrap(),
            origin: asn::CONTINENTAL,
        },
        probe_addr: "63.174.24.9".parse().unwrap(),
        attacker,
        hijack: Announcement { prefix: "63.174.24.0/24".parse().unwrap(), origin: attacker },
        cache_intact: &cache_intact,
        cache_whacked: &cache_whacked,
    });

    println!("reachability of the victim prefix (fraction of other ASes):\n");
    println!("{:<18} {:>16} {:>20}", "policy", "under hijack", "under manipulation");
    for policy in [RpkiPolicy::Ignore, RpkiPolicy::DropInvalid, RpkiPolicy::DeprefInvalid] {
        println!(
            "{:<18} {:>15.0}% {:>19.0}%",
            format!("{policy:?}"),
            table.get("routing attack", policy).unwrap() * 100.0,
            table.get("RPKI manipulation", policy).unwrap() * 100.0,
        );
    }

    println!(
        "\nno row is all-green: protecting against BGP attacks (drop invalid) hands \
         RPKI authorities a kill switch; tolerating RPKI problems (depref) re-opens \
         subprefix hijacking. That is the paper's Table 6."
    );
    assert_eq!(table.get("routing attack", RpkiPolicy::DropInvalid), Some(1.0));
    assert_eq!(table.get("RPKI manipulation", RpkiPolicy::DropInvalid), Some(0.0));
    println!("\npolicy_tradeoff OK");
}
