//! The paper's Figure 3 as a story: Sprint, the *grandparent* of a
//! target ROA, whacks it — first the collateral-free carve, then the
//! make-before-break variant — while a monitor watches the
//! repositories.
//!
//! ```sh
//! cargo run --example grandparent_whack
//! ```

use rpki_attacks::{damage_between, plan_whack, probes_for, CaView, Monitor, MonitorSnapshot};
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::ModelRpki;

fn main() {
    let mut w = ModelRpki::build();
    let before = w.validate_direct(Moment(2));
    println!("model RPKI validates to {} VRPs", before.vrps.len());

    // The watchdog takes its baseline snapshot.
    let mut monitor = Monitor::new();
    monitor.observe(MonitorSnapshot::capture(&w.repos, Moment(2)));

    // Sprint plans entirely from public data: Continental's RC (which
    // Sprint itself issued) and Continental's publication point.
    let rc = w.sprint.issued_cert_for(w.continental.key_id()).unwrap().clone();
    let view = CaView::from_repos(&rc, &w.repos);
    let target = w.customer_roa_file(); // (63.174.16.0/22, AS7341)
    let plan = plan_whack(std::slice::from_ref(&view), &target).expect("plan");

    println!("\nSprint's plan against {}:", plan.target);
    println!("  carve {} out of Continental's RC", plan.carved);
    println!("  {} suspicious reissue(s) needed (make-before-break)", plan.reissued);

    // Execute and republish.
    for line in plan.execute(&mut w.sprint, Moment(3)).expect("execute") {
        println!("  executed: {line}");
    }
    w.publish_all(Moment(3));

    // The relying party's next validation run: the target is gone.
    let after = w.validate_direct(Moment(4));
    let damage = damage_between(&before.vrps, &after.vrps, &probes_for(&before.vrps));
    println!("\nafter the whack:");
    for (route, state) in &damage.routes_degraded {
        println!("  {route} degraded to {state}");
    }
    assert!(damage.clean_except(&[asn::CUSTOMER_A]), "no collateral damage");

    // But the monitor saw it.
    let events = monitor.observe(MonitorSnapshot::capture(&w.repos, Moment(4)));
    println!("\nmonitor events:");
    for e in events.iter().filter(|e| e.classification.is_suspicious()) {
        println!("  SUSPICIOUS {:?} {} — {:?}", e.kind, e.file, e.classification);
    }
    assert!(
        events.iter().filter(|e| e.classification.is_suspicious()).count() >= 2,
        "the whack and the reissue are both visible"
    );
    println!("\ngrandparent_whack OK: target dead, zero collateral, attack detected");
}
