//! Validator edge cases: certificate loops, depth caps, and hostile
//! publication-point contents that must not wedge or crash the walk.

use ipres::{Asn, Prefix, ResourceSet};
use rpki_ca::CertAuthority;
use rpki_objects::{Encode, Moment, RepoUri, RoaPrefix, RpkiObject, Span, TrustAnchorLocator};
use rpki_repo::RepoRegistry;
use rpki_rp::{DirectSource, Issue, ValidationConfig, Validator};

fn rs(s: &str) -> ResourceSet {
    ResourceSet::from_prefix_strs(s)
}

struct Rig {
    repos: RepoRegistry,
    ta: CertAuthority,
    tal: TrustAnchorLocator,
}

fn rig(seed: &str) -> Rig {
    let mut net = netsim::Network::new(0);
    let mut repos = RepoRegistry::new();
    repos.create(&mut net, "ta.example");
    let mut ta = CertAuthority::new("TA", seed, RepoUri::new("ta.example", &["repo"]));
    ta.certify_self(rs("10.0.0.0/8"), Moment(0), Span::days(3650));
    let tal =
        TrustAnchorLocator::new(RepoUri::new("ta.example", &["ta", "root.cer"]), ta.public_key());
    Rig { repos, ta, tal }
}

fn publish_ta(rig: &mut Rig, now: Moment) {
    let cert = rig.ta.cert().unwrap().clone();
    let ta_dir = RepoUri::new("ta.example", &["ta"]);
    rig.repos.by_host_mut("ta.example").unwrap().publish_raw(
        &ta_dir,
        "root.cer",
        RpkiObject::Cert(cert).to_bytes(),
    );
    let sia = rig.ta.sia().clone();
    let snap = rig.ta.publication_snapshot(now);
    rig.repos.by_host_mut("ta.example").unwrap().publish_snapshot(&sia, &snap);
}

fn validate(rig: &Rig, config: ValidationConfig) -> rpki_rp::ValidationRun {
    let mut source = DirectSource::new(&rig.repos);
    Validator::new(config).run(&mut source, std::slice::from_ref(&rig.tal))
}

/// A malicious publication point certifying the TA's own key as a child
/// must be rejected as a loop, not walked forever.
#[test]
fn certificate_loop_detected() {
    let mut r = rig("edge-loop");
    // The TA "certifies itself" as its own child (same subject key,
    // same SIA): a one-hop loop.
    let ta_key = r.ta.public_key();
    let ta_sia = r.ta.sia().clone();
    r.ta.issue_cert("TA-again", ta_key, rs("10.0.0.0/16"), ta_sia, Moment(0)).unwrap();
    publish_ta(&mut r, Moment(1));
    let run = validate(&r, ValidationConfig::at(Moment(2)));
    assert!(run.diagnostics.iter().any(|d| matches!(d.issue, Issue::CertificateLoop(_))));
    // Exactly one CA on the tree (the TA itself).
    assert_eq!(run.cas.len(), 1);
}

/// Two CAs certifying each other (a two-hop loop across publication
/// points) terminate via the ancestor set.
#[test]
fn mutual_certification_loop_detected() {
    let mut net = netsim::Network::new(0);
    let mut repos = RepoRegistry::new();
    repos.create(&mut net, "ta.example");
    repos.create(&mut net, "a.example");
    repos.create(&mut net, "b.example");

    let mut ta = CertAuthority::new("TA", "edge-mutual-ta", RepoUri::new("ta.example", &["repo"]));
    ta.certify_self(rs("10.0.0.0/8"), Moment(0), Span::days(3650));
    let mut a = CertAuthority::new("A", "edge-mutual-a", RepoUri::new("a.example", &["repo"]));
    let mut b = CertAuthority::new("B", "edge-mutual-b", RepoUri::new("b.example", &["repo"]));
    let rc =
        ta.issue_cert("A", a.public_key(), rs("10.0.0.0/16"), a.sia().clone(), Moment(0)).unwrap();
    a.install_cert(rc);
    // A certifies B, and B certifies A back.
    let rc =
        a.issue_cert("B", b.public_key(), rs("10.0.0.0/20"), b.sia().clone(), Moment(0)).unwrap();
    b.install_cert(rc.clone());
    // B needs a cert to issue from; it has one. It certifies A's key.
    b.issue_cert("A-again", a.public_key(), rs("10.0.0.0/24"), a.sia().clone(), Moment(0)).unwrap();

    let tal =
        TrustAnchorLocator::new(RepoUri::new("ta.example", &["ta", "root.cer"]), ta.public_key());
    let ta_dir = RepoUri::new("ta.example", &["ta"]);
    let cert = ta.cert().unwrap().clone();
    repos.by_host_mut("ta.example").unwrap().publish_raw(
        &ta_dir,
        "root.cer",
        RpkiObject::Cert(cert).to_bytes(),
    );
    for ca in [&mut ta, &mut a, &mut b] {
        let sia = ca.sia().clone();
        let snap = ca.publication_snapshot(Moment(1));
        repos.by_host_mut(sia.host()).unwrap().publish_snapshot(&sia, &snap);
    }

    let mut source = DirectSource::new(&repos);
    let run = Validator::new(ValidationConfig::at(Moment(2)))
        .run(&mut source, std::slice::from_ref(&tal));
    assert!(run.diagnostics.iter().any(|d| matches!(d.issue, Issue::CertificateLoop(_))));
    // TA, A, B each appear exactly once.
    assert_eq!(run.cas.len(), 3);
}

/// The depth cap stops pathological chains.
#[test]
fn depth_cap_enforced() {
    let mut r = rig("edge-depth");
    r.ta.issue_roa(
        Asn(1),
        vec![RoaPrefix::exact("10.0.0.0/16".parse::<Prefix>().unwrap())],
        Moment(0),
    )
    .unwrap();
    publish_ta(&mut r, Moment(1));
    let config = ValidationConfig { max_depth: 0, ..ValidationConfig::at(Moment(2)) };
    let run = validate(&r, config);
    assert!(run.has_issue(&Issue::DepthExceeded));
    assert!(run.vrps.is_empty(), "nothing below the cap may be processed");
}

/// A publication point stuffed with garbage files plus one good ROA:
/// the good object survives, every piece of garbage gets a diagnostic,
/// and the walk terminates.
#[test]
fn garbage_tolerance() {
    let mut r = rig("edge-garbage");
    r.ta.issue_roa(
        Asn(1),
        vec![RoaPrefix::exact("10.0.0.0/16".parse::<Prefix>().unwrap())],
        Moment(0),
    )
    .unwrap();
    publish_ta(&mut r, Moment(1));
    let dir = r.ta.sia().clone();
    let repo = r.repos.by_host_mut("ta.example").unwrap();
    repo.publish_raw(&dir, "zz-garbage-1.roa", vec![0xff; 64]);
    repo.publish_raw(&dir, "zz-garbage-2.cer", b"not an object".to_vec());
    repo.publish_raw(&dir, "zz-empty.mft", Vec::new());
    let run = validate(&r, ValidationConfig::at(Moment(2)));
    assert_eq!(run.vrps.len(), 1);
    // Garbage files are off-manifest: noted as unlisted, not fatal.
    let unlisted =
        run.diagnostics.iter().filter(|d| matches!(d.issue, Issue::UnlistedFile(_))).count();
    assert_eq!(unlisted, 3);
}

/// Two TALs anchoring two disjoint hierarchies in one run.
#[test]
fn multiple_trust_anchors() {
    let mut net = netsim::Network::new(0);
    let mut repos = RepoRegistry::new();
    repos.create(&mut net, "ta1.example");
    repos.create(&mut net, "ta2.example");
    let mut tals = Vec::new();
    for (i, host) in ["ta1.example", "ta2.example"].iter().enumerate() {
        let mut ta =
            CertAuthority::new("TA", &format!("edge-multi-{i}"), RepoUri::new(host, &["repo"]));
        ta.certify_self(rs(&format!("{}.0.0.0/8", 10 + i)), Moment(0), Span::days(3650));
        ta.issue_roa(
            Asn(100 + i as u32),
            vec![RoaPrefix::exact(format!("{}.1.0.0/16", 10 + i).parse::<Prefix>().unwrap())],
            Moment(0),
        )
        .unwrap();
        let ta_dir = RepoUri::new(host, &["ta"]);
        let cert = ta.cert().unwrap().clone();
        repos.by_host_mut(host).unwrap().publish_raw(
            &ta_dir,
            "root.cer",
            RpkiObject::Cert(cert).to_bytes(),
        );
        let sia = ta.sia().clone();
        let snap = ta.publication_snapshot(Moment(1));
        repos.by_host_mut(host).unwrap().publish_snapshot(&sia, &snap);
        tals.push(TrustAnchorLocator::new(ta_dir.join("root.cer"), ta.public_key()));
    }
    let mut source = DirectSource::new(&repos);
    let run = Validator::new(ValidationConfig::at(Moment(2))).run(&mut source, &tals);
    assert_eq!(run.cas.len(), 2);
    assert_eq!(run.vrps.len(), 2);
    assert!(run.vrps.iter().any(|v| v.asn == Asn(100)));
    assert!(run.vrps.iter().any(|v| v.asn == Asn(101)));
}
