//! RFC 8360 "validation reconsidered" semantics, and the twist it puts
//! on the paper's attacks: trimming makes targeted whacking *cheaper*.

use ipres::{Asn, Prefix, ResourceSet};
use rpki_ca::CertAuthority;
use rpki_objects::{Encode, Moment, RepoUri, RoaPrefix, RpkiObject, Span, TrustAnchorLocator};
use rpki_repo::RepoRegistry;
use rpki_rp::{DirectSource, Issue, ValidationConfig, Validator, Vrp};

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn rs(s: &str) -> ResourceSet {
    ResourceSet::from_prefix_strs(s)
}

/// TA → middle → leaf, where the leaf holds two ROAs. The test then has
/// the TA carve one /24 out of the *middle* certificate.
struct World {
    repos: RepoRegistry,
    ta: CertAuthority,
    middle: CertAuthority,
    leaf: CertAuthority,
    tal: TrustAnchorLocator,
}

impl World {
    fn build() -> World {
        let mut net = netsim::Network::new(0);
        let mut repos = RepoRegistry::new();
        for host in ["ta.example", "middle.example", "leaf.example"] {
            repos.create(&mut net, host);
        }
        let mut ta = CertAuthority::new("TA", "rec-ta", RepoUri::new("ta.example", &["repo"]));
        ta.certify_self(rs("10.0.0.0/8"), Moment(0), Span::days(3650));
        let mut middle =
            CertAuthority::new("Middle", "rec-middle", RepoUri::new("middle.example", &["repo"]));
        let rc = ta
            .issue_cert(
                "Middle",
                middle.public_key(),
                rs("10.1.0.0/16"),
                middle.sia().clone(),
                Moment(0),
            )
            .unwrap();
        middle.install_cert(rc);
        let mut leaf =
            CertAuthority::new("Leaf", "rec-leaf", RepoUri::new("leaf.example", &["repo"]));
        let rc = middle
            .issue_cert("Leaf", leaf.public_key(), rs("10.1.0.0/20"), leaf.sia().clone(), Moment(0))
            .unwrap();
        leaf.install_cert(rc);
        // Two leaf ROAs: the target (needs 10.1.0.0/24) and a sibling
        // (needs 10.1.8.0/24).
        leaf.issue_roa(Asn(42), vec![RoaPrefix::exact(p("10.1.0.0/24"))], Moment(0)).unwrap();
        leaf.issue_roa(Asn(7), vec![RoaPrefix::exact(p("10.1.8.0/24"))], Moment(0)).unwrap();
        let tal = TrustAnchorLocator::new(
            RepoUri::new("ta.example", &["ta", "root.cer"]),
            ta.public_key(),
        );
        let mut w = World { repos, ta, middle, leaf, tal };
        w.publish(Moment(1));
        w
    }

    fn publish(&mut self, now: Moment) {
        let ta_cert = self.ta.cert().unwrap().clone();
        let ta_dir = RepoUri::new("ta.example", &["ta"]);
        self.repos.by_host_mut("ta.example").unwrap().publish_raw(
            &ta_dir,
            "root.cer",
            RpkiObject::Cert(ta_cert).to_bytes(),
        );
        for ca in [&mut self.ta, &mut self.middle, &mut self.leaf] {
            let sia = ca.sia().clone();
            let snap = ca.publication_snapshot(now);
            self.repos.by_host_mut(sia.host()).unwrap().publish_snapshot(&sia, &snap);
        }
    }

    fn validate(&self, config: ValidationConfig) -> rpki_rp::ValidationRun {
        let mut source = DirectSource::new(&self.repos);
        Validator::new(config).run(&mut source, std::slice::from_ref(&self.tal))
    }

    /// The TA carves the target's /24 out of the MIDDLE certificate
    /// (not the leaf's — the leaf is two levels down).
    fn carve(&mut self, now: Moment) {
        let carved = rs("10.1.0.0/16").difference(&rs("10.1.0.0/24"));
        self.ta
            .issue_cert("Middle", self.middle.public_key(), carved, self.middle.sia().clone(), now)
            .unwrap();
        self.publish(now);
    }
}

#[test]
fn baseline_validates_under_both_policies() {
    let w = World::build();
    for config in [ValidationConfig::at(Moment(2)), ValidationConfig::reconsidered_at(Moment(2))] {
        let run = w.validate(config);
        assert_eq!(run.vrps.len(), 2, "{:?}", run.diagnostics);
        assert_eq!(run.cas.len(), 3);
    }
}

/// Under strict RFC 6487 semantics, the carve kills the *whole leaf
/// subtree*: the leaf's RC now over-claims (its /20 includes the carved
/// /24), so both ROAs die — massive collateral unless the manipulator
/// does make-before-break.
#[test]
fn strict_policy_kills_the_subtree() {
    let mut w = World::build();
    w.carve(Moment(2));
    let run = w.validate(ValidationConfig::at(Moment(3)));
    assert!(run.diagnostics.iter().any(|d| matches!(d.issue, Issue::OverClaim(_))));
    assert!(run.vrps.is_empty(), "{:?}", run.vrps);
}

/// Under RFC 8360 trimming, the same carve surgically kills exactly the
/// target ROA: the leaf's RC is trimmed (not rejected), the sibling ROA
/// survives — the whack needs NO make-before-break reissues and leaves
/// almost no trace.
#[test]
fn trim_policy_makes_the_whack_surgical() {
    let mut w = World::build();
    w.carve(Moment(2));
    let run = w.validate(ValidationConfig::reconsidered_at(Moment(3)));
    assert!(run.diagnostics.iter().any(|d| matches!(d.issue, Issue::TrimmedOverClaim(_))));
    assert_eq!(run.vrps, vec![Vrp::new(p("10.1.8.0/24"), 24, Asn(7))]);
    // The validated tree is intact all the way down.
    assert_eq!(run.cas.len(), 3);
}

/// Trimming is not a free lunch for defenders: a ROA that *partially*
/// needs trimmed space still dies whole (ROA prefixes must all be
/// covered), so the attack granularity is per-ROA either way.
#[test]
fn multi_prefix_roa_dies_whole_under_trim() {
    let mut w = World::build();
    // Replace the target with a two-prefix ROA spanning carved and
    // uncarved space.
    let file = w.leaf.issued_roas().find(|r| r.asn() == Asn(42)).unwrap().file_name();
    w.leaf.withdraw(&file).unwrap();
    w.leaf
        .issue_roa(
            Asn(42),
            vec![RoaPrefix::exact(p("10.1.0.0/24")), RoaPrefix::exact(p("10.1.9.0/24"))],
            Moment(2),
        )
        .unwrap();
    w.carve(Moment(3));
    let run = w.validate(ValidationConfig::reconsidered_at(Moment(4)));
    // AS42's ROA dies entirely even though 10.1.9.0/24 survived the
    // carve; the sibling lives.
    assert!(!run.vrps.iter().any(|v| v.asn == Asn(42)));
    assert!(run.vrps.iter().any(|v| v.asn == Asn(7)));
}

/// The defence argument for trimming (RFC 8360's motivation): an
/// *accidental* over-claim — here, a middle CA whose parent renewal
/// shrank for operational reasons — no longer takes down unrelated
/// customers.
#[test]
fn trim_policy_contains_accidental_overclaims() {
    let mut w = World::build();
    // The TA renews Middle's RC but forgets the upper half of its /16.
    w.ta.issue_cert(
        "Middle",
        w.middle.public_key(),
        rs("10.1.0.0/17"),
        w.middle.sia().clone(),
        Moment(2),
    )
    .unwrap();
    w.publish(Moment(2));
    // Strict: everything under Middle dies (the leaf RC's /20 is inside
    // the kept /17, so actually the leaf survives strict too — make the
    // mistake overlap the leaf: keep only the upper /17).
    w.ta.issue_cert(
        "Middle",
        w.middle.public_key(),
        rs("10.1.128.0/17"),
        w.middle.sia().clone(),
        Moment(3),
    )
    .unwrap();
    w.publish(Moment(3));
    let strict = w.validate(ValidationConfig::at(Moment(4)));
    assert!(strict.vrps.is_empty());
    let trim = w.validate(ValidationConfig::reconsidered_at(Moment(4)));
    // Under trim the leaf's effective resources are empty, so its ROAs
    // still die — trimming helps only when the lost space is unused.
    assert!(trim.vrps.is_empty());
    // But the tree itself (CAs) survives for monitoring/diagnosis.
    assert_eq!(trim.cas.len(), 3);
    assert!(trim.diagnostics.iter().any(|d| matches!(d.issue, Issue::TrimmedOverClaim(_))));
}
