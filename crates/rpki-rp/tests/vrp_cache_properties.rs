//! `VrpCache` consistency: the cache maintains two views of the same
//! VRP set — a sorted `Vec` (for iteration and serialisation) and a
//! prefix trie (for covering queries). These properties drive random
//! insert/remove interleavings and check after every operation that the
//! two views still describe the same set, pinned against a `BTreeSet`
//! model and a brute-force RFC 6811 oracle.

use std::collections::BTreeSet;

use ipres::{Addr, Asn, Prefix};
use proptest::prelude::*;
use rpki_rp::{Route, RouteValidity, Vrp, VrpCache};

/// Small universe inside 10.0.0.0/8 (same shape as ov_properties.rs):
/// collisions between inserts and removes stay frequent.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..=0xff, 8u8..=20).prop_map(|(v, len)| Prefix::new(Addr::v4((10 << 24) | (v << 16)), len))
}

fn arb_vrp() -> impl Strategy<Value = Vrp> {
    (arb_prefix(), 0u8..=4, 1u32..=3).prop_map(|(p, extra, asn)| {
        let max = (p.len() + extra).min(32);
        Vrp::new(p, max, Asn(asn))
    })
}

/// An operation against both the cache and the model: insert or remove.
fn arb_op() -> impl Strategy<Value = (bool, Vrp)> {
    (any::<bool>(), arb_vrp())
}

/// Brute-force RFC 6811 over the model set.
fn oracle(vrps: &BTreeSet<Vrp>, route: Route) -> RouteValidity {
    let covering: Vec<&Vrp> = vrps.iter().filter(|v| v.covers(route.prefix)).collect();
    if covering.is_empty() {
        RouteValidity::Unknown
    } else if covering.iter().any(|v| v.matches(route.prefix, route.origin)) {
        RouteValidity::Valid
    } else {
        RouteValidity::Invalid
    }
}

proptest! {
    /// After every insert/remove, the sorted-Vec view equals the model
    /// set, `remove` reports presence truthfully, and the trie-backed
    /// `covering` query agrees with a linear scan of the Vec view.
    #[test]
    fn views_agree_under_interleaved_inserts_and_removes(
        ops in proptest::collection::vec(arb_op(), 1..40),
        probe in arb_prefix(),
    ) {
        let mut cache = VrpCache::new();
        let mut model: BTreeSet<Vrp> = BTreeSet::new();
        for (is_insert, vrp) in ops {
            if is_insert {
                cache.insert(vrp);
                model.insert(vrp);
            } else {
                let was_present = model.remove(&vrp);
                prop_assert_eq!(cache.remove(&vrp), was_present);
            }

            // Sorted-Vec view ≡ model.
            prop_assert_eq!(cache.len(), model.len());
            prop_assert_eq!(cache.is_empty(), model.is_empty());
            let want_all: Vec<Vrp> = model.iter().copied().collect();
            prop_assert_eq!(cache.vrps(), want_all.as_slice());

            // Trie view ≡ a scan of the Vec view.
            let mut got = cache.covering(probe);
            got.sort_unstable();
            let want: Vec<Vrp> =
                model.iter().copied().filter(|v| v.covers(probe)).collect();
            prop_assert_eq!(got, want);
        }
    }

    /// `classify` (which reads through the trie) agrees with the
    /// brute-force oracle over the model after arbitrary mutations —
    /// removals included, so stale trie nodes would be caught.
    #[test]
    fn classify_agrees_with_oracle_after_mutations(
        ops in proptest::collection::vec(arb_op(), 1..40),
        probe in arb_prefix(),
        origin in 1u32..=4,
    ) {
        let mut cache = VrpCache::new();
        let mut model: BTreeSet<Vrp> = BTreeSet::new();
        for (is_insert, vrp) in ops {
            if is_insert {
                cache.insert(vrp);
                model.insert(vrp);
            } else {
                model.remove(&vrp);
                cache.remove(&vrp);
            }
            let route = Route::new(probe, Asn(origin));
            prop_assert_eq!(cache.classify(route), oracle(&model, route));
        }
    }

    /// Rebuilding from the Vec view yields an equivalent cache: the two
    /// representations carry the same information.
    #[test]
    fn rebuild_from_vec_view_is_lossless(
        ops in proptest::collection::vec(arb_op(), 1..40),
        probe in arb_prefix(),
    ) {
        let mut cache = VrpCache::new();
        for (is_insert, vrp) in ops {
            if is_insert {
                cache.insert(vrp);
            } else {
                cache.remove(&vrp);
            }
        }
        let rebuilt: VrpCache = cache.vrps().iter().copied().collect();
        prop_assert_eq!(rebuilt.vrps(), cache.vrps());
        let mut a = cache.covering(probe);
        let mut b = rebuilt.covering(probe);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
