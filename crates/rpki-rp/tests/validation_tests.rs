//! End-to-end validation tests: CA engine → repositories → relying
//! party, over both perfect and faulty transports.

use ipres::{Asn, Prefix, ResourceSet};
use netsim::{Network, NodeId};
use rpki_ca::CertAuthority;
use rpki_objects::{Moment, RepoUri, RoaPrefix, Span, TrustAnchorLocator};
use rpki_repo::RepoRegistry;
use rpki_rp::{
    DirectSource, IncompletePolicy, Issue, NetworkSource, Route, RouteValidity, ValidationConfig,
    Validator, Vrp,
};

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn rs(s: &str) -> ResourceSet {
    ResourceSet::from_prefix_strs(s)
}

/// A complete little world: ARIN (TA) → Sprint → Continental Broadband,
/// with repositories and a relying party on the network.
struct World {
    net: Network,
    repos: RepoRegistry,
    rp_node: NodeId,
    arin: CertAuthority,
    sprint: CertAuthority,
    continental: CertAuthority,
    tal: TrustAnchorLocator,
    ta_dir: RepoUri,
    sprint_dir: RepoUri,
    continental_dir: RepoUri,
}

impl World {
    fn build() -> World {
        let mut net = Network::new(7);
        let rp_node = net.add_node("relying-party");
        let mut repos = RepoRegistry::new();
        let arin_node = repos.create(&mut net, "rpki.arin.example");
        let sprint_node = repos.create(&mut net, "rpki.sprint.example");
        let continental_node = repos.create(&mut net, "rpki.continental.example");

        let ta_dir = RepoUri::new("rpki.arin.example", &["ta"]);
        let arin_dir = RepoUri::new("rpki.arin.example", &["repo"]);
        let sprint_dir = RepoUri::new("rpki.sprint.example", &["repo"]);
        let continental_dir = RepoUri::new("rpki.continental.example", &["repo"]);

        let mut arin = CertAuthority::new("ARIN", "w-arin", arin_dir.clone());
        arin.certify_self(rs("63.0.0.0/8, 208.0.0.0/4"), Moment(0), Span::days(3650));

        let mut sprint = CertAuthority::new("Sprint", "w-sprint", sprint_dir.clone());
        let rc = arin
            .issue_cert(
                "Sprint",
                sprint.public_key(),
                rs("63.160.0.0/12, 208.0.0.0/11"),
                sprint_dir.clone(),
                Moment(0),
            )
            .unwrap();
        sprint.install_cert(rc);

        let mut continental =
            CertAuthority::new("Continental Broadband", "w-continental", continental_dir.clone());
        let rc = sprint
            .issue_cert(
                "Continental Broadband",
                continental.public_key(),
                rs("63.174.16.0/20"),
                continental_dir.clone(),
                Moment(0),
            )
            .unwrap();
        continental.install_cert(rc);

        // Sprint's own ROAs (the "two ROAs up to /24" of Figure 2).
        sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::up_to(p("63.160.64.0/20"), 24)], Moment(0))
            .unwrap();
        sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::up_to(p("208.24.0.0/16"), 24)], Moment(0))
            .unwrap();
        // Continental's ROAs.
        continental
            .issue_roa(Asn(17054), vec![RoaPrefix::exact(p("63.174.16.0/20"))], Moment(0))
            .unwrap();
        continental
            .issue_roa(Asn(7341), vec![RoaPrefix::exact(p("63.174.16.0/22"))], Moment(0))
            .unwrap();

        let tal = TrustAnchorLocator::new(ta_dir.join("arin-root.cer"), arin.public_key());

        let mut world = World {
            net,
            repos,
            rp_node,
            arin,
            sprint,
            continental,
            tal,
            ta_dir,
            sprint_dir,
            continental_dir,
        };
        let _ = (arin_node, sprint_node, continental_node);
        world.publish_all(Moment(1));
        world
    }

    /// Publishes every CA's snapshot (and the TA certificate) at `now`.
    fn publish_all(&mut self, now: Moment) {
        use rpki_objects::{Encode, RpkiObject};
        let ta_cert = self.arin.cert().unwrap().clone();
        let arin_repo = self.repos.by_host_mut("rpki.arin.example").unwrap();
        arin_repo.publish_raw(&self.ta_dir, "arin-root.cer", RpkiObject::Cert(ta_cert).to_bytes());
        let snap = self.arin.publication_snapshot(now);
        arin_repo.publish_snapshot(self.arin.sia(), &snap);

        let snap = self.sprint.publication_snapshot(now);
        self.repos
            .by_host_mut("rpki.sprint.example")
            .unwrap()
            .publish_snapshot(&self.sprint_dir, &snap);

        let snap = self.continental.publication_snapshot(now);
        self.repos
            .by_host_mut("rpki.continental.example")
            .unwrap()
            .publish_snapshot(&self.continental_dir, &snap);
    }

    fn validate_direct(&mut self, config: ValidationConfig) -> rpki_rp::ValidationRun {
        let mut source = DirectSource::new(&self.repos);
        Validator::new(config).run(&mut source, std::slice::from_ref(&self.tal))
    }

    fn validate_network(&mut self, config: ValidationConfig) -> rpki_rp::ValidationRun {
        let mut source = NetworkSource::new(&mut self.net, &self.repos, self.rp_node);
        Validator::new(config).run(&mut source, std::slice::from_ref(&self.tal))
    }
}

#[test]
fn clean_world_validates_fully() {
    let mut w = World::build();
    let run = w.validate_direct(ValidationConfig::at(Moment(2)));
    // ARIN, Sprint, Continental on the tree.
    assert_eq!(run.cas.len(), 3);
    assert_eq!(run.cas.iter().filter(|c| c.handle == "Sprint").count(), 1);
    // Four ROAs → four VRPs.
    assert_eq!(run.vrps.len(), 4);
    assert!(run.vrps.contains(&Vrp::new(p("63.160.64.0/20"), 24, Asn(1239))));
    assert!(run.vrps.contains(&Vrp::new(p("63.174.16.0/20"), 20, Asn(17054))));
    assert!(run.vrps.contains(&Vrp::new(p("63.174.16.0/22"), 22, Asn(7341))));
    // No hard failures (unlisted-file notes aside).
    assert!(
        run.diagnostics.iter().all(|d| matches!(d.issue, Issue::UnlistedFile(_))),
        "{:?}",
        run.diagnostics
    );
    // And origin validation works off the result.
    let cache = run.vrp_cache();
    assert_eq!(cache.classify(Route::new(p("63.174.16.0/22"), Asn(7341))), RouteValidity::Valid);
}

#[test]
fn network_and_direct_agree_on_clean_world() {
    let mut w = World::build();
    let direct = w.validate_direct(ValidationConfig::at(Moment(2)));
    let networked = w.validate_network(ValidationConfig::at(Moment(2)));
    assert_eq!(direct.vrps, networked.vrps);
    assert_eq!(direct.cas.len(), networked.cas.len());
}

#[test]
fn unreachable_repo_loses_subtree_only() {
    let mut w = World::build();
    let continental_node = w.repos.node_of("rpki.continental.example").unwrap();
    w.net.faults.partition(w.rp_node, continental_node);
    let run = w.validate_network(ValidationConfig::at(Moment(2)));
    // Sprint's own VRPs survive; Continental's are gone.
    assert_eq!(run.vrps.len(), 2);
    assert!(run.vrps.iter().all(|v| v.asn == Asn(1239)));
    assert!(run.has_issue(&Issue::UnreachableRepo));
    // The missing covering-ROA now makes the /22 route *unknown* — and a
    // covering ROA from Sprint would have made it invalid; transport
    // faults change route validity. (Section 4 of the paper.)
    let cache = run.vrp_cache();
    assert_eq!(cache.classify(Route::new(p("63.174.16.0/22"), Asn(7341))), RouteValidity::Unknown);
}

#[test]
fn stealthy_withdraw_removes_vrp_without_revocation() {
    let mut w = World::build();
    let target = w.continental.issued_roas().find(|r| r.asn() == Asn(7341)).unwrap().file_name();
    w.continental.withdraw(&target).unwrap();
    w.publish_all(Moment(3));
    let run = w.validate_direct(ValidationConfig::at(Moment(4)));
    assert_eq!(run.vrps.len(), 3);
    // Nothing flagged: the object is simply gone (that is the stealth).
    assert!(!run.has_issue(&Issue::MissingManifest));
    assert!(run.diagnostics.iter().all(|d| matches!(d.issue, Issue::UnlistedFile(_))));
    // Side Effect 6 consequence: the route flips valid → invalid
    // because the /20 ROA still covers it.
    let cache = run.vrp_cache();
    assert_eq!(cache.classify(Route::new(p("63.174.16.0/22"), Asn(7341))), RouteValidity::Invalid);
}

#[test]
fn corrupted_file_detected_and_policy_matters() {
    let mut w = World::build();
    // Corrupt one of Continental's ROAs at rest.
    let target = w.continental.issued_roas().find(|r| r.asn() == Asn(7341)).unwrap().file_name();
    w.repos
        .by_host_mut("rpki.continental.example")
        .unwrap()
        .corrupt_at_rest(&w.continental_dir.clone(), &target);

    // AcceptPartial: the corrupted file is rejected, everything else
    // survives.
    let run = w.validate_direct(ValidationConfig::at(Moment(2)));
    assert!(run.has_issue(&Issue::HashMismatch(target.clone())));
    assert_eq!(run.vrps.len(), 3);

    // RejectPublicationPoint: Continental's whole point is discarded.
    let strict = w.validate_direct(ValidationConfig::strict_at(Moment(2)));
    assert!(strict.has_issue(&Issue::RejectedPublicationPoint));
    assert_eq!(strict.vrps.len(), 2);
    assert!(strict.vrps.iter().all(|v| v.asn == Asn(1239)));
}

#[test]
fn revoked_roa_is_rejected_via_crl() {
    let mut w = World::build();
    let target = w.continental.issued_roas().find(|r| r.asn() == Asn(7341)).unwrap().clone();
    let serial = target.serial();
    let name = target.file_name();
    // Revoke, but *also* keep serving the old ROA bytes (a repository
    // that failed to clean up): the CRL must kill it.
    w.continental.revoke_serial(serial);
    w.publish_all(Moment(3));
    let stale_bytes = {
        use rpki_objects::Encode;
        rpki_objects::RpkiObject::Roa(target.clone()).to_bytes()
    };
    w.repos.by_host_mut("rpki.continental.example").unwrap().publish_raw(
        &w.continental_dir.clone(),
        &name,
        stale_bytes,
    );
    let run = w.validate_direct(ValidationConfig::at(Moment(4)));
    // The lingering file is not on the manifest → unlisted, not used.
    assert!(run.has_issue(&Issue::UnlistedFile(name)));
    assert_eq!(run.vrps.len(), 3);
}

#[test]
fn expired_objects_are_rejected() {
    let mut w = World::build();
    // Far future: everything (TA included) has expired.
    let run = w.validate_direct(ValidationConfig::at(Moment(0) + Span::days(9999)));
    assert!(run.vrps.is_empty());
    assert!(run.has_issue(&Issue::TalRejected));

    // Just past Sprint's 365-day cert: TA still alive, subtree dead.
    let run = w.validate_direct(ValidationConfig::at(Moment(1) + Span::days(366)));
    assert!(run.vrps.is_empty());
    assert!(run.diagnostics.iter().any(|d| matches!(d.issue, Issue::Expired(_))));
}

#[test]
fn overclaiming_child_subtree_rejected() {
    let mut w = World::build();
    // ARIN shrinks Sprint's RC so that Sprint's already-issued objects
    // over-claim — the whacking primitive seen from the validator side.
    let rc = w
        .arin
        .issue_cert(
            "Sprint",
            w.sprint.public_key(),
            rs("63.160.0.0/12"), // 208/11 removed
            w.sprint.sia().clone(),
            Moment(2),
        )
        .unwrap();
    w.sprint.install_cert(rc);
    w.publish_all(Moment(3));
    let run = w.validate_direct(ValidationConfig::at(Moment(4)));
    // Sprint's 208.24.0.0/16 ROA now over-claims and dies; the 63.x ROA
    // survives; Continental (still inside 63.160/12) survives.
    assert!(run.diagnostics.iter().any(|d| matches!(d.issue, Issue::OverClaim(_))));
    assert_eq!(run.vrps.len(), 3);
    assert!(!run.vrps.iter().any(|v| v.prefix == p("208.24.0.0/16")));
}

#[test]
fn missing_crl_noted() {
    let mut w = World::build();
    let crl_name = format!("{}.crl", w.continental.key_id().short());
    w.repos
        .by_host_mut("rpki.continental.example")
        .unwrap()
        .delete(&w.continental_dir.clone(), &crl_name);
    let run = w.validate_direct(ValidationConfig::at(Moment(2)));
    assert!(run.has_issue(&Issue::MissingCrl));
    // Under AcceptPartial the ROAs still load (with the gap noted); the
    // manifest hash check fails nothing because the CRL file is simply
    // absent → MissingFile too.
    assert!(run.diagnostics.iter().any(|d| matches!(d.issue, Issue::MissingFile(_))));
    assert_eq!(run.vrps.len(), 4);
    // Strict policy discards the publication point instead.
    let strict = w.validate_direct(ValidationConfig::strict_at(Moment(2)));
    assert_eq!(strict.vrps.len(), 2);
}

#[test]
fn bogus_tal_rejected() {
    let mut w = World::build();
    let evil = rpkisim_crypto::KeyPair::from_seed("w-evil");
    w.tal = TrustAnchorLocator::new(w.ta_dir.join("arin-root.cer"), evil.public());
    let run = w.validate_direct(ValidationConfig::at(Moment(2)));
    assert!(run.has_issue(&Issue::TalRejected));
    assert!(run.vrps.is_empty());
    assert!(run.cas.is_empty());
}

#[test]
fn in_flight_corruption_surfaces_as_hash_mismatch_or_missing() {
    let mut w = World::build();
    let sprint_node = w.repos.node_of("rpki.sprint.example").unwrap();
    // Corrupt every file frame of Sprint's sync (frame 1 is the
    // listing; 2..=6 are the five files: child cert, two ROAs, CRL,
    // manifest, in BTreeMap order).
    for i in 2..=6 {
        w.net.faults.corrupt_nth(sprint_node, w.rp_node, i);
    }
    let run = w.validate_network(ValidationConfig::at(Moment(2)));
    let hit = run.diagnostics.iter().any(|d| {
        matches!(d.issue, Issue::HashMismatch(_) | Issue::MissingFile(_) | Issue::DecodeFailed(_))
    });
    assert!(hit, "corruption must surface somewhere: {:?}", run.diagnostics);
    // And fewer VRPs than the clean run.
    assert!(run.vrps.len() < 4);
}

#[test]
fn incomplete_policy_default_is_partial() {
    let config = ValidationConfig::at(Moment(0));
    assert_eq!(config.incomplete, IncompletePolicy::AcceptPartial);
    let strict = ValidationConfig::strict_at(Moment(0));
    assert_eq!(strict.incomplete, IncompletePolicy::RejectPublicationPoint);
}
