//! Property tests for RFC 6811 origin validation (DESIGN.md
//! invariant 3), pinned against a brute-force oracle.

use ipres::{Addr, Asn, Prefix};
use proptest::prelude::*;
use rpki_rp::{Route, RouteValidity, Vrp, VrpCache};

/// Small universe: prefixes inside 10.0.0.0/8, lengths 8..=24, origins
/// from a handful of ASNs — overlap probability stays high.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..=0xffff, 8u8..=24).prop_map(|(v, len)| Prefix::new(Addr::v4((10 << 24) | (v << 8)), len))
}

fn arb_vrp() -> impl Strategy<Value = Vrp> {
    (arb_prefix(), 0u8..=8, 1u32..=4).prop_map(|(p, extra, asn)| {
        let max = (p.len() + extra).min(32);
        Vrp::new(p, max, Asn(asn))
    })
}

fn arb_route() -> impl Strategy<Value = Route> {
    (arb_prefix(), 1u32..=5).prop_map(|(p, asn)| Route::new(p, Asn(asn)))
}

/// Brute-force RFC 6811.
fn oracle(vrps: &[Vrp], route: Route) -> RouteValidity {
    let covering: Vec<&Vrp> = vrps.iter().filter(|v| v.covers(route.prefix)).collect();
    if covering.is_empty() {
        RouteValidity::Unknown
    } else if covering.iter().any(|v| v.matches(route.prefix, route.origin)) {
        RouteValidity::Valid
    } else {
        RouteValidity::Invalid
    }
}

proptest! {
    #[test]
    fn classify_agrees_with_oracle(
        vrps in proptest::collection::vec(arb_vrp(), 0..24),
        route in arb_route(),
    ) {
        let cache: VrpCache = vrps.iter().copied().collect();
        prop_assert_eq!(cache.classify(route), oracle(&vrps, route));
    }

    #[test]
    fn invalid_iff_covered_and_unmatched(
        vrps in proptest::collection::vec(arb_vrp(), 0..24),
        route in arb_route(),
    ) {
        let cache: VrpCache = vrps.iter().copied().collect();
        let covered = vrps.iter().any(|v| v.covers(route.prefix));
        let matched = vrps.iter().any(|v| v.matches(route.prefix, route.origin));
        let want = match (covered, matched) {
            (false, _) => RouteValidity::Unknown,
            (true, true) => RouteValidity::Valid,
            (true, false) => RouteValidity::Invalid,
        };
        prop_assert_eq!(cache.classify(route), want);
    }

    /// Removing a VRP that does not cover the route never changes the
    /// route's state; removing a non-matching one never un-validates.
    #[test]
    fn removal_monotonicity(
        vrps in proptest::collection::vec(arb_vrp(), 1..24),
        route in arb_route(),
        pick in any::<prop::sample::Index>(),
    ) {
        let mut cache: VrpCache = vrps.iter().copied().collect();
        let before = cache.classify(route);
        let victim = vrps[pick.index(vrps.len())];
        cache.remove(&victim);
        let after = cache.classify(route);
        if !victim.covers(route.prefix) {
            prop_assert_eq!(before, after, "non-covering removal changed state");
        }
        // A valid route stays valid unless the removed VRP matched it.
        if before == RouteValidity::Valid && !victim.matches(route.prefix, route.origin) {
            prop_assert_eq!(after, RouteValidity::Valid);
        }
        // Removal can never turn unknown into invalid or valid.
        if before == RouteValidity::Unknown {
            prop_assert_eq!(after, RouteValidity::Unknown);
        }
    }

    /// Adding a VRP can only move a route "toward" coverage: unknown can
    /// become valid/invalid (Side Effect 5), invalid can become valid,
    /// but valid can never degrade.
    #[test]
    fn addition_monotonicity(
        vrps in proptest::collection::vec(arb_vrp(), 0..24),
        extra in arb_vrp(),
        route in arb_route(),
    ) {
        let mut cache: VrpCache = vrps.iter().copied().collect();
        let before = cache.classify(route);
        cache.insert(extra);
        let after = cache.classify(route);
        if before == RouteValidity::Valid {
            prop_assert_eq!(after, RouteValidity::Valid);
        }
        if before == RouteValidity::Invalid {
            prop_assert!(after != RouteValidity::Unknown);
        }
    }

    /// A route with a *matching* VRP is immune to subprefix hijacks: any
    /// strictly longer prefix announced by a different origin is
    /// invalid, unless that origin has a matching VRP of its own.
    #[test]
    fn subprefix_hijack_protection(
        vrps in proptest::collection::vec(arb_vrp(), 1..24),
        hijacker in 100u32..=105,
        pick in any::<prop::sample::Index>(),
    ) {
        let cache: VrpCache = vrps.iter().copied().collect();
        let v = vrps[pick.index(vrps.len())];
        // The victim's own route is valid.
        prop_assert_eq!(
            cache.classify(Route::new(v.prefix, v.asn)),
            RouteValidity::Valid
        );
        // A hijacker announcing any subprefix is invalid (the hijacker
        // ASN is outside the VRP universe 1..=4).
        if let Some((left, _)) = v.prefix.children() {
            prop_assert_eq!(
                cache.classify(Route::new(left, Asn(hijacker))),
                RouteValidity::Invalid
            );
        }
    }
}
