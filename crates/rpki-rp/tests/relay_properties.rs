//! Property tests for the relay layer: SLURM (RFC 8416) exception
//! semantics and merge-policy algebra, pinned against first-principles
//! restatements.

use std::collections::BTreeSet;

use ipres::{Addr, Asn, Prefix};
use proptest::prelude::*;
use rpki_rp::{reference_merge, MergePolicy, SlurmFile, SlurmFilter, Vrp};

/// Small universe: prefixes inside 10.0.0.0/8, lengths 8..=24, origins
/// from a handful of ASNs — overlap probability stays high.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..=0xffff, 8u8..=24).prop_map(|(v, len)| Prefix::new(Addr::v4((10 << 24) | (v << 8)), len))
}

fn arb_vrp() -> impl Strategy<Value = Vrp> {
    (arb_prefix(), 0u8..=8, 1u32..=4).prop_map(|(p, extra, asn)| {
        let max = (p.len() + extra).min(32);
        Vrp::new(p, max, Asn(asn))
    })
}

fn arb_filter() -> impl Strategy<Value = SlurmFilter> {
    (0u8..=2, arb_prefix(), 1u32..=4).prop_map(|(kind, p, a)| match kind {
        0 => SlurmFilter::prefix(p),
        1 => SlurmFilter::asn(Asn(a)),
        _ => SlurmFilter::prefix_and_asn(p, Asn(a)),
    })
}

fn arb_slurm() -> impl Strategy<Value = SlurmFile> {
    (proptest::collection::vec(arb_filter(), 0..6), proptest::collection::vec(arb_vrp(), 0..6))
        .prop_map(|(filters, assertions)| SlurmFile { filters, assertions })
}

fn arb_feed() -> impl Strategy<Value = BTreeSet<Vrp>> {
    proptest::collection::vec(arb_vrp(), 0..16).prop_map(|v| v.into_iter().collect())
}

proptest! {
    /// RFC 8416 filter-then-assert is idempotent: the exceptions are a
    /// fixed point after one application.
    #[test]
    fn slurm_apply_is_idempotent(slurm in arb_slurm(), feed in arb_feed()) {
        let once = slurm.apply(&feed);
        prop_assert_eq!(&slurm.apply(&once), &once);
    }

    /// The output is a pure set function of the input: VRP arrival
    /// order (any permutation collapsing to the same set) cannot
    /// change what SLURM produces.
    #[test]
    fn slurm_output_is_order_independent(
        slurm in arb_slurm(),
        vrps in proptest::collection::vec(arb_vrp(), 0..16),
        seed in any::<prop::sample::Index>(),
    ) {
        let forward: BTreeSet<Vrp> = vrps.iter().copied().collect();
        let mut shuffled = vrps.clone();
        shuffled.rotate_left(seed.index(vrps.len().max(1)));
        shuffled.reverse();
        let backward: BTreeSet<Vrp> = shuffled.into_iter().collect();
        prop_assert_eq!(slurm.apply(&forward), slurm.apply(&backward));
    }

    /// Filters strictly drop and assertions strictly add: every output
    /// VRP is either an unfiltered input or an assertion, and every
    /// assertion is present.
    #[test]
    fn slurm_output_is_unfiltered_inputs_plus_assertions(
        slurm in arb_slurm(),
        feed in arb_feed(),
    ) {
        let out = slurm.apply(&feed);
        for v in &out {
            let kept = feed.contains(v) && !slurm.filters.iter().any(|f| f.matches(v));
            let asserted = slurm.assertions.contains(v);
            prop_assert!(kept || asserted, "{v:?} appeared from nowhere");
        }
        for a in &slurm.assertions {
            prop_assert!(out.contains(a), "assertion {a:?} missing from output");
        }
    }

    /// Union merge is associative: folding feed-by-feed equals merging
    /// any bracketing of the same feeds.
    #[test]
    fn union_merge_is_associative(
        a in arb_feed(), b in arb_feed(), c in arb_feed(),
    ) {
        let left_first = reference_merge(
            MergePolicy::Union,
            &[reference_merge(MergePolicy::Union, &[a.clone(), b.clone()]), c.clone()],
        );
        let right_first = reference_merge(
            MergePolicy::Union,
            &[a.clone(), reference_merge(MergePolicy::Union, &[b, c])],
        );
        let flat = reference_merge(MergePolicy::Union, &[a, right_first.clone()]);
        prop_assert_eq!(&left_first, &right_first);
        // Union is also idempotent, so re-merging a constituent feed
        // changes nothing.
        prop_assert_eq!(&flat, &right_first);
    }

    /// Union and All merges are commutative: feed order is irrelevant.
    #[test]
    fn union_and_all_merges_are_commutative(
        feeds in proptest::collection::vec(arb_feed(), 0..5),
        seed in any::<prop::sample::Index>(),
    ) {
        let mut shuffled = feeds.clone();
        shuffled.rotate_left(seed.index(feeds.len().max(1)));
        shuffled.reverse();
        for policy in [MergePolicy::Union, MergePolicy::All] {
            prop_assert_eq!(
                reference_merge(policy, &feeds),
                reference_merge(policy, &shuffled),
            );
        }
    }

    /// Policy ordering: All ⊆ Any ⊆ Union on non-empty feed lists.
    #[test]
    fn merge_policies_are_ordered_by_strictness(
        feeds in proptest::collection::vec(arb_feed(), 1..5),
    ) {
        let union = reference_merge(MergePolicy::Union, &feeds);
        let any = reference_merge(MergePolicy::Any, &feeds);
        let all = reference_merge(MergePolicy::All, &feeds);
        prop_assert!(all.is_subset(&any), "All must be the strictest policy");
        prop_assert!(any.is_subset(&union), "Union must be the loosest policy");
    }
}
