//! Validated ROA payloads and the covering-query cache.

use std::fmt;

use ipres::{Asn, Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};

/// One validated ROA payload: the unit of origin validation (RFC 6811
/// calls these VRPs). A ROA with several prefixes yields several VRPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Vrp {
    /// The authorised prefix.
    pub prefix: Prefix,
    /// Maximum announced length the authorisation tolerates.
    pub max_len: u8,
    /// The authorised origin AS.
    pub asn: Asn,
}

impl Vrp {
    /// Builds a VRP.
    ///
    /// # Panics
    ///
    /// Panics if `max_len` is below the prefix length or beyond the
    /// family width (validated objects can't carry such values; fixture
    /// code could).
    pub fn new(prefix: Prefix, max_len: u8, asn: Asn) -> Self {
        assert!(
            max_len >= prefix.len() && max_len <= prefix.family().bits(),
            "VRP maxLength {max_len} out of range for {prefix}"
        );
        Vrp { prefix, max_len, asn }
    }

    /// RFC 6811 *covers*: the VRP's prefix covers the route's prefix.
    pub fn covers(&self, route_prefix: Prefix) -> bool {
        self.prefix.covers(route_prefix)
    }

    /// RFC 6811 *matches*: covers, and the route is within `max_len`,
    /// and the origin matches.
    pub fn matches(&self, route_prefix: Prefix, origin: Asn) -> bool {
        self.asn == origin && self.covers(route_prefix) && route_prefix.len() <= self.max_len
    }
}

impl fmt::Display for Vrp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.max_len == self.prefix.len() {
            write!(f, "({}, {})", self.prefix, self.asn)
        } else {
            write!(f, "({}-{}, {})", self.prefix, self.max_len, self.asn)
        }
    }
}

/// A queryable set of VRPs: a prefix trie supporting the covering
/// lookups RFC 6811 needs per route.
#[derive(Debug, Default)]
pub struct VrpCache {
    trie: PrefixTrie<(u8, Asn)>,
    all: Vec<Vrp>,
}

impl VrpCache {
    /// An empty cache.
    pub fn new() -> Self {
        VrpCache::default()
    }

    /// Builds a cache from VRPs (duplicates collapse).
    pub fn from_vrps<I: IntoIterator<Item = Vrp>>(vrps: I) -> Self {
        let mut all: Vec<Vrp> = vrps.into_iter().collect();
        all.sort_unstable();
        all.dedup();
        let mut trie = PrefixTrie::new();
        for v in &all {
            trie.insert(v.prefix, (v.max_len, v.asn));
        }
        VrpCache { trie, all }
    }

    /// Adds one VRP (no-op if already present).
    pub fn insert(&mut self, vrp: Vrp) {
        if let Err(pos) = self.all.binary_search(&vrp) {
            self.all.insert(pos, vrp);
            self.trie.insert(vrp.prefix, (vrp.max_len, vrp.asn));
        }
    }

    /// Removes one VRP. Returns whether it was present.
    pub fn remove(&mut self, vrp: &Vrp) -> bool {
        match self.all.binary_search(vrp) {
            Ok(pos) => {
                self.all.remove(pos);
                let removed =
                    self.trie.remove_if(vrp.prefix, |(m, a)| *m == vrp.max_len && *a == vrp.asn);
                debug_assert_eq!(removed.len(), 1);
                true
            }
            Err(_) => false,
        }
    }

    /// All VRPs, sorted.
    pub fn vrps(&self) -> &[Vrp] {
        &self.all
    }

    /// Number of VRPs.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Every VRP whose prefix covers `route_prefix`.
    pub fn covering(&self, route_prefix: Prefix) -> Vec<Vrp> {
        let mut out = Vec::new();
        self.covering_for_each(route_prefix, |v| {
            out.push(v);
            true
        });
        out
    }

    /// Calls `f` on every VRP whose prefix covers `route_prefix`,
    /// shortest prefix first, without allocating. `f` returns whether
    /// to keep scanning; the walk stops early on `false`.
    pub fn covering_for_each<F: FnMut(Vrp) -> bool>(&self, route_prefix: Prefix, mut f: F) {
        self.trie.covering_for_each(route_prefix, |p, &(max_len, asn)| {
            f(Vrp { prefix: p, max_len, asn })
        });
    }
}

impl FromIterator<Vrp> for VrpCache {
    fn from_iter<T: IntoIterator<Item = Vrp>>(iter: T) -> Self {
        VrpCache::from_vrps(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn match_and_cover() {
        let v = Vrp::new(p("63.160.64.0/20"), 24, Asn(1239));
        assert!(v.matches(p("63.160.64.0/20"), Asn(1239)));
        assert!(v.matches(p("63.160.65.0/24"), Asn(1239)));
        assert!(!v.matches(p("63.160.65.0/24"), Asn(666)));
        assert!(!v.matches(p("63.160.64.0/25"), Asn(1239)));
        assert!(v.covers(p("63.160.64.0/25")));
    }

    #[test]
    fn cache_covering_query() {
        let cache: VrpCache = [
            Vrp::new(p("63.160.0.0/12"), 12, Asn(1239)),
            Vrp::new(p("63.174.16.0/20"), 24, Asn(17054)),
            Vrp::new(p("8.0.0.0/8"), 8, Asn(3356)),
        ]
        .into_iter()
        .collect();
        let cov = cache.covering(p("63.174.17.0/24"));
        assert_eq!(cov.len(), 2);
        assert!(cov.iter().any(|v| v.asn == Asn(1239)));
        assert!(cov.iter().any(|v| v.asn == Asn(17054)));
        assert!(cache.covering(p("9.0.0.0/9")).is_empty());
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut cache = VrpCache::new();
        let v = Vrp::new(p("10.0.0.0/8"), 16, Asn(1));
        cache.insert(v);
        cache.insert(v); // duplicate is a no-op
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.covering(p("10.1.0.0/16")), vec![v]);
        assert!(cache.remove(&v));
        assert!(!cache.remove(&v));
        assert!(cache.is_empty());
        assert!(cache.covering(p("10.1.0.0/16")).is_empty());
    }

    #[test]
    fn duplicate_prefix_different_origin_both_kept() {
        let cache: VrpCache =
            [Vrp::new(p("10.0.0.0/8"), 8, Asn(1)), Vrp::new(p("10.0.0.0/8"), 8, Asn(2))]
                .into_iter()
                .collect();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.covering(p("10.0.0.0/8")).len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Vrp::new(p("10.0.0.0/8"), 8, Asn(1)).to_string(), "(10.0.0.0/8, AS1)");
        assert_eq!(Vrp::new(p("10.0.0.0/8"), 24, Asn(1)).to_string(), "(10.0.0.0/8-24, AS1)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_max_len_panics() {
        let _ = Vrp::new(p("10.0.0.0/24"), 8, Asn(1));
    }
}
