//! The notification-cadence fetch scheduler.
//!
//! Production relying parties do not sweep every publication point on
//! every validation run: routinator schedules each point by its own
//! update cadence and re-polls it when its refresh interval expires.
//! [`ScheduledSource`] brings that discipline to the simulated relying
//! party. It wraps any [`ObjectSource`] and, per publication point:
//!
//! - tracks an **EWMA of observed inter-change times** (the RRDP
//!   notification cadence, as seen through content-digest changes) and
//!   derives the next refresh deadline from it, clamped to
//!   [`SchedulePlan::min_refresh`]/[`SchedulePlan::max_refresh`];
//!   points that keep confirming unchanged decay geometrically toward
//!   `max_refresh`, points that churn converge onto their real cadence;
//! - adds **seeded deterministic jitter** so deadlines de-synchronize
//!   instead of thundering in lockstep;
//! - charges every delegated fetch against a per-run **frame budget**
//!   and **time budget**; once either is spent, still-due points are
//!   deferred to the next run and served from the scheduler's last-good
//!   snapshot (the starvation surface the slow-serve campaign games);
//! - puts failing hosts on **exponential backoff**: after
//!   [`SchedulePlan::failure_threshold`] consecutive failed contacts
//!   the whole host is skipped for a doubling cool-down instead of
//!   being re-polled every run — the scheduler-side continuation of the
//!   [`FetchHealth`](crate::resilience::FetchHealth) circuit breaker.
//!
//! A point that is **not due** costs zero frames: `probe_dir` answers
//! from the recorded content marker (so an incremental validator
//! replays the memoized subtree without touching the wire) and
//! `load_dir` serves the scheduler's own snapshot.
//!
//! The **degenerate plan** ([`SchedulePlan::degenerate`]) — zero
//! cadence, infinite budget, no jitter, no backoff — delegates every
//! call 1:1, which makes the scheduled stack byte-identical to the
//! full-sweep baseline. That equivalence is the correctness anchor
//! (proptested in `tests/scheduler_equivalence.rs`); everything the
//! scheduler saves must come from schedule policy, never from silently
//! changing what a delegated fetch returns.

use std::collections::BTreeMap;

use rpki_objects::RepoUri;
use rpki_obs::Recorder;
use rpki_repo::{DirProbe, Freshness, SyncOutcome};
use rpkisim_crypto::Digest;
use serde::Serialize;

use crate::source::ObjectSource;

/// The schedule policy: cadence clamps, jitter, budgets, backoff.
///
/// All durations are simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SchedulePlan {
    /// Shortest refresh interval a point can earn, however fast its
    /// observed cadence.
    pub min_refresh: u64,
    /// Longest refresh interval a quiet point decays to.
    pub max_refresh: u64,
    /// Deadlines get a deterministic per-point offset in
    /// `[0, jitter)`, derived from [`SchedulePlan::seed`], so points
    /// sharing a cadence do not all come due on the same run.
    pub jitter: u64,
    /// Seed for the jitter hash.
    pub seed: u64,
    /// Frames one run may spend on delegated fetches before the rest
    /// of the due set is deferred; `None` is unlimited.
    pub frame_budget: Option<u64>,
    /// Simulated seconds one run may spend inside delegated fetches
    /// before the rest of the due set is deferred; `None` is
    /// unlimited. This is the budget a slow-serving authority burns.
    pub time_budget: Option<u64>,
    /// Consecutive failed contacts before a host trips into backoff.
    pub failure_threshold: u32,
    /// First backoff cool-down; doubles per consecutive trip.
    pub backoff_base: u64,
    /// Ceiling on the doubling backoff cool-down.
    pub backoff_cap: u64,
    /// Wired into [`RrdpSource::fallback_after`](crate::RrdpSource):
    /// how long an RRDP notification must stay unreachable before the
    /// rsync fallback fires. `None` falls back on the first failure.
    pub rrdp_fallback_time: Option<u64>,
}

impl Default for SchedulePlan {
    /// Routinator-flavoured defaults: 10-minute floor, daily ceiling,
    /// 10-minute jitter, hour-long RRDP fallback window, unlimited
    /// budgets (callers opt into scarcity explicitly).
    fn default() -> Self {
        SchedulePlan {
            min_refresh: 600,
            max_refresh: 86_400,
            jitter: 600,
            seed: 0x5c4e_d01e,
            frame_budget: None,
            time_budget: None,
            failure_threshold: 3,
            backoff_base: 600,
            backoff_cap: 14_400,
            rrdp_fallback_time: Some(3_600),
        }
    }
}

impl SchedulePlan {
    /// The identity schedule: every point is due on every run, budgets
    /// are unlimited, jitter and backoff are off, and RRDP falls back
    /// immediately. A stack under this plan is byte-identical to the
    /// unscheduled full sweep.
    pub fn degenerate() -> Self {
        SchedulePlan {
            min_refresh: 0,
            max_refresh: 0,
            jitter: 0,
            seed: 0,
            frame_budget: None,
            time_budget: None,
            failure_threshold: u32::MAX,
            backoff_base: 0,
            backoff_cap: 0,
            rrdp_fallback_time: None,
        }
    }

    fn clamp_interval(&self, interval: u64) -> u64 {
        interval.clamp(self.min_refresh, self.max_refresh)
    }

    fn jitter_for(&self, dir: &RepoUri) -> u64 {
        if self.jitter == 0 {
            return 0;
        }
        splitmix64(self.seed ^ fnv1a(dir.to_string().as_bytes())) % self.jitter
    }
}

/// The same finalizer `ShardPlan` seeds its work-stealing order with:
/// one deterministic, well-mixed u64 per input.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// One publication point's schedule entry.
#[derive(Debug, Clone)]
struct DirSchedule {
    /// Simulated time this point next owes a wire contact.
    next_due: u64,
    /// Current refresh interval (already clamped).
    interval: u64,
    /// EWMA of observed inter-change times; 0 until two changes have
    /// been observed.
    ewma: u64,
    /// When the last content change was observed.
    last_changed_at: u64,
    /// When the last successful contact (load or confirming poll)
    /// finished.
    last_success: u64,
    /// Content digest of the last complete fetch.
    marker: Option<Digest>,
    /// Last-good file set, served while the point is not due or the
    /// budget deferred it.
    files: BTreeMap<String, Vec<u8>>,
    /// Whether a complete fetch has ever populated `files`.
    listed: bool,
}

/// One host's backoff bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct HostSchedule {
    consecutive_failures: u32,
    /// Consecutive backoff trips; the cool-down doubles per trip.
    trips: u32,
    backoff_until: Option<u64>,
}

/// Cumulative scheduler counters; all plain integers so campaign
/// metrics built on them replay byte-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SchedulerStats {
    /// Validation runs the scheduler has fronted.
    pub runs: u64,
    /// Directory visits that were due (delegated, or deferred on
    /// budget).
    pub due: u64,
    /// Directory visits answered from schedule state at zero frames.
    pub not_due: u64,
    /// Full fetches delegated to the wrapped source.
    pub fetched: u64,
    /// Digest polls delegated to the wrapped source.
    pub polled: u64,
    /// Due visits deferred because a budget was spent.
    pub deferred: u64,
    /// Visits skipped because the host was in backoff.
    pub backoff_skips: u64,
    /// Hosts tripped into backoff.
    pub backoff_trips: u64,
    /// Content changes observed (fetches whose digest moved).
    pub changes_observed: u64,
    /// Polls that confirmed an unchanged point.
    pub unchanged_polls: u64,
    /// Frames charged against run budgets, cumulative.
    pub frames_charged: u64,
    /// Simulated seconds charged against run budgets, cumulative.
    pub time_charged: u64,
}

/// Counters of a single run (reset when a [`ScheduledSource`] begins
/// its run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RunStats {
    /// Sim time the run started.
    pub started_at: u64,
    /// Due visits this run.
    pub due: u64,
    /// Zero-frame visits this run.
    pub not_due: u64,
    /// Delegated full fetches this run.
    pub fetched: u64,
    /// Delegated digest polls this run.
    pub polled: u64,
    /// Budget deferrals this run.
    pub deferred: u64,
    /// Backoff skips this run.
    pub backoff_skips: u64,
    /// Frames spent on delegated work this run.
    pub frames_used: u64,
    /// Simulated seconds spent inside delegated work this run.
    pub time_used: u64,
    /// Oldest `now - last_success` over points this run deferred or
    /// served not-due — the staleness a starved schedule accrues.
    pub max_served_age: u64,
}

/// Persistent scheduler state: per-point schedules, per-host backoff,
/// cumulative stats. Owned by the experiment/relying party and lent to
/// a fresh [`ScheduledSource`] each run, like
/// [`ResilientState`](crate::resilience::ResilientState).
#[derive(Debug, Default)]
pub struct SchedulerState {
    dirs: BTreeMap<String, DirSchedule>,
    hosts: BTreeMap<String, HostSchedule>,
    stats: SchedulerStats,
    run: RunStats,
    recorder: Recorder,
}

impl SchedulerState {
    /// Fresh state: every point starts unknown, so the first run is a
    /// full sweep by construction.
    pub fn new() -> Self {
        SchedulerState::default()
    }

    /// Installs an observability recorder; deferrals and backoff
    /// transitions are emitted into it. Disabled by default.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Counters of the current (or just-finished) run.
    pub fn last_run(&self) -> RunStats {
        self.run
    }

    /// Number of publication points with a schedule entry.
    pub fn tracked_dirs(&self) -> usize {
        self.dirs.len()
    }

    /// When `dir` next owes a wire contact, if it is tracked.
    pub fn next_due(&self, dir: &RepoUri) -> Option<u64> {
        self.dirs.get(&dir.to_string()).map(|d| d.next_due)
    }

    /// The refresh interval `dir` has currently earned, if tracked.
    pub fn interval(&self, dir: &RepoUri) -> Option<u64> {
        self.dirs.get(&dir.to_string()).map(|d| d.interval)
    }

    /// Whether `host` is currently in backoff at `now`.
    pub fn host_backing_off(&self, host: &str, now: u64) -> bool {
        self.hosts.get(host).is_some_and(|h| h.backoff_until.is_some_and(|until| now < until))
    }

    /// Starts a new run's budget window.
    fn begin_run(&mut self, now: u64) {
        self.stats.runs += 1;
        self.run = RunStats { started_at: now, ..RunStats::default() };
    }

    fn record_success(&mut self, host: &str) {
        let entry = self.hosts.entry(host.to_owned()).or_default();
        entry.consecutive_failures = 0;
        entry.trips = 0;
        entry.backoff_until = None;
    }

    fn record_failure(&mut self, host: &str, now: u64, plan: &SchedulePlan) {
        let entry = self.hosts.entry(host.to_owned()).or_default();
        entry.consecutive_failures += 1;
        if entry.consecutive_failures >= plan.failure_threshold && plan.backoff_base > 0 {
            entry.trips += 1;
            let shift = (entry.trips - 1).min(16);
            let cooldown = plan
                .backoff_base
                .checked_shl(shift)
                .unwrap_or(u64::MAX)
                .min(plan.backoff_cap.max(plan.backoff_base));
            entry.backoff_until = Some(now + cooldown);
            entry.consecutive_failures = 0;
            self.stats.backoff_trips += 1;
            if self.recorder.is_enabled() {
                self.recorder.count("rp.schedule_backoffs", 1);
                self.recorder
                    .event(now, "rp", "schedule_backoff")
                    .str("host", host)
                    .u64("trips", u64::from(entry.trips))
                    .u64("until", now + cooldown)
                    .emit();
            }
        }
    }
}

/// An [`ObjectSource`] adapter that only lets due publication points
/// reach the wrapped source. See the module docs for the policy.
pub struct ScheduledSource<'s, S> {
    inner: S,
    state: &'s mut SchedulerState,
    plan: SchedulePlan,
}

impl<'s, S: ObjectSource> ScheduledSource<'s, S> {
    /// Wraps `inner` under `plan`, starting a fresh run budget.
    pub fn new(inner: S, state: &'s mut SchedulerState, plan: SchedulePlan) -> Self {
        let now = inner.now();
        state.begin_run(now);
        ScheduledSource { inner, state, plan }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn budget_spent(&self) -> bool {
        self.plan.frame_budget.is_some_and(|b| self.state.run.frames_used >= b)
            || self.plan.time_budget.is_some_and(|b| self.state.run.time_used >= b)
    }

    /// Whether `dir` owes a wire contact right now. Unknown points are
    /// always due; backed-off hosts are never polled.
    fn due(&self, dir: &RepoUri, now: u64) -> DueState {
        if self.state.host_backing_off(dir.host(), now) {
            return DueState::BackedOff;
        }
        match self.state.dirs.get(&dir.to_string()) {
            None => DueState::Due,
            Some(entry) if entry.next_due <= now => DueState::Due,
            Some(_) => DueState::NotDue,
        }
    }

    /// Serves `dir` from schedule state without touching the wire.
    fn serve_snapshot(&mut self, dir: &RepoUri, now: u64) -> SyncOutcome {
        let Some(entry) = self.state.dirs.get(&dir.to_string()) else {
            return SyncOutcome::unreachable(dir.clone());
        };
        if !entry.listed {
            return SyncOutcome::unreachable(dir.clone());
        }
        let age = now.saturating_sub(entry.last_success);
        self.state.run.max_served_age = self.state.run.max_served_age.max(age);
        let mut out = SyncOutcome::fresh(dir.clone(), entry.files.clone());
        out.content = entry.marker;
        out
    }

    /// Charges one delegated exchange against the run budget.
    fn charge(&mut self, frames_before: Option<u64>, t0: u64) {
        let frames = self
            .inner
            .wire_frames()
            .zip(frames_before)
            .map_or(0, |(after, before)| after.saturating_sub(before));
        let elapsed = self.inner.now().saturating_sub(t0);
        self.state.run.frames_used += frames;
        self.state.run.time_used += elapsed;
        self.state.stats.frames_charged += frames;
        self.state.stats.time_charged += elapsed;
    }

    fn note_deferred(&mut self, dir: &RepoUri, now: u64) {
        self.state.run.deferred += 1;
        self.state.stats.deferred += 1;
        if self.state.recorder.is_enabled() {
            self.state.recorder.count("rp.schedule_deferrals", 1);
            self.state
                .recorder
                .event(now, "rp", "schedule_defer")
                .str("host", dir.host())
                .u64("frames_used", self.state.run.frames_used)
                .u64("time_used", self.state.run.time_used)
                .emit();
        }
    }

    /// Folds a successful fetch's digest into the schedule: changed
    /// content feeds the cadence EWMA, unchanged content decays the
    /// interval geometrically toward `max_refresh`.
    fn reschedule_after_fetch(&mut self, dir: &RepoUri, outcome: &SyncOutcome) {
        let done = self.inner.now();
        let digest = outcome.content_digest();
        let key = dir.to_string();
        let plan = self.plan;
        let entry = self.state.dirs.entry(key).or_insert_with(|| DirSchedule {
            next_due: 0,
            interval: plan.min_refresh,
            ewma: 0,
            last_changed_at: done,
            last_success: done,
            marker: None,
            files: BTreeMap::new(),
            listed: false,
        });
        let changed = entry.marker != digest;
        if changed {
            if entry.marker.is_some() {
                // Second or later observed change: a cadence sample.
                let sample = done.saturating_sub(entry.last_changed_at).max(1);
                entry.ewma = if entry.ewma == 0 { sample } else { (3 * entry.ewma + sample) / 4 };
                entry.interval = plan.clamp_interval(entry.ewma);
            } else {
                // First contact: start attentive and let decay or the
                // EWMA move the interval from here.
                entry.interval = plan.min_refresh;
            }
            entry.last_changed_at = done;
            self.state.stats.changes_observed += 1;
        } else {
            // Confirmed unchanged: decay geometrically toward the
            // ceiling. `max(1)` keeps a zero interval (the degenerate
            // plan) moving through the clamp instead of sticking at 0
            // by accident — the clamp pins it back to the plan's range.
            entry.interval = plan.clamp_interval(entry.interval.saturating_mul(2).max(1));
        }
        entry.marker = digest;
        entry.files = outcome.files.clone();
        entry.listed = true;
        entry.last_success = done;
        entry.next_due = done + entry.interval + plan.jitter_for(dir);
    }

    /// Reschedules a confirming (unchanged) digest poll.
    fn reschedule_after_poll(&mut self, dir: &RepoUri) {
        let done = self.inner.now();
        let plan = self.plan;
        if let Some(entry) = self.state.dirs.get_mut(&dir.to_string()) {
            entry.interval = plan.clamp_interval(entry.interval.saturating_mul(2).max(1));
            entry.last_success = done;
            entry.next_due = done + entry.interval + plan.jitter_for(dir);
        }
        self.state.stats.unchanged_polls += 1;
    }

    /// Reschedules after a failed contact: per-point retry pacing on
    /// top of the host-level backoff [`SchedulerState::record_failure`]
    /// may have armed.
    fn reschedule_after_failure(&mut self, dir: &RepoUri) {
        let done = self.inner.now();
        let retry = self.plan.backoff_base.max(self.plan.min_refresh);
        if let Some(entry) = self.state.dirs.get_mut(&dir.to_string()) {
            entry.next_due = done + retry;
        }
    }
}

enum DueState {
    Due,
    NotDue,
    BackedOff,
}

impl<S: ObjectSource> ObjectSource for ScheduledSource<'_, S> {
    fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome {
        let now = self.inner.now();
        match self.due(dir, now) {
            DueState::BackedOff => {
                self.state.run.backoff_skips += 1;
                self.state.stats.backoff_skips += 1;
                return self.serve_snapshot(dir, now);
            }
            DueState::NotDue => {
                self.state.run.not_due += 1;
                self.state.stats.not_due += 1;
                return self.serve_snapshot(dir, now);
            }
            DueState::Due => {}
        }
        self.state.run.due += 1;
        self.state.stats.due += 1;
        let has_snapshot = self.state.dirs.get(&dir.to_string()).is_some_and(|e| e.listed);
        if self.budget_spent() && has_snapshot {
            // Budget gone: defer to the next run. A point with no
            // snapshot is fetched regardless — deferral must never
            // blank out a subtree the validator has never seen.
            self.note_deferred(dir, now);
            return self.serve_snapshot(dir, now);
        }
        let frames_before = self.inner.wire_frames();
        let outcome = self.inner.load_dir(dir);
        self.charge(frames_before, now);
        self.state.run.fetched += 1;
        self.state.stats.fetched += 1;
        // A stale outcome means a resilience layer below already
        // bridged a failed contact; schedule-wise that is a failure.
        let contact_ok = outcome.listed && outcome.freshness == Freshness::Fresh;
        if contact_ok {
            self.state.record_success(dir.host());
            self.reschedule_after_fetch(dir, &outcome);
        } else {
            let done = self.inner.now();
            self.state.record_failure(dir.host(), done, &self.plan);
            self.reschedule_after_failure(dir);
        }
        outcome
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn wire_frames(&self) -> Option<u64> {
        self.inner.wire_frames()
    }

    fn probe_dir(&mut self, dir: &RepoUri) -> Option<DirProbe> {
        let now = self.inner.now();
        match self.due(dir, now) {
            DueState::BackedOff | DueState::NotDue => {
                // Zero-frame answer from the recorded marker: a
                // matching incremental memo replays without any wire
                // traffic at all.
                let entry = self.state.dirs.get(&dir.to_string())?;
                if !entry.listed {
                    return None;
                }
                let age = now.saturating_sub(entry.last_success);
                self.state.run.max_served_age = self.state.run.max_served_age.max(age);
                self.state.run.not_due += 1;
                self.state.stats.not_due += 1;
                return Some(DirProbe { dir: dir.clone(), listed: true, digest: entry.marker });
            }
            DueState::Due => {}
        }
        let has_snapshot =
            self.state.dirs.get(&dir.to_string()).is_some_and(|e| e.listed && e.marker.is_some());
        if self.budget_spent() && has_snapshot {
            self.state.run.due += 1;
            self.state.stats.due += 1;
            self.note_deferred(dir, now);
            let entry = &self.state.dirs[&dir.to_string()];
            return Some(DirProbe { dir: dir.clone(), listed: true, digest: entry.marker });
        }
        let frames_before = self.inner.wire_frames();
        let probe = self.inner.probe_dir(dir)?;
        self.charge(frames_before, now);
        self.state.run.polled += 1;
        self.state.stats.polled += 1;
        if probe.listed {
            let matches = self
                .state
                .dirs
                .get(&dir.to_string())
                .is_some_and(|e| e.marker.is_some() && e.marker == probe.digest);
            if matches {
                // Confirmed unchanged: this poll settles the visit, so
                // it counts as the due contact and reschedules.
                self.state.run.due += 1;
                self.state.stats.due += 1;
                self.state.record_success(dir.host());
                self.reschedule_after_poll(dir);
            }
            // A digest mismatch leaves the entry due: the follow-up
            // load_dir performs the real fetch and reschedules there.
        }
        Some(probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scriptable inner source with a settable clock and content
    /// version, counting wire activity.
    struct FakeSource {
        now: u64,
        up: bool,
        version: u8,
        frames: u64,
        loads: u64,
        probes: u64,
    }

    impl FakeSource {
        fn new(now: u64) -> Self {
            FakeSource { now, up: true, version: 1, frames: 0, loads: 0, probes: 0 }
        }

        fn outcome(&self, dir: &RepoUri) -> SyncOutcome {
            let mut files = BTreeMap::new();
            files.insert("a.roa".to_owned(), vec![self.version]);
            let mut out = SyncOutcome::fresh(dir.clone(), files);
            out.content = out.content_digest();
            out
        }
    }

    impl ObjectSource for FakeSource {
        fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome {
            self.loads += 1;
            self.frames += 4;
            if self.up {
                self.outcome(dir)
            } else {
                SyncOutcome::unreachable(dir.clone())
            }
        }

        fn now(&self) -> u64 {
            self.now
        }

        fn probe_dir(&mut self, dir: &RepoUri) -> Option<DirProbe> {
            self.probes += 1;
            self.frames += 1;
            if self.up {
                let digest = self.outcome(dir).content_digest();
                Some(DirProbe { dir: dir.clone(), listed: true, digest })
            } else {
                None
            }
        }

        fn wire_frames(&self) -> Option<u64> {
            Some(self.frames)
        }
    }

    fn dir(n: u32) -> RepoUri {
        RepoUri::new("h", &["repo", &format!("ca{n}")])
    }

    fn plan() -> SchedulePlan {
        SchedulePlan { min_refresh: 100, max_refresh: 1_600, jitter: 0, ..SchedulePlan::default() }
    }

    #[test]
    fn first_contact_fetches_then_not_due_serves_snapshot() {
        let mut state = SchedulerState::new();
        let mut inner = FakeSource::new(0);
        {
            let mut src = ScheduledSource::new(&mut inner, &mut state, plan());
            let out = src.load_dir(&dir(0));
            assert!(out.is_complete());
        }
        assert_eq!(inner.loads, 1);
        assert_eq!(state.next_due(&dir(0)), Some(100));
        // Second run before the deadline: zero wire activity, same
        // bytes.
        inner.now = 50;
        {
            let mut src = ScheduledSource::new(&mut inner, &mut state, plan());
            let out = src.load_dir(&dir(0));
            assert!(out.is_complete());
            assert_eq!(out.files["a.roa"], vec![1]);
        }
        assert_eq!(inner.loads, 1, "a not-due point must not touch the wire");
        assert_eq!(state.stats().not_due, 1);
    }

    #[test]
    fn unchanged_confirmations_decay_toward_max_refresh() {
        let mut state = SchedulerState::new();
        let mut inner = FakeSource::new(0);
        let p = plan();
        let mut expected = p.min_refresh;
        ScheduledSource::new(&mut inner, &mut state, p).load_dir(&dir(0));
        for _ in 0..6 {
            inner.now = state.next_due(&dir(0)).unwrap();
            ScheduledSource::new(&mut inner, &mut state, p).load_dir(&dir(0));
            expected = (expected * 2).min(p.max_refresh);
            assert_eq!(state.interval(&dir(0)), Some(expected));
        }
        assert_eq!(state.interval(&dir(0)), Some(p.max_refresh));
    }

    #[test]
    fn cadence_ewma_converges_onto_change_rate() {
        let mut state = SchedulerState::new();
        let mut inner = FakeSource::new(0);
        let p = plan();
        ScheduledSource::new(&mut inner, &mut state, p).load_dir(&dir(0));
        // The point changes every 400 s, and we poll it when due.
        for round in 1..=8u64 {
            inner.now = round * 400;
            inner.version = inner.version.wrapping_add(1);
            ScheduledSource::new(&mut inner, &mut state, p).load_dir(&dir(0));
        }
        let interval = state.interval(&dir(0)).unwrap();
        assert!(
            (300..=500).contains(&interval),
            "EWMA should track the 400 s cadence, got {interval}"
        );
    }

    #[test]
    fn frame_budget_defers_and_first_contact_overrides() {
        let mut state = SchedulerState::new();
        let mut inner = FakeSource::new(0);
        let p = SchedulePlan { frame_budget: Some(4), ..plan() };
        {
            let mut src = ScheduledSource::new(&mut inner, &mut state, p);
            // First contact always fetches, even with the budget gone
            // after the first load (4 frames ≥ budget 4).
            assert!(src.load_dir(&dir(0)).is_complete());
            assert!(src.load_dir(&dir(1)).is_complete(), "no snapshot yet: must fetch");
        }
        assert_eq!(inner.loads, 2);
        // Next run: both due again (make them due), budget allows one.
        inner.now = 10_000;
        inner.version = 7;
        {
            let mut src = ScheduledSource::new(&mut inner, &mut state, p);
            assert!(src.load_dir(&dir(0)).is_complete());
            let out = src.load_dir(&dir(1));
            assert!(out.is_complete(), "deferred point serves its snapshot");
            assert_eq!(out.files["a.roa"], vec![1], "snapshot bytes, not the new version");
        }
        assert_eq!(inner.loads, 3, "the second point was deferred, not fetched");
        assert_eq!(state.stats().deferred, 1);
        assert!(state.last_run().max_served_age > 0);
    }

    #[test]
    fn failing_host_trips_into_exponential_backoff() {
        let mut state = SchedulerState::new();
        let mut inner = FakeSource::new(0);
        let p =
            SchedulePlan { failure_threshold: 2, backoff_base: 200, backoff_cap: 1_000, ..plan() };
        ScheduledSource::new(&mut inner, &mut state, p).load_dir(&dir(0));
        inner.up = false;
        for run in 0..2u64 {
            inner.now = 1_000 + run * 500;
            ScheduledSource::new(&mut inner, &mut state, p).load_dir(&dir(0));
        }
        assert!(state.host_backing_off("h", 1_600));
        assert_eq!(state.stats().backoff_trips, 1);
        // While backing off, the snapshot serves and the wire stays
        // quiet.
        let loads_before = inner.loads;
        inner.now = 1_600;
        {
            let mut src = ScheduledSource::new(&mut inner, &mut state, p);
            let out = src.load_dir(&dir(0));
            assert!(out.is_complete());
        }
        assert_eq!(inner.loads, loads_before);
        assert_eq!(state.stats().backoff_skips, 1);
    }

    #[test]
    fn degenerate_plan_delegates_everything() {
        let mut state = SchedulerState::new();
        let mut inner = FakeSource::new(0);
        let p = SchedulePlan::degenerate();
        for run in 0..5u64 {
            inner.now = run * 7;
            let mut src = ScheduledSource::new(&mut inner, &mut state, p);
            src.probe_dir(&dir(0));
            src.load_dir(&dir(0));
        }
        assert_eq!(inner.loads, 5, "every run must reach the wire");
        assert_eq!(inner.probes, 5);
        assert_eq!(state.stats().not_due, 0);
        assert_eq!(state.stats().deferred, 0);
    }

    #[test]
    fn not_due_probe_replays_marker_digest() {
        let mut state = SchedulerState::new();
        let mut inner = FakeSource::new(0);
        let p = plan();
        let marker = {
            let mut src = ScheduledSource::new(&mut inner, &mut state, p);
            src.load_dir(&dir(0)).content_digest()
        };
        inner.now = 10;
        let probes_before = inner.probes;
        let probe = {
            let mut src = ScheduledSource::new(&mut inner, &mut state, p);
            src.probe_dir(&dir(0)).unwrap()
        };
        assert_eq!(inner.probes, probes_before, "not-due probe is answered locally");
        assert!(probe.listed);
        assert_eq!(probe.digest, marker);
    }

    #[test]
    fn due_probe_confirming_unchanged_reschedules() {
        let mut state = SchedulerState::new();
        let mut inner = FakeSource::new(0);
        let p = plan();
        ScheduledSource::new(&mut inner, &mut state, p).load_dir(&dir(0));
        inner.now = state.next_due(&dir(0)).unwrap();
        {
            let mut src = ScheduledSource::new(&mut inner, &mut state, p);
            let probe = src.probe_dir(&dir(0)).unwrap();
            assert!(probe.listed);
        }
        assert_eq!(state.stats().unchanged_polls, 1);
        assert!(state.next_due(&dir(0)).unwrap() > inner.now, "the poll rescheduled the point");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = SchedulePlan { jitter: 300, ..SchedulePlan::default() };
        let a = p.jitter_for(&dir(1));
        let b = p.jitter_for(&dir(2));
        assert!(a < 300 && b < 300);
        assert_eq!(a, p.jitter_for(&dir(1)), "same seed, same point, same offset");
        let other = SchedulePlan { seed: 99, ..p };
        // Different seeds de-correlate (overwhelmingly likely to
        // differ for at least one of two points).
        assert!(a != other.jitter_for(&dir(1)) || b != other.jitter_for(&dir(2)));
    }
}
