//! Object retrieval abstractions.
//!
//! The validator doesn't care *how* bytes arrive — only which bytes do.
//! [`ObjectSource`] captures that: given a publication-point directory,
//! return whatever a sync produced. Three implementations:
//!
//! - [`NetworkSource`] — real simulated retrieval over `netsim`,
//!   subject to partitions, loss, corruption, and the BGP reachability
//!   oracle. This is the one experiments use. Optionally retries under
//!   a [`SyncPolicy`].
//! - [`DirectSource`] — reads repository state directly (a "perfect
//!   network"), isolating validation logic from transport effects.
//! - [`ResilientSource`] — wraps any other source with last-good
//!   snapshot fallback and per-repository circuit breaking (see
//!   [`crate::resilience`]).

use std::collections::BTreeMap;

use netsim::{Network, NodeId};
use rpki_objects::RepoUri;
use rpki_repo::{
    sync_dir, sync_dir_with_policy, DirProbe, RepoRegistry, SyncOutcome, SyncPolicy, SyncReport,
};

pub use crate::resilience::ResilientSource;

/// Supplies publication-point contents to the validator.
pub trait ObjectSource {
    /// Syncs one directory, returning whatever arrived.
    fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome;

    /// The source's notion of the current simulated time, in seconds.
    /// Sources without a clock (e.g. [`DirectSource`]) report 0; the
    /// resilience layer needs a real clock to age snapshots.
    fn now(&self) -> u64 {
        0
    }

    /// Digest-only probe of one directory: the canonical content
    /// digest a complete sync would produce, without transferring the
    /// listing or any file, so an incremental validator can check a
    /// cached subtree for staleness at one-frame cost. `None` means
    /// the source cannot probe (the caller falls back to
    /// [`ObjectSource::load_dir`]).
    fn probe_dir(&mut self, _dir: &RepoUri) -> Option<DirProbe> {
        None
    }

    /// Cumulative frames this source's network has sent, if it has
    /// one. The fetch scheduler charges per-directory deltas of this
    /// counter against its frame budget; sources without a network
    /// (e.g. [`DirectSource`]) report `None` and are never budgeted.
    fn wire_frames(&self) -> Option<u64> {
        None
    }
}

impl<S: ObjectSource + ?Sized> ObjectSource for &mut S {
    fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome {
        (**self).load_dir(dir)
    }

    fn now(&self) -> u64 {
        (**self).now()
    }

    fn probe_dir(&mut self, dir: &RepoUri) -> Option<DirProbe> {
        (**self).probe_dir(dir)
    }

    fn wire_frames(&self) -> Option<u64> {
        (**self).wire_frames()
    }
}

/// Retrieval over the simulated network.
pub struct NetworkSource<'a> {
    net: &'a mut Network,
    repos: &'a RepoRegistry,
    client: NodeId,
    policy: Option<SyncPolicy>,
    reports: Vec<(String, SyncReport)>,
}

impl<'a> NetworkSource<'a> {
    /// A source fetching from `client`'s vantage point, one bare
    /// session per directory (no retries).
    pub fn new(net: &'a mut Network, repos: &'a RepoRegistry, client: NodeId) -> Self {
        NetworkSource { net, repos, client, policy: None, reports: Vec::new() }
    }

    /// A source that retries each directory under `policy`.
    pub fn with_policy(
        net: &'a mut Network,
        repos: &'a RepoRegistry,
        client: NodeId,
        policy: SyncPolicy,
    ) -> Self {
        NetworkSource { net, repos, client, policy: Some(policy), reports: Vec::new() }
    }

    /// Per-directory [`SyncReport`]s collected so far (retrying sources
    /// only; a bare source records nothing).
    pub fn reports(&self) -> &[(String, SyncReport)] {
        &self.reports
    }
}

impl ObjectSource for NetworkSource<'_> {
    fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome {
        match self.policy {
            None => sync_dir(self.net, self.repos, self.client, dir),
            Some(policy) => {
                let (outcome, report) =
                    sync_dir_with_policy(self.net, self.repos, self.client, dir, &policy);
                self.reports.push((dir.to_string(), report));
                outcome
            }
        }
    }

    fn now(&self) -> u64 {
        self.net.now()
    }

    fn probe_dir(&mut self, dir: &RepoUri) -> Option<DirProbe> {
        let deadline = self.policy.and_then(|p| p.deadline);
        Some(rpki_repo::probe_dir(self.net, self.repos, self.client, dir, deadline))
    }

    fn wire_frames(&self) -> Option<u64> {
        Some(self.net.stats().sent)
    }
}

/// Perfect retrieval straight from at-rest repository state.
pub struct DirectSource<'a> {
    repos: &'a RepoRegistry,
}

impl<'a> DirectSource<'a> {
    /// A source reading `repos` without a network in between.
    pub fn new(repos: &'a RepoRegistry) -> Self {
        DirectSource { repos }
    }
}

impl ObjectSource for DirectSource<'_> {
    fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome {
        match self.repos.by_host(dir.host()) {
            Some(repo) => {
                let mut files = BTreeMap::new();
                for (name, _) in repo.list(dir) {
                    if let Some(bytes) = repo.fetch(dir, &name) {
                        files.insert(name, bytes.to_vec());
                    }
                }
                SyncOutcome {
                    files,
                    listed: true,
                    freshness: rpki_repo::Freshness::Fresh,
                    content: Some(repo.content_digest(dir)),
                    ..SyncOutcome::unreachable(dir.clone())
                }
            }
            None => SyncOutcome::unreachable(dir.clone()),
        }
    }

    fn probe_dir(&mut self, dir: &RepoUri) -> Option<DirProbe> {
        match self.repos.by_host(dir.host()) {
            Some(repo) => Some(DirProbe {
                dir: dir.clone(),
                listed: true,
                digest: Some(repo.content_digest(dir)),
            }),
            None => Some(DirProbe::unreachable(dir.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_source_reads_at_rest_state() {
        let mut net = Network::new(0);
        let mut repos = RepoRegistry::new();
        let node = repos.create(&mut net, "h");
        let dir = RepoUri::new("h", &["repo"]);
        repos.get_mut(node).unwrap().publish_raw(&dir, "a", vec![1]);
        let mut src = DirectSource::new(&repos);
        let out = src.load_dir(&dir);
        assert!(out.listed);
        assert_eq!(out.files["a"], vec![1]);
        // Unknown host: unreachable.
        let out = src.load_dir(&RepoUri::new("nope", &["repo"]));
        assert!(!out.listed);
    }

    #[test]
    fn network_source_sees_transport_faults() {
        let mut net = Network::new(0);
        let client = net.add_node("rp");
        let mut repos = RepoRegistry::new();
        let node = repos.create(&mut net, "h");
        let dir = RepoUri::new("h", &["repo"]);
        repos.get_mut(node).unwrap().publish_raw(&dir, "a", vec![1]);
        net.faults.partition(client, node);
        let mut src = NetworkSource::new(&mut net, &repos, client);
        let out = src.load_dir(&dir);
        assert!(!out.listed);
        // DirectSource over the same world is oblivious to the
        // partition — that contrast is the point.
        let mut direct = DirectSource::new(&repos);
        assert!(direct.load_dir(&dir).listed);
    }

    #[test]
    fn policy_source_retries_and_reports() {
        let mut net = Network::new(0);
        let client = net.add_node("rp");
        let mut repos = RepoRegistry::new();
        let node = repos.create(&mut net, "h");
        let dir = RepoUri::new("h", &["repo"]);
        repos.get_mut(node).unwrap().publish_raw(&dir, "a", vec![1]);
        // First file frame lost; the retry must recover it.
        net.faults.drop_nth(node, client, 2);
        let mut src = NetworkSource::with_policy(&mut net, &repos, client, SyncPolicy::default());
        let out = src.load_dir(&dir);
        assert!(out.is_complete());
        assert_eq!(src.reports().len(), 1);
        assert_eq!(src.reports()[0].1.attempts.len(), 2);
    }

    #[test]
    fn probe_digest_agrees_with_load_digest() {
        let mut net = Network::new(0);
        let client = net.add_node("rp");
        let mut repos = RepoRegistry::new();
        let node = repos.create(&mut net, "h");
        let dir = RepoUri::new("h", &["repo"]);
        repos.get_mut(node).unwrap().publish_raw(&dir, "a", vec![1, 2]);
        let mut direct = DirectSource::new(&repos);
        let probe = direct.probe_dir(&dir).unwrap();
        assert_eq!(probe.content_digest(), direct.load_dir(&dir).content_digest());
        let mut netsrc = NetworkSource::new(&mut net, &repos, client);
        let probe = netsrc.probe_dir(&dir).unwrap();
        assert_eq!(probe.content_digest(), netsrc.load_dir(&dir).content_digest());
    }

    #[test]
    fn network_source_exposes_simulated_clock() {
        let mut net = Network::new(0);
        let client = net.add_node("rp");
        net.advance_to(777);
        let repos = RepoRegistry::new();
        let src = NetworkSource::new(&mut net, &repos, client);
        assert_eq!(src.now(), 777);
    }
}
