//! Object retrieval abstractions.
//!
//! The validator doesn't care *how* bytes arrive — only which bytes do.
//! [`ObjectSource`] captures that: given a publication-point directory,
//! return whatever a sync produced. Two implementations:
//!
//! - [`NetworkSource`] — real simulated retrieval over `netsim`,
//!   subject to partitions, loss, corruption, and the BGP reachability
//!   oracle. This is the one experiments use.
//! - [`DirectSource`] — reads repository state directly (a "perfect
//!   network"), isolating validation logic from transport effects.

use std::collections::BTreeMap;

use netsim::{Network, NodeId};
use rpki_objects::RepoUri;
use rpki_repo::{sync_dir, RepoRegistry, SyncOutcome};

/// Supplies publication-point contents to the validator.
pub trait ObjectSource {
    /// Syncs one directory, returning whatever arrived.
    fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome;
}

/// Retrieval over the simulated network.
pub struct NetworkSource<'a> {
    net: &'a mut Network,
    repos: &'a RepoRegistry,
    client: NodeId,
}

impl<'a> NetworkSource<'a> {
    /// A source fetching from `client`'s vantage point.
    pub fn new(net: &'a mut Network, repos: &'a RepoRegistry, client: NodeId) -> Self {
        NetworkSource { net, repos, client }
    }
}

impl ObjectSource for NetworkSource<'_> {
    fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome {
        sync_dir(self.net, self.repos, self.client, dir)
    }
}

/// Perfect retrieval straight from at-rest repository state.
pub struct DirectSource<'a> {
    repos: &'a RepoRegistry,
}

impl<'a> DirectSource<'a> {
    /// A source reading `repos` without a network in between.
    pub fn new(repos: &'a RepoRegistry) -> Self {
        DirectSource { repos }
    }
}

impl ObjectSource for DirectSource<'_> {
    fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome {
        match self.repos.by_host(dir.host()) {
            Some(repo) => {
                let mut files = BTreeMap::new();
                for (name, _) in repo.list(dir) {
                    if let Some(bytes) = repo.fetch(dir, &name) {
                        files.insert(name, bytes.to_vec());
                    }
                }
                SyncOutcome { dir: dir.clone(), files, missing: Vec::new(), listed: true }
            }
            None => SyncOutcome {
                dir: dir.clone(),
                files: BTreeMap::new(),
                missing: Vec::new(),
                listed: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_source_reads_at_rest_state() {
        let mut net = Network::new(0);
        let mut repos = RepoRegistry::new();
        let node = repos.create(&mut net, "h");
        let dir = RepoUri::new("h", &["repo"]);
        repos.get_mut(node).publish_raw(&dir, "a", vec![1]);
        let mut src = DirectSource::new(&repos);
        let out = src.load_dir(&dir);
        assert!(out.listed);
        assert_eq!(out.files["a"], vec![1]);
        // Unknown host: unreachable.
        let out = src.load_dir(&RepoUri::new("nope", &["repo"]));
        assert!(!out.listed);
    }

    #[test]
    fn network_source_sees_transport_faults() {
        let mut net = Network::new(0);
        let client = net.add_node("rp");
        let mut repos = RepoRegistry::new();
        let node = repos.create(&mut net, "h");
        let dir = RepoUri::new("h", &["repo"]);
        repos.get_mut(node).publish_raw(&dir, "a", vec![1]);
        net.faults.partition(client, node);
        let mut src = NetworkSource::new(&mut net, &repos, client);
        let out = src.load_dir(&dir);
        assert!(!out.listed);
        // DirectSource over the same world is oblivious to the
        // partition — that contrast is the point.
        let mut direct = DirectSource::new(&repos);
        assert!(direct.load_dir(&dir).listed);
    }
}
