//! RTR sessions framed over the simulated network.
//!
//! The protocol state machines in [`crate::rtr`] are pure; this module
//! puts them on the wire. Every PDU travels as a tagged netsim frame,
//! which buys the RTR hop the full fault model — stalls, partitions,
//! drops, and corruption now hit the router feed path exactly like they
//! hit rsync and RRDP. That is the hop where Stalloris-style staleness
//! reaches operators: a perfectly synchronised relying party whose
//! routers cannot hear about the new serial is, from BGP's point of
//! view, a stale relying party.
//!
//! Three pieces:
//!
//! - [`RtrFabric`] — the cache side: one [`RtrServer`] plus a
//!   per-router session table. Publishing fans a single `SerialNotify`
//!   out to every attached router; each router then pulls only the
//!   delta since its own acknowledged serial (serial-diff fan-out).
//!   The per-serial delta history is bounded, so a router that falls
//!   off the window degrades to a snapshot resync via `CacheReset`.
//! - [`RtrRouter`] — the router side: one [`RtrClient`] that reacts to
//!   delivered frames (notify → query, reset → full resync) without any
//!   out-of-band calls into the server.
//! - [`pump_until`] — a deadline-bounded dispatch loop. Frames stalled
//!   past the deadline *stay queued*; combined with
//!   [`Network::flush_pair`] that models an RTR session timeout, and
//!   the stranded routers show up in the staleness metrics instead of
//!   being silently retried to convergence.
//!
//! Frame tags are `0x43` (router → cache) and `0x53` (cache → router),
//! disjoint from the rsync frames (1–4) and the RRDP frames
//! (`0x21`–`0x23`, `0x31`–`0x34`), so a mis-routed or corrupted frame
//! is rejected at the tag byte rather than misparsed.

use std::collections::BTreeMap;

use netsim::{Delivery, Network, NodeId, Occurrence};
use rpki_objects::{Decode, DecodeError, Encode, Reader};

use crate::rtr::{serial_distance, ClientAction, RtrClient, RtrPdu, RtrServer, VrpUpdate};
use crate::vrp::Vrp;

/// Frame tag on router → cache RTR frames (queries).
pub const FRAME_RTR_QUERY: u8 = 0x43;
/// Frame tag on cache → router RTR frames (notifies and responses).
pub const FRAME_RTR_DATA: u8 = 0x53;

/// Encodes `pdu` behind the given frame tag.
pub fn frame(tag: u8, pdu: &RtrPdu) -> Vec<u8> {
    let mut out = vec![tag];
    pdu.encode(&mut out);
    out
}

/// Decodes a frame, insisting on the expected tag and full consumption.
pub fn unframe(tag: u8, payload: &[u8]) -> Result<RtrPdu, DecodeError> {
    let mut r = Reader::new(payload);
    let got = r.u8()?;
    if got != tag {
        return Err(DecodeError::BadTag(got));
    }
    let pdu = RtrPdu::decode(&mut r)?;
    if !r.is_empty() {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(pdu)
}

/// An endpoint that owns a netsim node and consumes frames addressed to
/// it. [`pump_until`] dispatches deliveries by destination node.
pub trait RtrEndpoint {
    /// The netsim node this endpoint answers for.
    fn node(&self) -> NodeId;
    /// Consumes one delivered frame (possibly sending replies).
    fn deliver(&mut self, net: &mut Network, delivery: &Delivery);
}

/// Counters the fabric keeps about its own traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// `SerialNotify` frames fanned out after publishes.
    pub notifies_sent: u64,
    /// Queries answered (serial and reset).
    pub queries_handled: u64,
    /// Responses that had to be `CacheReset` (history miss, session
    /// mismatch, future serial).
    pub resets_served: u64,
    /// Data frames sent (every cache → router frame, notifies included).
    pub data_frames_sent: u64,
    /// Frames that failed tag or PDU decoding (corruption, mis-routing).
    pub frames_rejected: u64,
}

/// The cache side of the framed protocol: an [`RtrServer`] plus the
/// session table that makes fan-out and staleness measurable.
#[derive(Debug)]
pub struct RtrFabric {
    node: NodeId,
    server: RtrServer,
    /// Last serial each attached router reached: recorded from its own
    /// queries, and optimistically when an `EndOfData` is *sent* to it.
    /// A flushed or stalled response falsifies the optimistic entry, so
    /// staleness metrics that must survive faults read the router's
    /// client state directly instead of this table.
    acked: BTreeMap<NodeId, Option<u32>>,
    stats: FabricStats,
}

impl RtrFabric {
    /// A fabric serving from `node` with the given RTR session id and
    /// delta-history depth.
    pub fn new(node: NodeId, session: u16, max_history: usize) -> Self {
        RtrFabric::from_server(node, RtrServer::new(session, max_history))
    }

    /// A fabric around an existing server (e.g. one constructed with
    /// [`RtrServer::new_at`] to start near the serial wrap).
    pub fn from_server(node: NodeId, server: RtrServer) -> Self {
        RtrFabric { node, server, acked: BTreeMap::new(), stats: FabricStats::default() }
    }

    /// The node this fabric serves from.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The underlying protocol state machine.
    pub fn server(&self) -> &RtrServer {
        &self.server
    }

    /// Traffic counters.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Registers a router for notify fan-out. Idempotent; a router not
    /// attached still gets answers to its queries, it just never hears
    /// a `SerialNotify`.
    pub fn attach(&mut self, router: NodeId) {
        self.acked.entry(router).or_insert(None);
    }

    /// The last serial `router` acknowledged (via a query it sent us),
    /// or `None` if it never completed a sync.
    pub fn acked_serial(&self, router: NodeId) -> Option<u32> {
        self.acked.get(&router).copied().flatten()
    }

    /// How many serials `router` lags behind the cache, by RFC 1982
    /// distance. `None` means the router never synced at all.
    pub fn serial_lag(&self, router: NodeId) -> Option<u32> {
        self.acked_serial(router).map(|s| serial_distance(s, self.server.serial()))
    }

    /// Publishes new data and fans the resulting `SerialNotify` out to
    /// every attached router. Returns `true` if the serial bumped.
    ///
    /// This is the framed analogue of [`RtrServer::publish`]: one call,
    /// N notify frames, and each router then pulls only its own delta.
    pub fn publish(&mut self, net: &mut Network, update: VrpUpdate<'_>) -> bool {
        let Some(notify) = self.server.publish(update) else {
            return false;
        };
        let rec = net.recorder();
        if rec.is_enabled() {
            rec.count("rtr.publishes", 1);
            rec.event(net.now(), "rtr", "publish")
                .str("cache", net.name(self.node))
                .u64("serial", u64::from(self.server.serial()))
                .u64("routers", self.acked.len() as u64)
                .emit();
        }
        let payload = frame(FRAME_RTR_DATA, &notify);
        let routers: Vec<NodeId> = self.acked.keys().copied().collect();
        for router in routers {
            net.send(self.node, router, payload.clone());
            self.stats.notifies_sent += 1;
            self.stats.data_frames_sent += 1;
        }
        true
    }

    /// Reframes the current state for `router` after an out-of-band
    /// session loss (e.g. the campaign flushed the pair): sends a fresh
    /// `SerialNotify` so the router re-queries.
    pub fn renotify(&mut self, net: &mut Network, router: NodeId) {
        let notify =
            RtrPdu::SerialNotify { session: self.server.session(), serial: self.server.serial() };
        net.send(self.node, router, frame(FRAME_RTR_DATA, &notify));
        self.stats.notifies_sent += 1;
        self.stats.data_frames_sent += 1;
    }
}

impl RtrEndpoint for RtrFabric {
    fn node(&self) -> NodeId {
        self.node
    }

    fn deliver(&mut self, net: &mut Network, delivery: &Delivery) {
        let pdu = match unframe(FRAME_RTR_QUERY, &delivery.payload) {
            Ok(pdu) => pdu,
            Err(_) => {
                // Corrupted or mis-tagged frame: drop it. The router's
                // next poll retries; no state changed.
                self.stats.frames_rejected += 1;
                let rec = net.recorder();
                if rec.is_enabled() {
                    rec.count("rtr.frames_rejected", 1);
                }
                return;
            }
        };
        // A query acknowledges the serial the router has applied.
        if let RtrPdu::SerialQuery { session, serial } = pdu {
            if session == self.server.session() {
                self.acked.insert(delivery.from, Some(serial));
            }
        }
        self.stats.queries_handled += 1;
        let response = self.server.handle(&pdu);
        // The response ends in EndOfData only when the full sequence
        // lands; record what the router will reach if nothing is lost.
        for out in &response {
            if matches!(out, RtrPdu::CacheReset) {
                self.stats.resets_served += 1;
            }
            if let RtrPdu::EndOfData { serial, .. } = out {
                self.acked.insert(delivery.from, Some(*serial));
            }
            net.send(self.node, delivery.from, frame(FRAME_RTR_DATA, out));
            self.stats.data_frames_sent += 1;
        }
    }
}

/// The router side of the framed protocol: event-driven, no out-of-band
/// calls into the cache.
#[derive(Debug)]
pub struct RtrRouter {
    node: NodeId,
    upstream: NodeId,
    client: RtrClient,
}

impl RtrRouter {
    /// A router at `node` feeding from the cache at `upstream`.
    pub fn new(node: NodeId, upstream: NodeId) -> Self {
        RtrRouter { node, upstream, client: RtrClient::new() }
    }

    /// The router's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The cache node this router feeds from.
    pub fn upstream(&self) -> NodeId {
        self.upstream
    }

    /// The underlying protocol state machine.
    pub fn client(&self) -> &RtrClient {
        &self.client
    }

    /// The router's current VRPs.
    pub fn vrps(&self) -> &std::collections::BTreeSet<Vrp> {
        self.client.vrp_set()
    }

    /// Sends the router's current poll PDU (reset query when it has
    /// nothing, serial query thereafter).
    pub fn poll(&mut self, net: &mut Network) {
        let pdu = self.client.poll();
        net.send(self.node, self.upstream, frame(FRAME_RTR_QUERY, &pdu));
    }
}

impl RtrEndpoint for RtrRouter {
    fn node(&self) -> NodeId {
        self.node
    }

    fn deliver(&mut self, net: &mut Network, delivery: &Delivery) {
        if delivery.from != self.upstream {
            return; // not our cache; ignore
        }
        let Ok(pdu) = unframe(FRAME_RTR_DATA, &delivery.payload) else {
            // Corrupted frame. If it was mid-response the transfer is
            // now incomplete and EndOfData will commit a partial delta;
            // real routers guard this with the PDU length header — here
            // the atomic-at-EndOfData buffer plus a fresh poll on the
            // next notify bounds the damage. Drop it.
            return;
        };
        match self.client.handle(&pdu) {
            ClientAction::Query | ClientAction::Reset => self.poll(net),
            ClientAction::Idle => {}
        }
    }
}

/// Steps the network until `deadline`, dispatching every delivered
/// frame to the endpoint that owns its destination node. Returns the
/// number of frames dispatched.
///
/// Events queued *past* the deadline are left queued — a stalled frame
/// does not arrive just because the simulation kept running. Callers
/// that model a session timeout follow up with
/// [`Network::flush_pair`] on the dead pair and
/// [`RtrFabric::renotify`] once the window lifts. Deliveries addressed
/// to nodes no endpoint claims are discarded, so run the pump in a
/// window where only RTR traffic is in flight.
pub fn pump_until(net: &mut Network, deadline: u64, endpoints: &mut [&mut dyn RtrEndpoint]) -> u64 {
    let mut dispatched = 0;
    while let Some(at) = net.next_event_at() {
        if at > deadline {
            break;
        }
        let Some(occ) = net.step() else { break };
        let Occurrence::Delivered(d) = occ else { continue };
        if let Some(endpoint) = endpoints.iter_mut().find(|e| e.node() == d.to) {
            endpoint.deliver(net, &d);
            dispatched += 1;
        }
    }
    if net.now() < deadline {
        net.advance_to(deadline);
    }
    dispatched
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipres::{Asn, Prefix};

    fn v(s: &str, max: u8, asn: u32) -> Vrp {
        Vrp::new(s.parse::<Prefix>().unwrap(), max, Asn(asn))
    }

    fn sample() -> Vec<Vrp> {
        vec![v("10.0.0.0/16", 24, 1), v("10.1.0.0/16", 16, 2), v("2001:db8::/32", 48, 3)]
    }

    fn world(routers: usize) -> (Network, RtrFabric, Vec<RtrRouter>) {
        let mut net = Network::new(11);
        let cache = net.add_node("rp-cache");
        let mut fabric = RtrFabric::new(cache, 1, 8);
        let routers: Vec<RtrRouter> = (0..routers)
            .map(|i| {
                let node = net.add_node(&format!("router-{i}"));
                fabric.attach(node);
                RtrRouter::new(node, cache)
            })
            .collect();
        (net, fabric, routers)
    }

    fn pump(net: &mut Network, fabric: &mut RtrFabric, routers: &mut [RtrRouter]) -> u64 {
        let deadline = net.now() + 1_000;
        let mut endpoints: Vec<&mut dyn RtrEndpoint> = Vec::with_capacity(routers.len() + 1);
        endpoints.push(fabric);
        for r in routers.iter_mut() {
            endpoints.push(r);
        }
        pump_until(net, deadline, &mut endpoints)
    }

    #[test]
    fn frame_tags_are_disjoint_and_enforced() {
        let pdu = RtrPdu::ResetQuery;
        let framed = frame(FRAME_RTR_QUERY, &pdu);
        assert_eq!(framed[0], 0x43);
        assert_eq!(unframe(FRAME_RTR_QUERY, &framed).unwrap(), pdu);
        // Wrong tag, rsync tag, RRDP tag: all rejected at byte 0.
        assert!(unframe(FRAME_RTR_DATA, &framed).is_err());
        for tag in [1u8, 2, 3, 4, 0x21, 0x22, 0x23, 0x31, 0x32, 0x33, 0x34] {
            let mut bad = framed.clone();
            bad[0] = tag;
            assert!(unframe(FRAME_RTR_QUERY, &bad).is_err());
        }
        // Trailing garbage is rejected too.
        let mut long = framed.clone();
        long.push(0);
        assert!(unframe(FRAME_RTR_QUERY, &long).is_err());
    }

    #[test]
    fn publish_fans_out_and_routers_converge() {
        let (mut net, mut fabric, mut routers) = world(5);
        assert!(fabric.publish(&mut net, VrpUpdate::snapshot(sample())));
        assert_eq!(fabric.stats().notifies_sent, 5);
        pump(&mut net, &mut fabric, &mut routers);
        for r in &routers {
            assert_eq!(r.client().serial(), fabric.server().serial());
            assert_eq!(r.vrps().len(), 3);
            assert_eq!(fabric.acked_serial(r.node()), Some(1));
            assert_eq!(fabric.serial_lag(r.node()), Some(0));
        }
    }

    #[test]
    fn fanout_sends_deltas_not_snapshots() {
        let (mut net, mut fabric, mut routers) = world(3);
        fabric.publish(&mut net, VrpUpdate::snapshot(sample()));
        pump(&mut net, &mut fabric, &mut routers);

        let before = net.stats().sent;
        // One VRP added: each router should see notify + query +
        // CacheResponse + 1 prefix + EndOfData, not the full set.
        let mut vrps = sample();
        vrps.push(v("10.9.0.0/16", 16, 9));
        fabric.publish(&mut net, VrpUpdate::snapshot(vrps));
        pump(&mut net, &mut fabric, &mut routers);
        let frames = net.stats().sent - before;
        assert_eq!(frames, 3 * 5, "delta-sized exchange per router");
        for r in &routers {
            assert_eq!(r.vrps().len(), 4);
        }
    }

    #[test]
    fn history_eviction_degrades_to_snapshot_resync() {
        let (mut net, mut fabric, mut routers) = world(2);
        fabric.publish(&mut net, VrpUpdate::snapshot(sample()));
        pump(&mut net, &mut fabric, &mut routers);

        // Partition router 1 while the cache publishes past its bounded
        // history (depth 8), then heal: its serial has fallen off the
        // window, so it must resync via CacheReset.
        let stranded = routers[1].node();
        net.faults.partition(fabric.node(), stranded);
        let mut vrps = sample();
        for i in 0..12u32 {
            vrps.push(v("10.9.0.0/16", 16, 100 + i));
            fabric.publish(&mut net, VrpUpdate::snapshot(vrps.clone()));
            pump(&mut net, &mut fabric, &mut routers);
        }
        assert_eq!(routers[0].client().serial(), fabric.server().serial());
        assert_eq!(routers[1].client().serial(), 1, "stranded router is stale");
        assert_eq!(fabric.serial_lag(stranded), Some(12));

        net.faults.heal(fabric.node(), stranded);
        fabric.renotify(&mut net, stranded);
        let resets_before = fabric.stats().resets_served;
        pump(&mut net, &mut fabric, &mut routers);
        assert!(fabric.stats().resets_served > resets_before, "recovered via CacheReset");
        assert_eq!(routers[1].client().serial(), fabric.server().serial());
        assert_eq!(routers[1].vrps().len(), fabric.server().vrps().len());
    }

    #[test]
    fn stalled_frames_stay_queued_past_the_deadline() {
        let (mut net, mut fabric, mut routers) = world(1);
        let router = routers[0].node();
        // Stall the cache → router direction far past the pump window.
        net.faults.set_stall(fabric.node(), router, 10_000);
        fabric.publish(&mut net, VrpUpdate::snapshot(sample()));
        pump(&mut net, &mut fabric, &mut routers);
        assert_eq!(routers[0].vrps().len(), 0, "notify still in flight");
        assert!(!net.is_idle(), "stalled frame remains queued");

        // The session times out: flush the pair, lift the stall, and
        // renotify. The router converges on the next window.
        net.flush_pair(fabric.node(), router);
        net.faults.set_stall(fabric.node(), router, 0);
        fabric.renotify(&mut net, router);
        pump(&mut net, &mut fabric, &mut routers);
        assert_eq!(routers[0].vrps().len(), 3);
        assert_eq!(routers[0].client().serial(), fabric.server().serial());
    }

    #[test]
    fn corrupted_query_frame_is_rejected_not_misparsed() {
        let (mut net, mut fabric, mut routers) = world(1);
        fabric.publish(&mut net, VrpUpdate::snapshot(sample()));
        // Corrupt the first router → cache frame (the query).
        net.faults.corrupt_nth(routers[0].node(), fabric.node(), 1);
        pump(&mut net, &mut fabric, &mut routers);
        assert_eq!(fabric.stats().frames_rejected, 1);
        // The next notify re-triggers the poll and the router recovers.
        fabric.renotify(&mut net, routers[0].node());
        pump(&mut net, &mut fabric, &mut routers);
        assert_eq!(routers[0].vrps().len(), 3);
    }
}
