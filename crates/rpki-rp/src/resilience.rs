//! Last-good snapshot fallback and repository health tracking.
//!
//! Production relying parties survive transient repository failures by
//! serving the last successfully validated copy of a publication point
//! (routinator's "fallback to cached data", within limits). That is a
//! *transport* defense: it bridges unreachability and corruption, but
//! deliberately does **not** bridge authority-side removals — a sync
//! that completes and simply lacks a file updates the snapshot, so a
//! stealthy withdrawal propagates immediately. Detecting *that* is
//! Suspenders' job (`rpki-core`'s hold-down layer); the two defenses
//! compose, and keeping them distinct is the point of the
//! `ablation_resilience` experiment.
//!
//! [`ResilientSource`] wraps any [`ObjectSource`]:
//!
//! - a **complete, digest-intact** sync refreshes the per-directory
//!   snapshot and resets the host's [`FetchHealth`];
//! - an **incomplete** sync (unreachable, missing or corrupted files)
//!   falls back to the snapshot while it is younger than
//!   [`ResilienceConfig::max_stale`], marking the outcome
//!   [`Freshness::Stale`](rpki_repo::Freshness::Stale);
//! - consecutive fully failed sessions open a per-host circuit breaker:
//!   for [`ResilienceConfig::cooldown`] seconds the wrapped source is
//!   not consulted at all, so a dead repository stops burning retry
//!   budget every validation run (the Stalloris scenario: each stalled
//!   session costs its full deadline).
//!
//! All ages and cool-downs are measured on the simulated clock exposed
//! by [`ObjectSource::now`]; state lives outside the source so it
//! persists across validation runs (sources borrow the network and are
//! rebuilt every run).

use std::collections::BTreeMap;

use rpki_objects::RepoUri;
use rpki_obs::Recorder;
use rpki_repo::{DirProbe, SyncOutcome};
use rpkisim_crypto::Digest;
use serde::Serialize;

use crate::source::ObjectSource;

/// Knobs of the resilience layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ResilienceConfig {
    /// Maximum snapshot age (seconds) still served on fallback. Past
    /// this budget the relying party prefers "no data" over data old
    /// enough to hide a legitimate change — the same trade-off as a
    /// manifest's `next_update`.
    pub max_stale: u64,
    /// Consecutive fully failed sessions (no listing) before the
    /// host's circuit opens.
    pub failure_threshold: u32,
    /// Seconds the circuit stays open; while open, the wrapped source
    /// is not consulted for that host.
    pub cooldown: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig { max_stale: 86_400, failure_threshold: 3, cooldown: 3_600 }
    }
}

/// Per-host fetch health: the circuit-breaker bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FetchHealth {
    /// Sessions in a row that ended without a listing.
    pub consecutive_failures: u32,
    /// If set, the circuit is open until this simulated time.
    pub cooling_until: Option<u64>,
    /// Cool-down expired, verdict pending: the breaker admits exactly
    /// one probe session, which re-closes it (success) or re-opens it
    /// for a fresh cool-down (failure). Expiry alone never resets
    /// health.
    pub half_open: bool,
}

impl FetchHealth {
    /// A clean bill of health: no failures, circuit closed.
    pub fn healthy() -> Self {
        FetchHealth::default()
    }

    /// Whether the circuit is open (cooling) at simulated time `now`.
    pub fn is_cooling(&self, now: u64) -> bool {
        self.cooling_until.is_some_and(|until| now < until)
    }
}

/// One directory's last-good contents, keyed by the content digest of
/// the sync that produced them so a LIST-only probe can re-confirm the
/// snapshot without a transfer.
#[derive(Debug, Clone)]
struct Snapshot {
    files: BTreeMap<String, Vec<u8>>,
    taken_at: u64,
    digest: Option<Digest>,
}

/// Persistent state of the resilience layer: snapshots per directory,
/// health per host. Owned by the experiment/relying party and lent to a
/// fresh [`ResilientSource`] each validation run.
#[derive(Debug, Default)]
pub struct ResilientState {
    config: ResilienceConfig,
    snapshots: BTreeMap<String, Snapshot>,
    health: BTreeMap<String, FetchHealth>,
    recorder: Recorder,
}

impl ResilientState {
    /// Fresh state under `config`.
    pub fn new(config: ResilienceConfig) -> Self {
        ResilientState { config, ..ResilientState::default() }
    }

    /// The configuration in force.
    pub fn config(&self) -> ResilienceConfig {
        self.config
    }

    /// Installs an observability recorder; circuit-breaker transitions
    /// and stale-serve decisions are emitted into it. Disabled by
    /// default.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The health record of `host`, if any session has targeted it.
    pub fn health(&self, host: &str) -> Option<FetchHealth> {
        self.health.get(host).copied()
    }

    /// Age of the stored snapshot for `dir` at time `now`, if one
    /// exists.
    pub fn snapshot_age(&self, dir: &RepoUri, now: u64) -> Option<u64> {
        self.snapshots.get(&dir.to_string()).map(|s| now.saturating_sub(s.taken_at))
    }

    /// Number of directories with a stored snapshot.
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether `host`'s circuit blocks traffic at `now`. A cool-down
    /// that has expired transitions the breaker to half-open (emitted
    /// as an obs event) rather than resetting it: the next session is
    /// the probe whose outcome re-closes or re-opens the circuit.
    fn circuit_open(&mut self, host: &str, now: u64) -> bool {
        let Some(health) = self.health.get_mut(host) else { return false };
        if health.is_cooling(now) {
            return true;
        }
        if health.cooling_until.is_some() && !health.half_open {
            health.cooling_until = None;
            health.half_open = true;
            if self.recorder.is_enabled() {
                self.recorder.count("rp.circuit_half_open", 1);
                self.recorder.event(now, "rp", "circuit_half_open").str("host", host).emit();
            }
        }
        false
    }

    fn record_session(&mut self, host: &str, listed: bool, now: u64) {
        let health = self.health.entry(host.to_owned()).or_default();
        if listed {
            let was_tripped = *health != FetchHealth::healthy();
            *health = FetchHealth::healthy();
            if was_tripped && self.recorder.is_enabled() {
                self.recorder.count("rp.circuit_closed", 1);
                self.recorder.event(now, "rp", "circuit_close").str("host", host).emit();
            }
        } else if health.half_open {
            // The half-open probe failed: re-open immediately for a
            // fresh cool-down, no threshold counting.
            health.half_open = false;
            health.consecutive_failures += 1;
            health.cooling_until = Some(now + self.config.cooldown);
            if self.recorder.is_enabled() {
                self.recorder.count("rp.circuit_reopened", 1);
                self.recorder
                    .event(now, "rp", "circuit_reopen")
                    .str("host", host)
                    .u64("failures", u64::from(health.consecutive_failures))
                    .u64("until", now + self.config.cooldown)
                    .emit();
            }
        } else {
            health.consecutive_failures += 1;
            if health.consecutive_failures >= self.config.failure_threshold {
                let was_open = health.is_cooling(now);
                health.cooling_until = Some(now + self.config.cooldown);
                if !was_open && self.recorder.is_enabled() {
                    self.recorder.count("rp.circuit_opened", 1);
                    self.recorder
                        .event(now, "rp", "circuit_open")
                        .str("host", host)
                        .u64("failures", u64::from(health.consecutive_failures))
                        .u64("until", now + self.config.cooldown)
                        .emit();
                }
            }
        }
    }
}

/// An [`ObjectSource`] adapter adding snapshot fallback and circuit
/// breaking around `inner`. See the module docs for semantics.
pub struct ResilientSource<'s, S> {
    inner: S,
    state: &'s mut ResilientState,
}

impl<'s, S: ObjectSource> ResilientSource<'s, S> {
    /// Wraps `inner`, reading and updating `state`.
    pub fn new(inner: S, state: &'s mut ResilientState) -> Self {
        ResilientSource { inner, state }
    }

    /// The wrapped source (e.g. to read collected sync reports).
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ObjectSource> ObjectSource for ResilientSource<'_, S> {
    fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome {
        let now = self.inner.now();
        let host = dir.host().to_owned();
        let outcome = if self.state.circuit_open(&host, now) {
            // Open circuit: don't touch the network at all.
            if self.state.recorder.is_enabled() {
                self.state.recorder.count("rp.circuit_skips", 1);
                self.state.recorder.event(now, "rp", "circuit_skip").str("host", &host).emit();
            }
            SyncOutcome::unreachable(dir.clone())
        } else {
            let outcome = self.inner.load_dir(dir);
            self.state.record_session(&host, outcome.listed, now);
            outcome
        };

        if outcome.is_complete() {
            self.state.recorder.count("rp.snapshot_refreshes", 1);
            self.state.snapshots.insert(
                dir.to_string(),
                Snapshot {
                    files: outcome.files.clone(),
                    taken_at: now,
                    digest: outcome.content_digest(),
                },
            );
            return outcome;
        }

        // Incomplete: serve the last good copy while within budget.
        if let Some(snapshot) = self.state.snapshots.get(&dir.to_string()) {
            let age = now.saturating_sub(snapshot.taken_at);
            if age <= self.state.config.max_stale {
                if self.state.recorder.is_enabled() {
                    self.state.recorder.count("rp.stale_served", 1);
                    self.state.recorder.observe("rp.stale_age", age);
                    self.state
                        .recorder
                        .event(now, "rp", "stale_served")
                        .str("host", &host)
                        .u64("age", age)
                        .u64("files", snapshot.files.len() as u64)
                        .emit();
                }
                return SyncOutcome::stale(dir.clone(), snapshot.files.clone(), age);
            }
        }
        outcome
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn wire_frames(&self) -> Option<u64> {
        self.inner.wire_frames()
    }

    /// Probes through the wrapped source. An open circuit yields `None`
    /// (the caller's fallback [`ObjectSource::load_dir`] then takes the
    /// circuit-skip path). A listed probe counts as a healthy session;
    /// when its digest matches the stored snapshot, the snapshot's age
    /// resets — unchanged content re-confirmed over the wire is as good
    /// as a fresh transfer. A failed probe records nothing: the full
    /// sync the caller falls back to accounts for the failure exactly
    /// once.
    fn probe_dir(&mut self, dir: &RepoUri) -> Option<DirProbe> {
        let now = self.inner.now();
        let host = dir.host().to_owned();
        if self.state.circuit_open(&host, now) {
            return None;
        }
        let probe = self.inner.probe_dir(dir)?;
        if !probe.listed {
            return None;
        }
        self.state.record_session(&host, true, now);
        if let Some(snapshot) = self.state.snapshots.get_mut(&dir.to_string()) {
            if snapshot.digest.is_some() && snapshot.digest == probe.content_digest() {
                snapshot.taken_at = now;
                if self.state.recorder.is_enabled() {
                    self.state.recorder.count("rp.probe_confirms", 1);
                    self.state.recorder.event(now, "rp", "probe_confirm").str("host", &host).emit();
                }
            }
        }
        Some(probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpki_repo::Freshness;

    /// A scriptable source: serves `files` when `up`, tracks calls.
    struct FakeSource {
        now: u64,
        up: bool,
        files: BTreeMap<String, Vec<u8>>,
        calls: std::rc::Rc<std::cell::Cell<u32>>,
    }

    impl FakeSource {
        fn new(now: u64, up: bool) -> (Self, std::rc::Rc<std::cell::Cell<u32>>) {
            let calls = std::rc::Rc::new(std::cell::Cell::new(0));
            let mut files = BTreeMap::new();
            files.insert("a.roa".to_owned(), vec![1, 2, 3]);
            (FakeSource { now, up, files, calls: calls.clone() }, calls)
        }
    }

    impl ObjectSource for FakeSource {
        fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome {
            self.calls.set(self.calls.get() + 1);
            if self.up {
                SyncOutcome {
                    files: self.files.clone(),
                    listed: true,
                    freshness: Freshness::Fresh,
                    ..SyncOutcome::unreachable(dir.clone())
                }
            } else {
                SyncOutcome::unreachable(dir.clone())
            }
        }

        fn now(&self) -> u64 {
            self.now
        }

        fn probe_dir(&mut self, dir: &RepoUri) -> Option<DirProbe> {
            if !self.up {
                return None;
            }
            // A real server reports the digest a complete sync would
            // key to; derive it from the same files load_dir serves.
            let digest = SyncOutcome::fresh(dir.clone(), self.files.clone()).content_digest();
            Some(DirProbe { dir: dir.clone(), listed: true, digest })
        }
    }

    fn dir() -> RepoUri {
        RepoUri::new("h", &["repo"])
    }

    #[test]
    fn complete_sync_refreshes_snapshot_and_health() {
        let mut state = ResilientState::default();
        let (inner, _) = FakeSource::new(100, true);
        let mut src = ResilientSource::new(inner, &mut state);
        let out = src.load_dir(&dir());
        assert!(out.is_complete());
        assert_eq!(out.freshness, Freshness::Fresh);
        assert_eq!(state.snapshot_count(), 1);
        assert_eq!(state.snapshot_age(&dir(), 150), Some(50));
        assert_eq!(state.health("h").unwrap(), FetchHealth::default());
    }

    #[test]
    fn fallback_serves_stale_within_budget() {
        let mut state = ResilientState::new(ResilienceConfig {
            max_stale: 1_000,
            ..ResilienceConfig::default()
        });
        let (good, _) = FakeSource::new(100, true);
        ResilientSource::new(good, &mut state).load_dir(&dir());
        // Repository dies; 500 s later the snapshot still serves.
        let (bad, _) = FakeSource::new(600, false);
        let out = ResilientSource::new(bad, &mut state).load_dir(&dir());
        assert!(out.listed);
        assert_eq!(out.files["a.roa"], vec![1, 2, 3]);
        assert_eq!(out.freshness, Freshness::Stale { age: 500 });
    }

    #[test]
    fn fallback_expires_past_the_staleness_budget() {
        let mut state = ResilientState::new(ResilienceConfig {
            max_stale: 1_000,
            ..ResilienceConfig::default()
        });
        let (good, _) = FakeSource::new(100, true);
        ResilientSource::new(good, &mut state).load_dir(&dir());
        let (bad, _) = FakeSource::new(2_000, false);
        let out = ResilientSource::new(bad, &mut state).load_dir(&dir());
        assert!(!out.listed);
        assert_eq!(out.freshness, Freshness::Absent);
    }

    #[test]
    fn circuit_opens_after_threshold_and_skips_inner() {
        let mut state = ResilientState::new(ResilienceConfig {
            failure_threshold: 2,
            cooldown: 1_000,
            ..ResilienceConfig::default()
        });
        for t in [0, 10] {
            let (bad, calls) = FakeSource::new(t, false);
            ResilientSource::new(bad, &mut state).load_dir(&dir());
            assert_eq!(calls.get(), 1);
        }
        assert_eq!(state.health("h").unwrap().consecutive_failures, 2);
        assert_eq!(state.health("h").unwrap().cooling_until, Some(1_010));
        // While cooling, the inner source must not be consulted.
        let (bad, calls) = FakeSource::new(500, false);
        ResilientSource::new(bad, &mut state).load_dir(&dir());
        assert_eq!(calls.get(), 0);
        // After cool-down the breaker goes half-open: the next session
        // is the probe, and a recovered repository re-closes it fully.
        let (good, calls) = FakeSource::new(1_500, true);
        let out = ResilientSource::new(good, &mut state).load_dir(&dir());
        assert_eq!(calls.get(), 1);
        assert!(out.is_complete());
        assert_eq!(state.health("h").unwrap(), FetchHealth::default());
    }

    #[test]
    fn half_open_probe_reopens_on_failure() {
        let mut state = ResilientState::new(ResilienceConfig {
            failure_threshold: 2,
            cooldown: 1_000,
            ..ResilienceConfig::default()
        });
        for t in [0, 10] {
            let (bad, _) = FakeSource::new(t, false);
            ResilientSource::new(bad, &mut state).load_dir(&dir());
        }
        assert_eq!(state.health("h").unwrap().cooling_until, Some(1_010));
        // Cool-down expired: exactly one probe goes through, fails, and
        // the breaker re-opens for a fresh cool-down — expiry alone
        // never resets health.
        let (bad, calls) = FakeSource::new(1_500, false);
        ResilientSource::new(bad, &mut state).load_dir(&dir());
        assert_eq!(calls.get(), 1);
        let health = state.health("h").unwrap();
        assert!(!health.half_open, "the failed probe resolved the half-open state");
        assert_eq!(health.cooling_until, Some(2_500));
        assert_eq!(health.consecutive_failures, 3);
        // Re-opened: the next session inside the new cool-down skips.
        let (bad, calls) = FakeSource::new(2_000, false);
        ResilientSource::new(bad, &mut state).load_dir(&dir());
        assert_eq!(calls.get(), 0);
    }

    #[test]
    fn half_open_transition_emits_event_once() {
        let mut state = ResilientState::new(ResilienceConfig {
            failure_threshold: 1,
            cooldown: 100,
            ..ResilienceConfig::default()
        });
        let recorder = Recorder::new();
        state.set_recorder(recorder.clone());
        let (bad, _) = FakeSource::new(0, false);
        ResilientSource::new(bad, &mut state).load_dir(&dir());
        let (bad, _) = FakeSource::new(200, false);
        ResilientSource::new(bad, &mut state).load_dir(&dir());
        let log = recorder.events();
        let half_opens = log.iter().filter(|e| e.kind == "circuit_half_open").count();
        let reopens = log.iter().filter(|e| e.kind == "circuit_reopen").count();
        assert_eq!(half_opens, 1);
        assert_eq!(reopens, 1);
    }

    #[test]
    fn matching_probe_renews_snapshot_age() {
        let mut state = ResilientState::default();
        let (good, _) = FakeSource::new(100, true);
        ResilientSource::new(good, &mut state).load_dir(&dir());
        assert_eq!(state.snapshot_age(&dir(), 600), Some(500));
        // A probe whose digest matches the snapshot resets its age.
        let (good, calls) = FakeSource::new(600, true);
        let probe = ResilientSource::new(good, &mut state).probe_dir(&dir());
        assert!(probe.is_some_and(|p| p.listed));
        assert_eq!(calls.get(), 0, "a probe must not trigger a full sync");
        assert_eq!(state.snapshot_age(&dir(), 600), Some(0));
    }

    #[test]
    fn probe_respects_open_circuit_and_failed_probe_records_nothing() {
        let mut state = ResilientState::new(ResilienceConfig {
            failure_threshold: 1,
            cooldown: 1_000,
            ..ResilienceConfig::default()
        });
        // A failed probe is invisible to health tracking.
        let (bad, _) = FakeSource::new(0, false);
        assert!(ResilientSource::new(bad, &mut state).probe_dir(&dir()).is_none());
        assert_eq!(state.health("h"), None);
        // One failed sync trips the breaker; the probe then short-circuits.
        let (bad, _) = FakeSource::new(10, false);
        ResilientSource::new(bad, &mut state).load_dir(&dir());
        let (good, calls) = FakeSource::new(500, true);
        assert!(ResilientSource::new(good, &mut state).probe_dir(&dir()).is_none());
        assert_eq!(calls.get(), 0);
    }

    #[test]
    fn completed_sync_with_deletion_updates_snapshot() {
        // A complete listing that lacks a previously seen file is an
        // authority-side change, not a transport fault: the snapshot
        // follows it. Bridging such removals is Suspenders' job.
        let mut state = ResilientState::default();
        let (good, _) = FakeSource::new(0, true);
        ResilientSource::new(good, &mut state).load_dir(&dir());
        let (mut fewer, _) = FakeSource::new(10, true);
        fewer.files.clear();
        let out = ResilientSource::new(fewer, &mut state).load_dir(&dir());
        assert!(out.is_complete());
        assert!(out.files.is_empty());
        // The snapshot now reflects the deletion.
        let (bad, _) = FakeSource::new(20, false);
        let out = ResilientSource::new(bad, &mut state).load_dir(&dir());
        assert!(out.listed);
        assert!(out.files.is_empty(), "stale cache must not resurrect deleted files");
    }

    #[test]
    fn partial_listed_outcome_prefers_complete_snapshot() {
        let mut state = ResilientState::default();
        let (good, _) = FakeSource::new(0, true);
        ResilientSource::new(good, &mut state).load_dir(&dir());
        // Listed but incomplete (a file went missing in flight).
        struct Partial;
        impl ObjectSource for Partial {
            fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome {
                SyncOutcome {
                    missing: vec!["a.roa".to_owned()],
                    listed: true,
                    freshness: Freshness::Fresh,
                    ..SyncOutcome::unreachable(dir.clone())
                }
            }
            fn now(&self) -> u64 {
                50
            }
        }
        let out = ResilientSource::new(Partial, &mut state).load_dir(&dir());
        assert_eq!(out.freshness, Freshness::Stale { age: 50 });
        assert_eq!(out.files["a.roa"], vec![1, 2, 3]);
        // A listed (even partial) session keeps the circuit closed.
        assert_eq!(state.health("h").unwrap(), FetchHealth::default());
    }
}
