//! Top-down chain validation.
//!
//! Starting from the configured trust anchors, the [`Validator`] walks
//! publication points, verifying at every hop:
//!
//! - **signatures** — each object under its issuer's key;
//! - **time** — validity windows contain "now"; manifests and CRLs are
//!   not stale;
//! - **revocation** — serials against the issuer's CRL;
//! - **resources** — strict RFC 3779 containment: a child claiming
//!   anything outside its parent's allocation is rejected along with
//!   its entire subtree (this is the rule a whacking manipulator turns
//!   into a weapon: shrink the parent, and the target below becomes the
//!   over-claimer);
//! - **completeness** — manifest hash checks detect missing and
//!   corrupted files. What to *do* about an incomplete publication
//!   point is deliberately a policy knob ([`IncompletePolicy`]),
//!   because the RFCs leave it to local policy and the paper shows the
//!   stakes of each choice.
//!
//! Every rejection is recorded as a [`Diagnostic`] — experiments assert
//! on these, and the `rpki-attacks` monitor consumes them.

use std::collections::BTreeSet;

use ipres::ResourceSet;
use rpki_objects::{Decode, Moment, RepoUri, ResourceCert, RpkiObject, TrustAnchorLocator};
use rpki_obs::Recorder;
use rpki_repo::{Freshness, SyncOutcome};
use rpkisim_crypto::{sha256, Digest, KeyId};
use serde::Serialize;

use crate::incremental::ProcessObservations;
use crate::source::ObjectSource;
use crate::vrp::{Vrp, VrpCache};

/// Sanity cap on manifest listings. No modelled publication point
/// comes near this; a listing above it is adversarial (an oversize
/// listing floods the walk with per-file bookkeeping) and the manifest
/// is discarded as [`Issue::MalformedObject`].
pub const MAX_MANIFEST_ENTRIES: usize = 10_000;

/// What to do when a publication point cannot be proven complete
/// (manifest missing, stale, or unverifiable; or listed files missing
/// or hash-mismatched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum IncompletePolicy {
    /// Use every object that independently verifies. Maximises routing
    /// protection but accepts whatever subset an attacker or fault left
    /// behind — the paper's Side Effect 6 exposure.
    AcceptPartial,
    /// Discard the whole publication point unless provably complete.
    /// Immune to partial-deletion games, but one corrupted file takes
    /// down every ROA the CA issued.
    RejectPublicationPoint,
}

/// How to treat a child certificate claiming resources outside its
/// parent's allocation.
///
/// The choice changes the economics of whacking (see the
/// `ablation_depth_sweep` experiment): under [`OverclaimPolicy::Trim`],
/// shrinking an ancestor RC no longer invalidates intermediate CAs, so
/// deep whacks need **no** suspicious make-before-break reissues — the
/// robustness fix makes the targeted attack *stealthier*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum OverclaimPolicy {
    /// RFC 6487: an over-claiming certificate is invalid, and its whole
    /// subtree with it.
    Strict,
    /// RFC 8360 "validation reconsidered": the certificate stays valid
    /// with its resources trimmed to the intersection with its
    /// parent's; only objects that actually need the lost space fail.
    Trim,
}

/// What to do about *unsafe VRPs*: VRPs whose prefix overlaps the
/// resources of a CA that was rejected somewhere in the walk.
///
/// The concern (borrowed from routinator's `--unsafe-vrps` option) is
/// that a rejected CA may have held a ROA for the overlapping space;
/// with that ROA gone, a same-space VRP surviving elsewhere can flip
/// the victim's announcements from unknown to invalid — Side Effect 6
/// territory. The flip side is the new attack this knob opens: under
/// [`UnsafeVrpPolicy::Reject`] a misbehaving parent only has to get a
/// bogus child certificate rejected over a victim's space to suppress
/// the victim's perfectly legitimate more-specific VRP.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub enum UnsafeVrpPolicy {
    /// Take no special action; unsafe-VRP analysis is skipped entirely
    /// (the production default).
    #[default]
    Accept,
    /// Flag unsafe VRPs in [`ValidationRun::unsafe_vrps`] but keep them
    /// in the validated set.
    Warn,
    /// Flag unsafe VRPs *and* drop them from the validated set.
    Reject,
}

impl UnsafeVrpPolicy {
    /// A short machine-readable label for traces and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            UnsafeVrpPolicy::Accept => "accept",
            UnsafeVrpPolicy::Warn => "warn",
            UnsafeVrpPolicy::Reject => "reject",
        }
    }
}

/// Validator configuration.
#[derive(Debug, Clone, Copy)]
pub struct ValidationConfig {
    /// The validation time.
    pub now: Moment,
    /// Incomplete-publication-point policy.
    pub incomplete: IncompletePolicy,
    /// Over-claim handling.
    pub overclaim: OverclaimPolicy,
    /// Maximum CA chain depth (cycle/runaway guard).
    pub max_depth: usize,
    /// Unsafe-VRP handling.
    pub unsafe_vrps: UnsafeVrpPolicy,
}

impl ValidationConfig {
    /// Defaults: accept-partial, strict over-claim handling, depth 32,
    /// unsafe VRPs accepted.
    pub fn at(now: Moment) -> Self {
        ValidationConfig {
            now,
            incomplete: IncompletePolicy::AcceptPartial,
            overclaim: OverclaimPolicy::Strict,
            max_depth: 32,
            unsafe_vrps: UnsafeVrpPolicy::default(),
        }
    }

    /// Same, with the given unsafe-VRP policy.
    pub fn with_unsafe_policy(self, policy: UnsafeVrpPolicy) -> Self {
        ValidationConfig { unsafe_vrps: policy, ..self }
    }

    /// Same, with the strict completeness policy.
    pub fn strict_at(now: Moment) -> Self {
        ValidationConfig { incomplete: IncompletePolicy::RejectPublicationPoint, ..Self::at(now) }
    }

    /// Same as [`ValidationConfig::at`], with RFC 8360 trimming.
    pub fn reconsidered_at(now: Moment) -> Self {
        ValidationConfig { overclaim: OverclaimPolicy::Trim, ..Self::at(now) }
    }
}

/// Why an object or publication point was rejected (or noted).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Issue {
    /// The repository hosting the directory could not be reached or
    /// listed.
    UnreachableRepo,
    /// The trust-anchor certificate was absent or failed the TAL check.
    TalRejected,
    /// No manifest at the publication point.
    MissingManifest,
    /// Manifest signature failed.
    BadManifestSignature,
    /// Manifest past its `next_update`.
    StaleManifest,
    /// No CRL at the publication point.
    MissingCrl,
    /// CRL signature failed.
    BadCrlSignature,
    /// CRL past its `next_update`.
    StaleCrl,
    /// A manifest-listed file never arrived.
    MissingFile(String),
    /// A file's bytes do not match the manifest hash (corruption, or a
    /// repository serving stale/tampered data).
    HashMismatch(String),
    /// A file arrived from the transport with bytes failing the
    /// *listing's* digest (in-flight corruption caught by the sync
    /// layer before the manifest check ever ran).
    CorruptedFile(String),
    /// A file failed to decode.
    DecodeFailed(String),
    /// An object's signature failed under its issuer's key.
    BadSignature(String),
    /// An object is outside its validity window.
    Expired(String),
    /// An object is not yet valid.
    NotYetValid(String),
    /// An object's serial is on the issuer's CRL.
    Revoked(String),
    /// A child claimed resources outside its parent's allocation; the
    /// subtree is rejected (strict policy).
    OverClaim(String),
    /// A child claimed resources outside its parent's allocation and
    /// was trimmed to the intersection (RFC 8360 policy).
    TrimmedOverClaim(String),
    /// The publication point was discarded under
    /// [`IncompletePolicy::RejectPublicationPoint`].
    RejectedPublicationPoint,
    /// A file present in the directory but absent from the manifest
    /// (ignored; noted for monitoring).
    UnlistedFile(String),
    /// Chain depth exceeded [`ValidationConfig::max_depth`].
    DepthExceeded,
    /// A CA key appeared twice on one chain (certificate loop).
    CertificateLoop(String),
    /// An object decoded but violated a structural sanity bound (e.g. a
    /// manifest listing more entries than any plausible publication
    /// point holds). The object is discarded; the walk continues.
    MalformedObject(String),
}

/// One validator finding, attributed to the publication point it arose
/// at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Handle of the CA whose publication point was being processed.
    pub ca: String,
    /// The directory.
    pub dir: String,
    /// What happened.
    pub issue: Issue,
}

/// A CA accepted onto the validated tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ValidatedCa {
    /// Subject handle (reporting only).
    pub handle: String,
    /// Subject key id.
    #[serde(skip)]
    pub key: KeyId,
    /// Depth below the trust anchor (TA = 0).
    pub depth: usize,
    /// The CA's validated resources, as display strings.
    pub resources: Vec<String>,
}

/// Provenance of one VRP: everything a fail-safe layer (such as
/// [Suspenders]) needs to judge a later disappearance.
///
/// [Suspenders]: https://datatracker.ietf.org/doc/draft-kent-sidr-suspenders/
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct VrpRecord {
    /// The payload.
    pub vrp: Vrp,
    /// When the underlying ROA's validity ends.
    pub not_after: Moment,
    /// The issuing CA's key.
    #[serde(skip)]
    pub issuer: KeyId,
    /// The ROA's EE serial (what a CRL would revoke).
    pub serial: u64,
}

/// A CA certificate (or whole publication point) dropped during the
/// walk, with the resources it claimed — the raw material of
/// unsafe-VRP analysis: any surviving VRP overlapping these resources
/// may have lost a competing or covering ROA with the rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedCa {
    /// Subject handle of the dropped CA (reporting only).
    pub ca: String,
    /// The publication directory the rejection is attributed to.
    pub dir: String,
    /// The resources the dropped certificate claimed (for a dropped
    /// publication point: the CA's effective resources).
    pub resources: ResourceSet,
}

/// The output of one validation run.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ValidationRun {
    /// Every validated ROA payload.
    pub vrps: Vec<Vrp>,
    /// Provenance for every VRP (aligned set, not order): validity end,
    /// issuer, serial.
    pub vrp_records: Vec<VrpRecord>,
    /// Every CA accepted onto the tree.
    pub cas: Vec<ValidatedCa>,
    /// Accepted ROAs, as `(issuing CA handle, ROA display string)`.
    pub accepted_roas: Vec<(String, String)>,
    /// Serials observed as revoked, per issuing CA key — the audit
    /// trail that distinguishes transparent revocation from stealthy
    /// removal.
    pub revocations: Vec<(KeyId, u64)>,
    /// Everything that went wrong or was noteworthy.
    pub diagnostics: Vec<Diagnostic>,
    /// Data provenance per publication point processed: fresh from the
    /// wire, served stale from a snapshot, or absent entirely.
    pub freshness: Vec<(String, Freshness)>,
    /// CAs (or whole publication points) dropped during the walk, in
    /// traversal order, with the resources they claimed. Always
    /// recorded, regardless of [`UnsafeVrpPolicy`].
    pub rejected_cas: Vec<RejectedCa>,
    /// VRPs overlapping a rejected CA's resources, sorted. Empty under
    /// [`UnsafeVrpPolicy::Accept`] (analysis skipped); under
    /// [`UnsafeVrpPolicy::Reject`] these have additionally been removed
    /// from [`ValidationRun::vrps`] and
    /// [`ValidationRun::vrp_records`].
    pub unsafe_vrps: Vec<Vrp>,
}

impl ValidationRun {
    /// The VRPs as a queryable cache.
    pub fn vrp_cache(&self) -> VrpCache {
        self.vrps.iter().copied().collect()
    }

    /// Whether any diagnostic carries the given issue.
    pub fn has_issue(&self, issue: &Issue) -> bool {
        self.diagnostics.iter().any(|d| &d.issue == issue)
    }

    /// Emits this run's outcome into an observability recorder at
    /// simulated time `at`: one `validation` summary event, one
    /// `freshness` provenance event per publication point (in the
    /// run's sorted order), and the matching counters/histograms.
    pub fn emit(&self, rec: &Recorder, at: u64) {
        if !rec.is_enabled() {
            return;
        }
        let mut fresh = 0u64;
        let mut stale = 0u64;
        let mut absent = 0u64;
        for (dir, provenance) in &self.freshness {
            let (label, age) = match provenance {
                Freshness::Fresh => {
                    fresh += 1;
                    ("fresh", 0)
                }
                Freshness::Stale { age } => {
                    stale += 1;
                    ("stale", *age)
                }
                Freshness::Absent => {
                    absent += 1;
                    ("absent", 0)
                }
            };
            rec.event(at, "rp", "freshness")
                .str("dir", dir)
                .str("state", label)
                .u64("age", age)
                .emit();
        }
        rec.count("rp.validation_runs", 1);
        rec.observe("rp.vrps_per_run", self.vrps.len() as u64);
        rec.event(at, "rp", "validation")
            .u64("vrps", self.vrps.len() as u64)
            .u64("cas", self.cas.len() as u64)
            .u64("roas", self.accepted_roas.len() as u64)
            .u64("revocations", self.revocations.len() as u64)
            .u64("diagnostics", self.diagnostics.len() as u64)
            .u64("fresh_dirs", fresh)
            .u64("stale_dirs", stale)
            .u64("absent_dirs", absent)
            .u64("rejected_cas", self.rejected_cas.len() as u64)
            .u64("unsafe_vrps", self.unsafe_vrps.len() as u64)
            .emit();
    }
}

/// The chain validator.
#[derive(Debug, Clone, Copy)]
pub struct Validator {
    config: ValidationConfig,
}

pub(crate) struct WorkItem {
    pub(crate) cert: ResourceCert,
    /// The resources this CA may actually speak for: its certificate's
    /// set under [`OverclaimPolicy::Strict`], possibly an intersection
    /// under [`OverclaimPolicy::Trim`].
    pub(crate) effective: ResourceSet,
    pub(crate) depth: usize,
    /// Keys of every CA above this one (loop detection).
    pub(crate) ancestors: BTreeSet<KeyId>,
    /// Digest of the encoded certificate, when a cache already knows it
    /// (replayed subtrees); `None` means compute on demand.
    pub(crate) digest: Option<Digest>,
}

impl Validator {
    /// A validator with the given configuration.
    pub fn new(config: ValidationConfig) -> Self {
        Validator { config }
    }

    /// Runs validation from `tals` over `source`.
    pub fn run(&self, source: &mut dyn ObjectSource, tals: &[TrustAnchorLocator]) -> ValidationRun {
        let mut run = ValidationRun::default();
        let mut queue: Vec<WorkItem> = Vec::new();

        for tal in tals {
            match self.fetch_ta(source, tal) {
                Some(cert) => {
                    let effective = cert.data().resources.clone();
                    queue.push(WorkItem {
                        cert,
                        effective,
                        depth: 0,
                        ancestors: BTreeSet::new(),
                        digest: None,
                    })
                }
                None => run.diagnostics.push(Diagnostic {
                    ca: "(trust anchor)".to_owned(),
                    dir: tal.uri.to_string(),
                    issue: Issue::TalRejected,
                }),
            }
        }

        while let Some(item) = queue.pop() {
            self.process_ca(source, item, &mut run, &mut queue, None);
        }

        self.finish(&mut run);
        run
    }

    /// The configuration this validator runs under.
    pub(crate) fn config(&self) -> ValidationConfig {
        self.config
    }

    /// Final canonicalisation shared by every entry point: the
    /// order-insensitive vectors are sorted and deduplicated, then the
    /// unsafe-VRP policy is applied as a pure post-pass over the
    /// rejected-CA record (so every tier — cold, incremental, sharded —
    /// reaches the identical verdict from identical walk outputs).
    pub(crate) fn finish(&self, run: &mut ValidationRun) {
        run.vrps.sort_unstable();
        run.vrps.dedup();
        run.vrp_records.sort_unstable_by_key(|r| (r.vrp, r.serial));
        run.vrp_records.dedup();
        run.revocations.sort_unstable();
        run.revocations.dedup();
        run.freshness.sort_unstable();

        if self.config.unsafe_vrps == UnsafeVrpPolicy::Accept {
            return;
        }
        let mut rejected = ResourceSet::empty();
        for r in &run.rejected_cas {
            rejected = rejected.union(&r.resources);
        }
        if rejected.is_empty() {
            return;
        }
        run.unsafe_vrps =
            run.vrps.iter().copied().filter(|v| rejected.overlaps_prefix(v.prefix)).collect();
        if self.config.unsafe_vrps == UnsafeVrpPolicy::Reject {
            run.vrps.retain(|v| !rejected.overlaps_prefix(v.prefix));
            run.vrp_records.retain(|r| !rejected.overlaps_prefix(r.vrp.prefix));
        }
    }

    pub(crate) fn fetch_ta(
        &self,
        source: &mut dyn ObjectSource,
        tal: &TrustAnchorLocator,
    ) -> Option<ResourceCert> {
        let file = tal.uri.file_name()?.to_owned();
        let parent_components: Vec<&str> =
            tal.uri.path().iter().take(tal.uri.path().len() - 1).map(String::as_str).collect();
        let dir = RepoUri::new(tal.uri.host(), &parent_components);
        let outcome = source.load_dir(&dir);
        let bytes = outcome.files.get(&file)?;
        let obj = RpkiObject::from_bytes(bytes).ok()?;
        let RpkiObject::Cert(cert) = obj else { return None };
        if !tal.accepts(&cert) {
            return None;
        }
        if !cert.data().validity.contains(self.config.now) {
            return None;
        }
        Some(cert)
    }

    /// Describes `item`'s CA as the [`ValidatedCa`] entry that
    /// processing it pushes first.
    pub(crate) fn validated_ca(item: &WorkItem) -> ValidatedCa {
        ValidatedCa {
            handle: item.cert.data().subject.clone(),
            key: item.cert.data().subject_key.id(),
            depth: item.depth,
            resources: item.effective.to_prefixes().iter().map(|p| p.to_string()).collect(),
        }
    }

    pub(crate) fn process_ca(
        &self,
        source: &mut dyn ObjectSource,
        item: WorkItem,
        run: &mut ValidationRun,
        queue: &mut Vec<WorkItem>,
        obs: Option<&mut ProcessObservations>,
    ) {
        run.cas.push(Self::validated_ca(&item));

        if item.depth >= self.config.max_depth {
            let dir = item.cert.data().sia.clone();
            run.diagnostics.push(Diagnostic {
                ca: item.cert.data().subject.clone(),
                dir: dir.to_string(),
                issue: Issue::DepthExceeded,
            });
            run.rejected_cas.push(RejectedCa {
                ca: item.cert.data().subject.clone(),
                dir: dir.to_string(),
                resources: item.effective.clone(),
            });
            return;
        }

        let outcome: SyncOutcome = source.load_dir(&item.cert.data().sia.clone());
        self.process_pubpoint(item, outcome, run, queue, obs);
    }

    /// Processes one publication point against an already fetched sync
    /// outcome. The caller has pushed the [`ValidatedCa`] entry and
    /// handled the depth guard; everything else — freshness, manifest,
    /// CRL, objects — happens here. `obs`, when present, collects the
    /// facts the incremental cache needs to judge how long the result
    /// stays valid.
    pub(crate) fn process_pubpoint(
        &self,
        item: WorkItem,
        outcome: SyncOutcome,
        run: &mut ValidationRun,
        queue: &mut Vec<WorkItem>,
        mut obs: Option<&mut ProcessObservations>,
    ) {
        let cert = &item.cert;
        let handle = cert.data().subject.clone();
        let dir = cert.data().sia.clone();
        let dir_s = dir.to_string();
        let key = cert.data().subject_key;
        let resources = item.effective.clone();

        let diag = |run: &mut ValidationRun, issue: Issue| {
            run.diagnostics.push(Diagnostic { ca: handle.clone(), dir: dir_s.clone(), issue });
        };

        let reject_ca = |run: &mut ValidationRun, resources: &ResourceSet| {
            run.rejected_cas.push(RejectedCa {
                ca: handle.clone(),
                dir: dir_s.clone(),
                resources: resources.clone(),
            });
        };

        run.freshness.push((dir_s.clone(), outcome.freshness));
        if !outcome.listed {
            diag(run, Issue::UnreachableRepo);
            reject_ca(run, &resources);
            return;
        }
        for name in &outcome.missing {
            diag(run, Issue::MissingFile(name.clone()));
        }
        for name in &outcome.corrupted {
            diag(run, Issue::CorruptedFile(name.clone()));
        }

        // --- Manifest ---
        let mft_name = format!("{}.mft", key.id().short());
        let manifest = match outcome.files.get(&mft_name) {
            None => {
                diag(run, Issue::MissingManifest);
                None
            }
            Some(bytes) => match RpkiObject::from_bytes(bytes) {
                Ok(RpkiObject::Manifest(m)) => {
                    if let Some(o) = obs.as_deref_mut() {
                        o.next_update(m.data().next_update);
                    }
                    if m.data().entries.len() > MAX_MANIFEST_ENTRIES {
                        // An adversarial listing can flood the walk
                        // with MissingFile work; cap it and treat the
                        // manifest as absent.
                        diag(run, Issue::MalformedObject(mft_name.clone()));
                        None
                    } else if m.verify(&key).is_err() {
                        diag(run, Issue::BadManifestSignature);
                        None
                    } else if m.is_stale_at(self.config.now) {
                        diag(run, Issue::StaleManifest);
                        None
                    } else {
                        Some(m)
                    }
                }
                _ => {
                    diag(run, Issue::DecodeFailed(mft_name.clone()));
                    None
                }
            },
        };

        // Determine completeness and the processing set.
        let mut complete = manifest.is_some();
        let names: Vec<String> = match &manifest {
            Some(m) => {
                let mut names = Vec::new();
                for name in m.file_names() {
                    match outcome.files.get(name) {
                        None => {
                            diag(run, Issue::MissingFile(name.to_owned()));
                            complete = false;
                        }
                        Some(bytes) => {
                            if m.hash_of(name) != Some(sha256(bytes)) {
                                diag(run, Issue::HashMismatch(name.to_owned()));
                                complete = false;
                            } else {
                                names.push(name.to_owned());
                            }
                        }
                    }
                }
                // Note unlisted extras (monitor fodder), except the
                // manifest itself.
                for name in outcome.files.keys() {
                    if name != &mft_name && m.hash_of(name).is_none() {
                        diag(run, Issue::UnlistedFile(name.clone()));
                    }
                }
                names
            }
            None => {
                complete = false;
                outcome.files.keys().filter(|n| *n != &mft_name).cloned().collect()
            }
        };

        if !complete && self.config.incomplete == IncompletePolicy::RejectPublicationPoint {
            diag(run, Issue::RejectedPublicationPoint);
            reject_ca(run, &resources);
            return;
        }

        // --- CRL ---
        let crl_name = format!("{}.crl", key.id().short());
        let crl = match outcome.files.get(&crl_name) {
            None => {
                diag(run, Issue::MissingCrl);
                None
            }
            Some(bytes) => match RpkiObject::from_bytes(bytes) {
                Ok(RpkiObject::Crl(c)) => {
                    if let Some(o) = obs.as_deref_mut() {
                        o.next_update(c.data().next_update);
                    }
                    if c.verify(&key).is_err() {
                        diag(run, Issue::BadCrlSignature);
                        None
                    } else if c.is_stale_at(self.config.now) {
                        diag(run, Issue::StaleCrl);
                        None
                    } else {
                        Some(c)
                    }
                }
                _ => {
                    diag(run, Issue::DecodeFailed(crl_name.clone()));
                    None
                }
            },
        };
        if let Some(c) = &crl {
            for &serial in &c.data().revoked {
                run.revocations.push((key.id(), serial));
            }
        }
        let revoked = |serial: u64| crl.as_ref().map(|c| c.is_revoked(serial)).unwrap_or(false);

        // --- Objects ---
        for name in names {
            if name == mft_name || name == crl_name {
                continue;
            }
            let bytes = &outcome.files[&name];
            let obj = match RpkiObject::from_bytes(bytes) {
                Ok(o) => o,
                Err(_) => {
                    diag(run, Issue::DecodeFailed(name.clone()));
                    continue;
                }
            };
            match obj {
                RpkiObject::Cert(child) => {
                    if let Some(o) = obs.as_deref_mut() {
                        o.validity(child.data().validity);
                        o.child_key(child.subject_key_id());
                    }
                    // Every early `continue` below drops the child's
                    // whole subtree; record its claimed resources for
                    // unsafe-VRP analysis.
                    let reject_child = |run: &mut ValidationRun, child: &ResourceCert| {
                        run.rejected_cas.push(RejectedCa {
                            ca: child.data().subject.clone(),
                            dir: dir_s.clone(),
                            resources: child.data().resources.clone(),
                        });
                    };
                    if child.verify(&key).is_err() {
                        diag(run, Issue::BadSignature(name.clone()));
                        reject_child(run, &child);
                        continue;
                    }
                    let v = child.data().validity;
                    if v.expired_at(self.config.now) {
                        diag(run, Issue::Expired(name.clone()));
                        reject_child(run, &child);
                        continue;
                    }
                    if v.not_before > self.config.now {
                        diag(run, Issue::NotYetValid(name.clone()));
                        reject_child(run, &child);
                        continue;
                    }
                    if revoked(child.data().serial) {
                        diag(run, Issue::Revoked(name.clone()));
                        reject_child(run, &child);
                        continue;
                    }
                    let child_effective = match self.config.overclaim {
                        OverclaimPolicy::Strict => {
                            if !resources.contains_set(&child.data().resources) {
                                diag(run, Issue::OverClaim(name.clone()));
                                reject_child(run, &child);
                                continue;
                            }
                            child.data().resources.clone()
                        }
                        OverclaimPolicy::Trim => {
                            let trimmed = child.data().resources.intersection(&resources);
                            if trimmed != child.data().resources {
                                diag(run, Issue::TrimmedOverClaim(name.clone()));
                            }
                            trimmed
                        }
                    };
                    let child_key = child.subject_key_id();
                    if item.ancestors.contains(&child_key) || child_key == key.id() {
                        if let Some(o) = obs.as_deref_mut() {
                            o.saw_loop();
                        }
                        diag(run, Issue::CertificateLoop(name.clone()));
                        reject_child(run, &child);
                        continue;
                    }
                    let mut ancestors = item.ancestors.clone();
                    ancestors.insert(key.id());
                    queue.push(WorkItem {
                        cert: child,
                        effective: child_effective,
                        depth: item.depth + 1,
                        ancestors,
                        digest: None,
                    });
                }
                RpkiObject::Roa(roa) => {
                    if let Some(o) = obs.as_deref_mut() {
                        o.validity(roa.validity());
                    }
                    if roa.verify(&key).is_err() {
                        diag(run, Issue::BadSignature(name.clone()));
                        continue;
                    }
                    let v = roa.validity();
                    if v.expired_at(self.config.now) {
                        diag(run, Issue::Expired(name.clone()));
                        continue;
                    }
                    if v.not_before > self.config.now {
                        diag(run, Issue::NotYetValid(name.clone()));
                        continue;
                    }
                    if revoked(roa.serial()) {
                        diag(run, Issue::Revoked(name.clone()));
                        continue;
                    }
                    let needed: ResourceSet = roa.resources();
                    if !resources.contains_set(&needed) {
                        diag(run, Issue::OverClaim(name.clone()));
                        continue;
                    }
                    run.accepted_roas.push((handle.clone(), roa.to_string()));
                    for rp in &roa.data().prefixes {
                        let vrp = Vrp::new(rp.prefix, rp.effective_max_len(), roa.asn());
                        run.vrps.push(vrp);
                        run.vrp_records.push(VrpRecord {
                            vrp,
                            not_after: v.not_after,
                            issuer: key.id(),
                            serial: roa.serial(),
                        });
                    }
                }
                RpkiObject::Crl(_) | RpkiObject::Manifest(_) => {
                    // Already handled positionally; extra copies under
                    // odd names are ignored.
                }
            }
        }
    }
}
