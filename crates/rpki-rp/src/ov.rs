//! RFC 6811 route origin validation.
//!
//! The three-state classification is the paper's Section 4 verbatim:
//!
//! - **Valid** — some VRP *matches* (origin equal, prefix covered,
//!   length ≤ maxLength).
//! - **Unknown** (RFC: NotFound) — no VRP even *covers* the prefix.
//! - **Invalid** — covered but not matched.
//!
//! The asymmetry between the last two is the crux of Side Effects 5
//! and 6: adding or removing a ROA changes which routes are *covered*,
//! silently flipping other routes between Unknown and Invalid.

use std::fmt;

use ipres::{Asn, Prefix};
use serde::{Deserialize, Serialize};

use crate::validation::UnsafeVrpPolicy;
use crate::vrp::VrpCache;

/// A BGP route, reduced to what origin validation sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Route {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin AS of the announcement.
    pub origin: Asn,
}

impl Route {
    /// Builds a route.
    pub fn new(prefix: Prefix, origin: Asn) -> Self {
        Route { prefix, origin }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ← {}", self.prefix, self.origin)
    }
}

/// The RFC 6811 validation state of a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteValidity {
    /// A VRP matches the route.
    Valid,
    /// Some VRP covers the route's prefix, but none matches.
    Invalid,
    /// No VRP covers the route's prefix.
    Unknown,
}

impl fmt::Display for RouteValidity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RouteValidity::Valid => "valid",
            RouteValidity::Invalid => "invalid",
            RouteValidity::Unknown => "unknown",
        })
    }
}

impl VrpCache {
    /// Classifies a route per RFC 6811.
    ///
    /// Allocation-free: walks the covering trie path directly (see
    /// [`VrpCache::covering_for_each`]) and stops at the first match,
    /// since one matching VRP already decides Valid.
    pub fn classify(&self, route: Route) -> RouteValidity {
        let mut covered = false;
        let mut matched = false;
        self.covering_for_each(route.prefix, |v| {
            covered = true;
            matched = v.matches(route.prefix, route.origin);
            !matched
        });
        if matched {
            RouteValidity::Valid
        } else if covered {
            RouteValidity::Invalid
        } else {
            RouteValidity::Unknown
        }
    }

    /// Classifies a route under an unsafe-VRP policy.
    ///
    /// `self` must be the VRP set the policy already shaped — the
    /// run's full set under `Accept`/`Warn`, the filtered set under
    /// `Reject` (i.e. exactly [`ValidationRun::vrps`] for that run).
    /// `unsafe_vrps` is the run's unsafe set.
    ///
    /// Returns the RFC 6811 validity plus a *taint* flag: `true` when
    /// an unsafe VRP covers the route, meaning the verdict rests on
    /// (or, under `Reject`, was changed by dropping) payloads whose
    /// issuing chain overlaps a rejected CA. Under `Accept` no unsafe
    /// analysis ran, so the flag is always `false`.
    ///
    /// This is where the reject policy's sharp edge lives: a
    /// misbehaving parent that forces its child CA to be rejected
    /// drags the victim's legitimate more-specific VRP into the
    /// unsafe set, and `Reject` then removes the very VRP that made
    /// the victim's announcement Valid — flipping it to Invalid under
    /// any surviving covering ROA.
    ///
    /// [`ValidationRun::vrps`]: crate::validation::ValidationRun::vrps
    pub fn classify_with_policy(
        &self,
        route: Route,
        unsafe_vrps: &VrpCache,
        policy: UnsafeVrpPolicy,
    ) -> (RouteValidity, bool) {
        let validity = self.classify(route);
        let tainted = match policy {
            UnsafeVrpPolicy::Accept => false,
            UnsafeVrpPolicy::Warn | UnsafeVrpPolicy::Reject => {
                let mut covered = false;
                unsafe_vrps.covering_for_each(route.prefix, |_| {
                    covered = true;
                    false
                });
                covered
            }
        };
        (validity, tainted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vrp::Vrp;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// The cache corresponding to the paper's Figure 2 ROA set.
    fn figure2_cache() -> VrpCache {
        [
            Vrp::new(p("63.160.64.0/20"), 24, Asn(1239)),
            Vrp::new(p("208.24.0.0/16"), 24, Asn(1239)),
            Vrp::new(p("63.174.16.0/22"), 22, Asn(7341)),
            Vrp::new(p("63.174.20.0/23"), 23, Asn(7341)),
            Vrp::new(p("63.174.22.0/24"), 24, Asn(7341)),
            Vrp::new(p("63.174.16.0/20"), 20, Asn(17054)),
            Vrp::new(p("66.174.161.0/24"), 24, Asn(6167)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn figure5_left_spot_checks() {
        let cache = figure2_cache();
        // Route for the /12 with any origin: unknown (no covering ROA).
        assert_eq!(
            cache.classify(Route::new(p("63.160.0.0/12"), Asn(1239))),
            RouteValidity::Unknown
        );
        // (63.160.64.0/20, AS1239): valid.
        assert_eq!(
            cache.classify(Route::new(p("63.160.64.0/20"), Asn(1239))),
            RouteValidity::Valid
        );
        // Subprefix /24 inside the maxlen-24 ROA: valid for AS1239.
        assert_eq!(
            cache.classify(Route::new(p("63.160.65.0/24"), Asn(1239))),
            RouteValidity::Valid
        );
        // Same prefix, wrong origin: invalid (subprefix hijack stopped).
        assert_eq!(
            cache.classify(Route::new(p("63.160.65.0/24"), Asn(666))),
            RouteValidity::Invalid
        );
        // The paper's Section 4 example: 63.174.17.0/24 has no ROA of
        // its own, but the /20 ROA covers it → invalid, not unknown.
        assert_eq!(
            cache.classify(Route::new(p("63.174.17.0/24"), Asn(17054))),
            RouteValidity::Invalid
        );
        // While 63.160.0.0/12 routes stay unknown entirely.
        assert_eq!(
            cache.classify(Route::new(p("63.160.0.0/12"), Asn(666))),
            RouteValidity::Unknown
        );
    }

    #[test]
    fn side_effect_5_new_roa_flips_unknown_to_invalid() {
        let mut cache = figure2_cache();
        let route = Route::new(p("63.161.0.0/16"), Asn(4323));
        assert_eq!(cache.classify(route), RouteValidity::Unknown);
        // Sprint issues (63.160.0.0/12-13, AS1239) — Figure 5 (right).
        cache.insert(Vrp::new(p("63.160.0.0/12"), 13, Asn(1239)));
        assert_eq!(cache.classify(route), RouteValidity::Invalid);
        // And the /12 route itself becomes valid for Sprint...
        assert_eq!(cache.classify(Route::new(p("63.160.0.0/12"), Asn(1239))), RouteValidity::Valid);
        // ...and /13s too (maxlen 13), but not /14s.
        assert_eq!(cache.classify(Route::new(p("63.160.0.0/13"), Asn(1239))), RouteValidity::Valid);
        assert_eq!(
            cache.classify(Route::new(p("63.160.0.0/14"), Asn(1239))),
            RouteValidity::Invalid
        );
    }

    #[test]
    fn side_effect_6_missing_roa_flips_valid_to_invalid() {
        let mut cache = figure2_cache();
        let route = Route::new(p("63.174.16.0/22"), Asn(7341));
        assert_eq!(cache.classify(route), RouteValidity::Valid);
        // The ROA goes missing from the local cache; the covering /20
        // ROA (AS 17054) remains → invalid, NOT unknown.
        assert!(cache.remove(&Vrp::new(p("63.174.16.0/22"), 22, Asn(7341))));
        assert_eq!(cache.classify(route), RouteValidity::Invalid);
    }

    #[test]
    fn removing_noncovering_roa_never_invalidates() {
        // DESIGN.md invariant 3 (spot form; the property test
        // generalises it).
        let mut cache = figure2_cache();
        let route = Route::new(p("63.174.16.0/22"), Asn(7341));
        assert_eq!(cache.classify(route), RouteValidity::Valid);
        assert!(cache.remove(&Vrp::new(p("208.24.0.0/16"), 24, Asn(1239))));
        assert_eq!(cache.classify(route), RouteValidity::Valid);
    }

    #[test]
    fn empty_cache_knows_nothing() {
        let cache = VrpCache::new();
        assert_eq!(cache.classify(Route::new(p("8.8.8.0/24"), Asn(15169))), RouteValidity::Unknown);
    }

    #[test]
    fn reject_policy_suppresses_victim_more_specific() {
        // A parent holds a covering /16 ROA (AS 1); the victim child
        // holds a legitimate /24 more-specific (AS 2). The victim's
        // route is Valid while its VRP is in the set.
        let parent = Vrp::new(p("10.0.0.0/16"), 24, Asn(1));
        let victim = Vrp::new(p("10.0.7.0/24"), 24, Asn(2));
        let full: VrpCache = [parent, victim].into_iter().collect();
        let unsafe_set: VrpCache = [victim].into_iter().collect();
        let route = Route::new(p("10.0.7.0/24"), Asn(2));

        // Accept: Valid, untainted (no analysis).
        assert_eq!(
            full.classify_with_policy(route, &unsafe_set, UnsafeVrpPolicy::Accept),
            (RouteValidity::Valid, false)
        );
        // Warn: still Valid, but flagged as resting on unsafe data.
        assert_eq!(
            full.classify_with_policy(route, &unsafe_set, UnsafeVrpPolicy::Warn),
            (RouteValidity::Valid, true)
        );
        // Reject: the victim's VRP is dropped; the surviving parent
        // /16 still covers the route, so it flips Valid → Invalid —
        // the rejected CA suppressed a legitimate announcement.
        let filtered: VrpCache = [parent].into_iter().collect();
        assert_eq!(
            filtered.classify_with_policy(route, &unsafe_set, UnsafeVrpPolicy::Reject),
            (RouteValidity::Invalid, true)
        );
        // A route outside the unsafe set stays untainted everywhere.
        let outside = Route::new(p("10.0.0.0/16"), Asn(1));
        assert_eq!(
            filtered.classify_with_policy(outside, &unsafe_set, UnsafeVrpPolicy::Reject),
            (RouteValidity::Valid, false)
        );
    }

    #[test]
    fn exact_duplicate_prefix_two_origins() {
        let cache: VrpCache =
            [Vrp::new(p("10.0.0.0/16"), 16, Asn(1)), Vrp::new(p("10.0.0.0/16"), 16, Asn(2))]
                .into_iter()
                .collect();
        assert_eq!(cache.classify(Route::new(p("10.0.0.0/16"), Asn(1))), RouteValidity::Valid);
        assert_eq!(cache.classify(Route::new(p("10.0.0.0/16"), Asn(2))), RouteValidity::Valid);
        assert_eq!(cache.classify(Route::new(p("10.0.0.0/16"), Asn(3))), RouteValidity::Invalid);
    }
}
