//! RRDP as a relying-party object source, with the rsync downgrade.
//!
//! [`RrdpSource`] is the transport-preference policy production relying
//! parties implement: try RRDP first (cheap delta sync), fall back to
//! the rsync path — with the full [`SyncPolicy`] retry/backoff driver —
//! when RRDP is unreachable, withheld, or corrupt. That fallback is
//! also the attack surface *Stalloris* exploits, so the source comes in
//! two configurations:
//!
//! - **verified** (the default): every successful RRDP sync is
//!   cross-checked against an rsync digest probe. A publication point
//!   replaying a frozen stale view disagrees with its own rsync
//!   endpoint, the lie is caught ([`RrdpClientState::note_pinned`]),
//!   and the source downgrades to rsync for the real bytes.
//! - **trusting** ([`RrdpSource::trusting`]): no cross-check. The
//!   relying party believes whatever the RRDP feed confirms — which is
//!   exactly the RP the downgrade campaign shows staying pinned on
//!   stale data through a whack window.
//!
//! Either way the outcome a directory load produces is byte-identical
//! to a complete rsync sync of the same repository state, so the
//! validator, the incremental cache, and the resilience layer compose
//! with RRDP unchanged.

use netsim::{Network, NodeId};
use rpki_objects::RepoUri;
use rpki_repo::{
    rrdp_probe_dir, rrdp_sync_dir, sync_dir_with_policy, DirProbe, RepoRegistry, RrdpClientState,
    SyncOutcome, SyncPolicy,
};

use crate::source::ObjectSource;

/// RRDP-preferring retrieval over the simulated network, with rsync
/// fallback under the given retry policy.
pub struct RrdpSource<'a> {
    net: &'a mut Network,
    repos: &'a RepoRegistry,
    client: NodeId,
    state: &'a mut RrdpClientState,
    policy: SyncPolicy,
    verify: bool,
    /// Timed-fallback window: `Some(t)` holds the rsync downgrade back
    /// until a notification has been unreachable for `t` seconds
    /// (routinator's `--rrdp-fallback-time`); `None` downgrades on the
    /// first hard failure, the pre-scheduler behaviour.
    fallback_after: Option<u64>,
}

impl<'a> RrdpSource<'a> {
    /// A verified source from `client`'s vantage point: RRDP syncs are
    /// cross-checked against an rsync digest probe, and failures fall
    /// back to rsync under `policy`.
    pub fn new(
        net: &'a mut Network,
        repos: &'a RepoRegistry,
        client: NodeId,
        state: &'a mut RrdpClientState,
        policy: SyncPolicy,
    ) -> Self {
        RrdpSource { net, repos, client, state, policy, verify: true, fallback_after: None }
    }

    /// Drops the freshness cross-check: the source believes whatever
    /// the RRDP feed confirms. This is the Stalloris-vulnerable
    /// configuration.
    pub fn trusting(mut self) -> Self {
        self.verify = false;
        self
    }

    /// Arms the routinator-style timed fallback: a hard RRDP failure
    /// downgrades to rsync only once the notification has been
    /// unreachable for `window` seconds; earlier failures surface as
    /// unreachable outcomes instead (the resilience layer then serves
    /// its last-good snapshot and the scheduler backs the host off).
    /// This keeps a transient RRDP blip from handing a Stalloris
    /// attacker the downgrade for free.
    pub fn fallback_after(mut self, window: u64) -> Self {
        self.fallback_after = Some(window);
        self
    }

    /// Falls back to the rsync path for one directory, recording the
    /// downgrade.
    fn downgrade(&mut self, dir: &RepoUri, reason: &str) -> SyncOutcome {
        self.state.note_downgrade();
        let rec = self.net.recorder();
        if rec.is_enabled() {
            rec.count("rp.rrdp_downgrades", 1);
            rec.event(self.net.now(), "rp", "rrdp_downgrade")
                .str("host", dir.host())
                .str("reason", reason)
                .emit();
        }
        sync_dir_with_policy(self.net, self.repos, self.client, dir, &self.policy).0
    }
}

impl ObjectSource for RrdpSource<'_> {
    fn load_dir(&mut self, dir: &RepoUri) -> SyncOutcome {
        let deadline = self.policy.deadline;
        match rrdp_sync_dir(self.net, self.repos, self.client, dir, self.state, deadline) {
            Ok((outcome, _kind)) => {
                self.state.note_reachable(dir);
                if self.verify {
                    // Freshness cross-check: the rsync endpoint serves
                    // the at-rest truth; an RRDP feed pinned on a stale
                    // view cannot match it.
                    let probe =
                        rpki_repo::probe_dir(self.net, self.repos, self.client, dir, deadline);
                    if probe.digest.is_some() && probe.digest != outcome.content {
                        self.state.note_pinned();
                        let rec = self.net.recorder();
                        if rec.is_enabled() {
                            rec.count("rp.rrdp_pinned_detected", 1);
                            rec.event(self.net.now(), "rp", "rrdp_pinned")
                                .str("host", dir.host())
                                .emit();
                        }
                        return self.downgrade(dir, "pinned");
                    }
                }
                outcome
            }
            Err(err) => {
                if let Some(window) = self.fallback_after {
                    let now = self.net.now();
                    let since = self.state.note_unreachable(dir, now);
                    if now.saturating_sub(since) < window {
                        // Inside the fallback window: hold the rsync
                        // downgrade back and surface the failure. Not
                        // silent — the deferral is counted and traced.
                        self.state.note_fallback_deferral();
                        let rec = self.net.recorder();
                        if rec.is_enabled() {
                            rec.count("rp.rrdp_fallback_deferrals", 1);
                            rec.event(now, "rp", "rrdp_fallback_deferred")
                                .str("host", dir.host())
                                .str("reason", err.label())
                                .u64("since", since)
                                .emit();
                        }
                        return SyncOutcome::unreachable(dir.clone());
                    }
                    self.state.note_fallback_switch();
                }
                self.downgrade(dir, err.label())
            }
        }
    }

    fn now(&self) -> u64 {
        self.net.now()
    }

    fn wire_frames(&self) -> Option<u64> {
        Some(self.net.stats().sent)
    }

    fn probe_dir(&mut self, dir: &RepoUri) -> Option<DirProbe> {
        let deadline = self.policy.deadline;
        if self.verify {
            // Probe the rsync endpoint: under a pin the probe reports
            // the truth, a cached subtree keyed on the stale digest
            // misses, and the ensuing load catches the lie.
            Some(rpki_repo::probe_dir(self.net, self.repos, self.client, dir, deadline))
        } else {
            // Probe the notification: a trusting relying party lets the
            // RRDP feed vouch for itself.
            Some(rrdp_probe_dir(self.net, self.repos, self.client, dir, deadline))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpki_repo::sync_dir;

    fn world() -> (Network, RepoRegistry, NodeId, NodeId, RepoUri) {
        let mut net = Network::new(7);
        let client = net.add_node("rp");
        let mut repos = RepoRegistry::new();
        let server = repos.create(&mut net, "h");
        let dir = RepoUri::new("h", &["repo"]);
        let repo = repos.get_mut(server).unwrap();
        repo.publish_raw(&dir, "a.roa", vec![1, 2]);
        repo.publish_raw(&dir, "b.cer", vec![3]);
        (net, repos, client, server, dir)
    }

    #[test]
    fn verified_source_matches_rsync() {
        let (mut net, repos, client, _, dir) = world();
        let mut state = RrdpClientState::new();
        let mut src = RrdpSource::new(&mut net, &repos, client, &mut state, SyncPolicy::default());
        let out = src.load_dir(&dir);
        let rsync = sync_dir(&mut net, &repos, client, &dir);
        assert_eq!(out, rsync);
        assert_eq!(state.stats().downgrades, 0);
    }

    #[test]
    fn offline_rrdp_downgrades_to_rsync() {
        let (mut net, mut repos, client, server, dir) = world();
        repos.get_mut(server).unwrap().set_rrdp_offline(true);
        let mut state = RrdpClientState::new();
        let mut src = RrdpSource::new(&mut net, &repos, client, &mut state, SyncPolicy::default());
        let out = src.load_dir(&dir);
        assert!(out.is_complete(), "the rsync fallback must deliver");
        assert_eq!(state.stats().downgrades, 1);
        assert_eq!(state.stats().failures, 1);
    }

    #[test]
    fn verified_source_catches_a_pinned_feed() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut state = RrdpClientState::new();
        {
            let mut src =
                RrdpSource::new(&mut net, &repos, client, &mut state, SyncPolicy::default());
            src.load_dir(&dir);
        }
        let repo = repos.get_mut(server).unwrap();
        repo.rrdp_pin();
        repo.publish_raw(&dir, "a.roa", vec![9, 9]);
        let mut src = RrdpSource::new(&mut net, &repos, client, &mut state, SyncPolicy::default());
        let out = src.load_dir(&dir);
        assert_eq!(out.files["a.roa"], vec![9, 9], "the cross-check must recover the truth");
        assert_eq!(state.stats().pinned_detected, 1);
        assert_eq!(state.stats().downgrades, 1);
    }

    #[test]
    fn trusting_source_stays_pinned() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut state = RrdpClientState::new();
        {
            let mut src =
                RrdpSource::new(&mut net, &repos, client, &mut state, SyncPolicy::default())
                    .trusting();
            src.load_dir(&dir);
        }
        let repo = repos.get_mut(server).unwrap();
        repo.rrdp_pin();
        repo.publish_raw(&dir, "a.roa", vec![9, 9]);
        let mut src =
            RrdpSource::new(&mut net, &repos, client, &mut state, SyncPolicy::default()).trusting();
        let out = src.load_dir(&dir);
        assert_eq!(out.files["a.roa"], vec![1, 2], "the trusting RP is captive to the pin");
        assert_eq!(state.stats().pinned_detected, 0);
        assert_eq!(state.stats().downgrades, 0);
    }

    #[test]
    fn trusting_source_still_downgrades_on_hard_failure() {
        let (mut net, mut repos, client, server, dir) = world();
        repos.get_mut(server).unwrap().set_rrdp_offline(true);
        let mut state = RrdpClientState::new();
        let mut src =
            RrdpSource::new(&mut net, &repos, client, &mut state, SyncPolicy::default()).trusting();
        let out = src.load_dir(&dir);
        assert!(out.is_complete(), "prefer-RRDP still means rsync on hard failure");
        assert_eq!(state.stats().downgrades, 1);
    }

    #[test]
    fn timed_fallback_defers_then_switches() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut state = RrdpClientState::new();
        {
            let mut src =
                RrdpSource::new(&mut net, &repos, client, &mut state, SyncPolicy::default());
            assert!(src.load_dir(&dir).is_complete());
        }
        repos.get_mut(server).unwrap().set_rrdp_offline(true);
        {
            let mut src =
                RrdpSource::new(&mut net, &repos, client, &mut state, SyncPolicy::default())
                    .fallback_after(3600);
            let out = src.load_dir(&dir);
            assert!(!out.listed, "inside the window the failure surfaces, no rsync");
            assert_eq!(state.stats().downgrades, 0);
            assert_eq!(state.stats().fallback_deferrals, 1);
            assert!(state.unreachable_since(&dir).is_some());
        }
        net.advance_to(5_000);
        {
            let mut src =
                RrdpSource::new(&mut net, &repos, client, &mut state, SyncPolicy::default())
                    .fallback_after(3600);
            let out = src.load_dir(&dir);
            assert!(out.is_complete(), "past the window the rsync fallback fires");
            assert_eq!(state.stats().downgrades, 1);
            assert_eq!(state.stats().fallback_switches, 1);
        }
        repos.get_mut(server).unwrap().set_rrdp_offline(false);
        {
            let mut src =
                RrdpSource::new(&mut net, &repos, client, &mut state, SyncPolicy::default())
                    .fallback_after(3600);
            assert!(src.load_dir(&dir).is_complete());
            assert!(state.unreachable_since(&dir).is_none(), "recovery clears the streak");
        }
    }

    #[test]
    fn probe_mode_follows_verification_mode() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut vstate = RrdpClientState::new();
        let mut tstate = RrdpClientState::new();
        {
            let mut src =
                RrdpSource::new(&mut net, &repos, client, &mut vstate, SyncPolicy::default());
            src.load_dir(&dir);
        }
        let truth_before = {
            let mut src =
                RrdpSource::new(&mut net, &repos, client, &mut vstate, SyncPolicy::default());
            src.probe_dir(&dir).unwrap().digest
        };
        let repo = repos.get_mut(server).unwrap();
        repo.rrdp_pin();
        repo.publish_raw(&dir, "a.roa", vec![9]);
        let verified_probe = {
            let mut src =
                RrdpSource::new(&mut net, &repos, client, &mut vstate, SyncPolicy::default());
            src.probe_dir(&dir).unwrap().digest
        };
        let trusting_probe = {
            let mut src =
                RrdpSource::new(&mut net, &repos, client, &mut tstate, SyncPolicy::default())
                    .trusting();
            src.probe_dir(&dir).unwrap().digest
        };
        assert_ne!(verified_probe, truth_before, "rsync probe sees the new write");
        assert_eq!(trusting_probe, truth_before, "notification probe repeats the pinned lie");
    }
}
