//! Incremental revalidation: memoized subtree walks and VRP deltas.
//!
//! The campaign harness revalidates the whole RPKI every round, yet a
//! fault window usually touches one publication point. Production
//! validators exploit that: unchanged publication points are not
//! re-fetched, re-parsed, or re-verified. [`ValidationState`] brings
//! the same economy to the model: it memoizes each CA's subtree result
//! keyed by everything the result is a function of, and
//! [`Validator::run_incremental`] replays cached results for unchanged
//! subtrees while re-walking only what changed.
//!
//! # Cache key and invalidation
//!
//! A publication point's validation output is a pure function of:
//!
//! - the **directory content** — captured by
//!   [`SyncOutcome::content_digest`](rpki_repo::SyncOutcome::content_digest)
//!   over the sorted `(name, digest)` pairs plus the missing/corrupted
//!   name lists;
//! - the **CA certificate bytes** (digest of the encoded certificate —
//!   key, subject, validity, SIA all included);
//! - the **effective resources** handed down by the parent (whacking an
//!   ancestor changes these without touching the child's directory);
//! - the **depth** and the policy knobs ([`IncompletePolicy`],
//!   [`OverclaimPolicy`], `max_depth`);
//! - the **validation time**, only through threshold comparisons: each
//!   decoded object contributes its `not_before` / `not_after + 1` (or
//!   `next_update + 1`) as a boundary, so a cache entry stores the
//!   half-open window `[lo, hi)` of times at which every comparison
//!   comes out the same way. Collecting a superset of boundaries is
//!   safe — it only narrows the window and forces an extra re-walk;
//! - the **ancestor key set**, only through loop detection: an entry
//!   records every certificate subject key seen in the directory and is
//!   replayed only for chains whose ancestor set is disjoint from it.
//!   Walks that actually hit a [`Issue::CertificateLoop`] are never
//!   cached.
//!
//! All signature checks are deterministic functions of the bytes (the
//! crypto-sim's `key_id` pins the registry secret), so equal inputs
//! replay equal outputs, byte for byte.
//!
//! # Determinism and modes
//!
//! [`RevalidationMode::Full`] loads every directory exactly as a cold
//! walk would — identical network traffic, identical fault-dice
//! consumption — and uses the digest only to skip decode/verify work.
//! Output (including trace events) is therefore byte-identical to
//! [`Validator::run`] under *any* seeded campaign. In
//! [`RevalidationMode::Probe`] a cached subtree is first checked with a
//! LIST-only [`ObjectSource::probe_dir`]; a digest match skips the file
//! transfers entirely. That is the cheap mode, but because a probe
//! exchanges different frames than a full sync, probabilistic fault
//! scenarios consume their dice differently — Probe equivalence is only
//! guaranteed against deterministic transports.
//!
//! Each run also leaves a [`VrpDelta`] (announce/withdraw against the
//! previous run) in the state, ready to feed
//! [`RtrServer::publish`](crate::rtr::RtrServer::publish) so an
//! RTR serial bump carries a real delta instead of a recomputed set.

use std::collections::{BTreeMap, BTreeSet};

use ipres::ResourceSet;
use rpki_objects::{Encode, Moment, TrustAnchorLocator, Validity};
use rpki_obs::Recorder;
use rpki_repo::Freshness;
use rpkisim_crypto::{sha256, Digest, KeyId};
use serde::Serialize;

use crate::source::ObjectSource;
use crate::validation::{
    Diagnostic, IncompletePolicy, OverclaimPolicy, RejectedCa, ValidatedCa, ValidationRun,
    Validator, VrpRecord, WorkItem,
};
use crate::vrp::Vrp;

#[cfg(doc)]
use crate::validation::Issue;

/// How [`Validator::run_incremental`] checks cached subtrees for
/// staleness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RevalidationMode {
    /// Sync every directory exactly as a cold walk would and use the
    /// content digest only to skip re-validation work. Network
    /// behaviour — and therefore every seeded fault outcome — is
    /// byte-identical to [`Validator::run`].
    Full,
    /// Probe cached subtrees with a LIST-only exchange first and skip
    /// the file transfers on a digest match. Cheapest, but the changed
    /// traffic pattern perturbs probabilistic fault dice, so exact
    /// equivalence holds only over deterministic transports.
    Probe,
}

/// Facts collected while processing one publication point that decide
/// how long (and for which chains) the memoized result stays valid.
pub(crate) struct ProcessObservations {
    now: u64,
    lo: u64,
    hi: u64,
    pub(crate) child_keys: BTreeSet<KeyId>,
    pub(crate) loop_seen: bool,
}

impl ProcessObservations {
    /// A collector for a walk validating at time `now`.
    pub(crate) fn at(now: u64) -> Self {
        ProcessObservations {
            now,
            lo: 0,
            hi: u64::MAX,
            child_keys: BTreeSet::new(),
            loop_seen: false,
        }
    }

    /// Registers a time at which some comparison against "now" flips.
    fn boundary(&mut self, at: u64) {
        if at <= self.now {
            self.lo = self.lo.max(at);
        } else {
            self.hi = self.hi.min(at);
        }
    }

    /// An object validity window: comparisons flip at `not_before` and
    /// just past `not_after`.
    pub(crate) fn validity(&mut self, v: Validity) {
        self.boundary(v.not_before.0);
        self.boundary(v.not_after.0.saturating_add(1));
    }

    /// A manifest/CRL `next_update`: staleness begins just past it.
    pub(crate) fn next_update(&mut self, at: Moment) {
        self.boundary(at.0.saturating_add(1));
    }

    /// A certificate subject key seen in the directory (loop-detection
    /// precondition for replay).
    pub(crate) fn child_key(&mut self, key: KeyId) {
        self.child_keys.insert(key);
    }

    /// A [`Issue::CertificateLoop`] fired: the result depends on the
    /// chain's ancestry, so it must not be memoized.
    pub(crate) fn saw_loop(&mut self) {
        self.loop_seen = true;
    }

    /// The half-open `[lo, hi)` window of validation times over which
    /// every observed comparison keeps its outcome.
    pub(crate) fn window(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }
}

/// The change in the validated VRP set between two consecutive runs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct VrpDelta {
    /// VRPs present now but not in the previous run, sorted.
    pub announce: Vec<Vrp>,
    /// VRPs present in the previous run but not now, sorted.
    pub withdraw: Vec<Vrp>,
}

impl VrpDelta {
    /// The delta taking sorted, deduplicated `old` to sorted,
    /// deduplicated `new` (a linear merge — both inputs come from
    /// [`ValidationRun::vrps`], which is sorted and deduplicated).
    pub fn between(old: &[Vrp], new: &[Vrp]) -> Self {
        let mut announce = Vec::new();
        let mut withdraw = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < new.len() {
            match old[i].cmp(&new[j]) {
                std::cmp::Ordering::Less => {
                    withdraw.push(old[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    announce.push(new[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        withdraw.extend_from_slice(&old[i..]);
        announce.extend_from_slice(&new[j..]);
        VrpDelta { announce, withdraw }
    }

    /// Whether the two runs validated the same VRP set.
    pub fn is_empty(&self) -> bool {
        self.announce.is_empty() && self.withdraw.is_empty()
    }

    /// Applies this delta to a VRP set in place.
    pub fn apply(&self, set: &mut BTreeSet<Vrp>) {
        for vrp in &self.announce {
            set.insert(*vrp);
        }
        for vrp in &self.withdraw {
            set.remove(vrp);
        }
    }
}

/// What one incremental run did, for benchmarking and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RevalidationStats {
    /// Publication points replayed from cache.
    pub subtrees_reused: u64,
    /// Publication points processed in full (cold, changed, or
    /// uncacheable).
    pub subtrees_rewalked: u64,
    /// LIST-only probes attempted (Probe mode only).
    pub probes: u64,
    /// Probes whose digest matched the cache, skipping the transfer.
    pub probe_hits: u64,
    /// VRPs announced by this run's delta.
    pub announced: u64,
    /// VRPs withdrawn by this run's delta.
    pub withdrawn: u64,
}

impl RevalidationStats {
    /// Emits this run's incremental counters and delta-size histograms
    /// into `rec` at simulated time `at`.
    pub fn emit(&self, rec: &Recorder, at: u64) {
        if !rec.is_enabled() {
            return;
        }
        rec.count("rp.incremental.runs", 1);
        rec.count("rp.incremental.subtrees_reused", self.subtrees_reused);
        rec.count("rp.incremental.subtrees_rewalked", self.subtrees_rewalked);
        rec.count("rp.incremental.probes", self.probes);
        rec.count("rp.incremental.probe_hits", self.probe_hits);
        rec.observe("rp.incremental.delta_announced", self.announced);
        rec.observe("rp.incremental.delta_withdrawn", self.withdrawn);
        rec.event(at, "rp", "incremental")
            .u64("reused", self.subtrees_reused)
            .u64("rewalked", self.subtrees_rewalked)
            .u64("probes", self.probes)
            .u64("probe_hits", self.probe_hits)
            .u64("announced", self.announced)
            .u64("withdrawn", self.withdrawn)
            .emit();
    }
}

/// One memoized publication-point walk: the full key it was computed
/// under plus everything processing pushed into the run.
#[derive(Debug, Clone)]
pub(crate) struct CacheEntry {
    pub(crate) cert_digest: Digest,
    pub(crate) effective: ResourceSet,
    pub(crate) depth: usize,
    pub(crate) incomplete: IncompletePolicy,
    pub(crate) overclaim: OverclaimPolicy,
    pub(crate) max_depth: usize,
    pub(crate) dir: String,
    pub(crate) dir_digest: Digest,
    /// `[lo, hi)` of validation times preserving every time comparison.
    pub(crate) window: (u64, u64),
    /// Certificate subject keys seen in the directory: replay requires
    /// the chain's ancestors to be disjoint from these.
    pub(crate) child_keys: BTreeSet<KeyId>,
    pub(crate) ca: ValidatedCa,
    pub(crate) diagnostics: Vec<Diagnostic>,
    pub(crate) accepted_roas: Vec<(String, String)>,
    pub(crate) vrps: Vec<Vrp>,
    pub(crate) vrp_records: Vec<VrpRecord>,
    pub(crate) revocations: Vec<(KeyId, u64)>,
    pub(crate) rejected_cas: Vec<RejectedCa>,
    /// Child CAs in the order processing queued them, each with its
    /// cert digest precomputed so replayed subtrees never re-encode or
    /// re-hash certificates.
    pub(crate) children: Vec<(rpki_objects::ResourceCert, ResourceSet, Digest)>,
}

/// Persistent memory of an incremental relying party: the per-CA
/// subtree cache, the previous run's VRP set, and the last run's delta
/// and statistics. Owned by the experiment and lent to
/// [`Validator::run_incremental`] each revalidation.
#[derive(Debug)]
pub struct ValidationState {
    pub(crate) mode: RevalidationMode,
    pub(crate) entries: BTreeMap<KeyId, CacheEntry>,
    pub(crate) last_vrps: Option<Vec<Vrp>>,
    pub(crate) last_delta: VrpDelta,
    pub(crate) stats: RevalidationStats,
}

impl ValidationState {
    /// Fresh state revalidating in `mode`.
    pub fn new(mode: RevalidationMode) -> Self {
        ValidationState {
            mode,
            entries: BTreeMap::new(),
            last_vrps: None,
            last_delta: VrpDelta::default(),
            stats: RevalidationStats::default(),
        }
    }

    /// Fresh state in [`RevalidationMode::Full`] (campaign-safe:
    /// byte-identical network behaviour).
    pub fn full() -> Self {
        ValidationState::new(RevalidationMode::Full)
    }

    /// Fresh state in [`RevalidationMode::Probe`] (cheapest; exact
    /// equivalence over deterministic transports only).
    pub fn probe() -> Self {
        ValidationState::new(RevalidationMode::Probe)
    }

    /// The revalidation mode in force.
    pub fn mode(&self) -> RevalidationMode {
        self.mode
    }

    /// Number of publication points currently memoized.
    pub fn cached_subtrees(&self) -> usize {
        self.entries.len()
    }

    /// Statistics of the most recent [`Validator::run_incremental`].
    pub fn stats(&self) -> RevalidationStats {
        self.stats
    }

    /// The VRP delta the most recent run produced against the one
    /// before it (everything is an announce on the first run).
    pub fn last_delta(&self) -> &VrpDelta {
        &self.last_delta
    }

    /// Drops all memoized subtrees and the previous VRP set; the next
    /// run walks cold and announces everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.last_vrps = None;
        self.last_delta = VrpDelta::default();
        self.stats = RevalidationStats::default();
    }
}

impl Validator {
    /// Runs validation from `tals` over `source`, reusing `state`'s
    /// memoized subtrees where their cache key still matches and
    /// re-walking the rest. Output is byte-identical to
    /// [`Validator::run`] over the same world (see the module docs for
    /// the Probe-mode caveat); afterwards `state` holds the VRP delta
    /// against the previous run and this run's [`RevalidationStats`].
    pub fn run_incremental(
        &self,
        source: &mut dyn ObjectSource,
        tals: &[TrustAnchorLocator],
        state: &mut ValidationState,
    ) -> ValidationRun {
        let mut run = ValidationRun::default();
        let mut queue: Vec<WorkItem> = Vec::new();
        let mut stats = RevalidationStats::default();

        for tal in tals {
            match self.fetch_ta(source, tal) {
                Some(cert) => {
                    let effective = cert.data().resources.clone();
                    queue.push(WorkItem {
                        cert,
                        effective,
                        depth: 0,
                        ancestors: BTreeSet::new(),
                        digest: None,
                    })
                }
                None => run.diagnostics.push(Diagnostic {
                    ca: "(trust anchor)".to_owned(),
                    dir: tal.uri.to_string(),
                    issue: crate::validation::Issue::TalRejected,
                }),
            }
        }

        while let Some(item) = queue.pop() {
            self.step(source, item, &mut run, &mut queue, state, &mut stats);
        }

        self.finish(&mut run);

        let prev = state.last_vrps.take().unwrap_or_default();
        let delta = VrpDelta::between(&prev, &run.vrps);
        stats.announced = delta.announce.len() as u64;
        stats.withdrawn = delta.withdraw.len() as u64;
        state.last_vrps = Some(run.vrps.clone());
        state.last_delta = delta;
        state.stats = stats;
        run
    }

    /// Processes one queued CA: replay from cache when the key matches,
    /// full walk (and re-memoization) otherwise.
    fn step(
        &self,
        source: &mut dyn ObjectSource,
        item: WorkItem,
        run: &mut ValidationRun,
        queue: &mut Vec<WorkItem>,
        state: &mut ValidationState,
        stats: &mut RevalidationStats,
    ) {
        let config = self.config();
        // Depth-exceeded items never touch the directory; processing
        // them is cheaper than caching them.
        if item.depth >= config.max_depth {
            stats.subtrees_rewalked += 1;
            self.process_ca(source, item, run, queue, None);
            return;
        }

        let key = item.cert.data().subject_key.id();
        let cert_digest = item.digest.unwrap_or_else(|| sha256(&item.cert.to_bytes()));
        let now = config.now.0;
        let usable = state.entries.get(&key).is_some_and(|e| {
            e.cert_digest == cert_digest
                && e.effective == item.effective
                && e.depth == item.depth
                && e.incomplete == config.incomplete
                && e.overclaim == config.overclaim
                && e.max_depth == config.max_depth
                && e.window.0 <= now
                && now < e.window.1
                && e.child_keys.is_disjoint(&item.ancestors)
        });
        let dir = item.cert.data().sia.clone();

        if usable && state.mode == RevalidationMode::Probe {
            if let Some(probe) = source.probe_dir(&dir) {
                stats.probes += 1;
                // Internal invariant, not remote-reachable: `usable`
                // was computed from this same map entry above and
                // nothing has removed it since.
                let entry = state.entries.get(&key).expect("usable entry present");
                if probe.listed && probe.content_digest() == Some(entry.dir_digest) {
                    stats.probe_hits += 1;
                    stats.subtrees_reused += 1;
                    Self::replay(entry, Freshness::Fresh, &item, run, queue);
                    return;
                }
            }
        }

        let outcome = source.load_dir(&dir);
        let dir_digest = outcome.content_digest();
        if usable {
            // Internal invariant, not remote-reachable (see above).
            let entry = state.entries.get(&key).expect("usable entry present");
            if dir_digest == Some(entry.dir_digest) {
                stats.subtrees_reused += 1;
                Self::replay(entry, outcome.freshness, &item, run, queue);
                return;
            }
        }

        // Miss: walk the publication point for real, observing what the
        // result depends on, then memoize by slicing off what this walk
        // appended to the run and the queue.
        stats.subtrees_rewalked += 1;
        let ca_mark = run.cas.len();
        let diag_mark = run.diagnostics.len();
        let roa_mark = run.accepted_roas.len();
        let vrp_mark = run.vrps.len();
        let rec_mark = run.vrp_records.len();
        let rev_mark = run.revocations.len();
        let rej_mark = run.rejected_cas.len();
        let queue_mark = queue.len();
        let mut obs = ProcessObservations::at(now);
        let depth = item.depth;
        let effective = item.effective.clone();

        run.cas.push(Validator::validated_ca(&item));
        self.process_pubpoint(item, outcome, run, queue, Some(&mut obs));

        // Unlisted directories have no content digest to key on, and
        // walks that hit a certificate loop depend on this particular
        // chain's ancestry: neither is memoized.
        let Some(dir_digest) = dir_digest else {
            state.entries.remove(&key);
            return;
        };
        if obs.loop_seen {
            state.entries.remove(&key);
            return;
        }
        let entry = CacheEntry {
            cert_digest,
            effective,
            depth,
            incomplete: config.incomplete,
            overclaim: config.overclaim,
            max_depth: config.max_depth,
            dir: dir.to_string(),
            dir_digest,
            window: obs.window(),
            child_keys: obs.child_keys,
            ca: run.cas[ca_mark].clone(),
            diagnostics: run.diagnostics[diag_mark..].to_vec(),
            accepted_roas: run.accepted_roas[roa_mark..].to_vec(),
            vrps: run.vrps[vrp_mark..].to_vec(),
            vrp_records: run.vrp_records[rec_mark..].to_vec(),
            revocations: run.revocations[rev_mark..].to_vec(),
            rejected_cas: run.rejected_cas[rej_mark..].to_vec(),
            children: queue[queue_mark..]
                .iter()
                .map(|w| {
                    let digest = w.digest.unwrap_or_else(|| sha256(&w.cert.to_bytes()));
                    (w.cert.clone(), w.effective.clone(), digest)
                })
                .collect(),
        };
        state.entries.insert(key, entry);
    }

    /// Replays a memoized walk: pushes the stored outputs in their
    /// original order and re-queues the child CAs exactly as the full
    /// walk queued them, so the overall traversal — and therefore every
    /// order-sensitive output vector — is identical. Freshness is live:
    /// it reports how *this* round obtained (or confirmed) the data.
    pub(crate) fn replay(
        entry: &CacheEntry,
        freshness: Freshness,
        item: &WorkItem,
        run: &mut ValidationRun,
        queue: &mut Vec<WorkItem>,
    ) {
        run.cas.push(entry.ca.clone());
        run.freshness.push((entry.dir.clone(), freshness));
        run.diagnostics.extend(entry.diagnostics.iter().cloned());
        run.accepted_roas.extend(entry.accepted_roas.iter().cloned());
        run.vrps.extend_from_slice(&entry.vrps);
        run.vrp_records.extend_from_slice(&entry.vrp_records);
        run.revocations.extend(entry.revocations.iter().cloned());
        run.rejected_cas.extend(entry.rejected_cas.iter().cloned());
        let mut ancestors = item.ancestors.clone();
        ancestors.insert(entry.ca.key);
        for (cert, effective, digest) in &entry.children {
            queue.push(WorkItem {
                cert: cert.clone(),
                effective: effective.clone(),
                depth: entry.depth + 1,
                ancestors: ancestors.clone(),
                digest: Some(*digest),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_between_and_apply_roundtrip() {
        let v = |n: u8| Vrp::new(format!("10.{n}.0.0/16").parse().unwrap(), 16, ipres::Asn(1));
        let old = vec![v(1), v(2), v(3)];
        let new = vec![v(2), v(3), v(4), v(5)];
        let delta = VrpDelta::between(&old, &new);
        assert_eq!(delta.announce, vec![v(4), v(5)]);
        assert_eq!(delta.withdraw, vec![v(1)]);
        assert!(!delta.is_empty());
        let mut set: BTreeSet<Vrp> = old.into_iter().collect();
        delta.apply(&mut set);
        assert_eq!(set.into_iter().collect::<Vec<_>>(), new);
        assert!(VrpDelta::between(&new, &new).is_empty());
    }

    #[test]
    fn time_window_brackets_now() {
        let mut obs = ProcessObservations::at(100);
        obs.validity(Validity::new(Moment(10), Moment(500)));
        obs.next_update(Moment(300));
        assert_eq!(obs.window(), (10, 301));
        // A boundary exactly at now lands in the lower bound.
        obs.validity(Validity::new(Moment(100), Moment(10_000)));
        assert_eq!(obs.window(), (100, 301));
    }
}
