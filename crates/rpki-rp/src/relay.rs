//! rtrtr-style relay units: merge, filter, re-serve.
//!
//! Production operators rarely point routers at a single relying party.
//! An rtrtr-style relay sits between: it consumes several upstream RTR
//! feeds, merges them under a policy, applies SLURM (RFC 8416) local
//! exceptions, and re-serves the result downstream as an RTR cache of
//! its own. For the paper's story this is where cross-RP divergence
//! becomes *routing policy*: the same five relying-party tiers that
//! disagree during a misbehaving-authority campaign can be unioned,
//! intersected, or failed-over by a relay, and each choice propagates a
//! different VRP set to the routers behind it.
//!
//! A [`Relay`] is a composed unit:
//!
//! - N upstream **feeds**, each a full [`RtrClient`] session over the
//!   framed fabric (so feeds stall and diverge under the fault model
//!   like any router would);
//! - a [`MergePolicy`] — union (any feed vouches), all (every live
//!   feed must vouch), or any (first live feed wins, pure failover);
//! - a [`SlurmFile`] of prefix/ASN filters and assertions applied to
//!   the merged set ([RFC 8416] semantics: filters drop matching VRPs,
//!   assertions add locally-trusted ones afterwards);
//! - a downstream [`RtrFabric`] target re-serving the result, serial
//!   by serial, to attached routers.
//!
//! [`reference_merge`] is the sequential oracle: the relay's published
//! set must equal it byte-for-byte on the same live-feed inputs.
//!
//! [RFC 8416]: https://www.rfc-editor.org/rfc/rfc8416

use std::collections::BTreeSet;

use ipres::{Asn, Prefix};
use netsim::{Delivery, Network, NodeId};

use crate::fabric::{frame, unframe, RtrEndpoint, RtrFabric, FRAME_RTR_DATA, FRAME_RTR_QUERY};
use crate::rtr::{ClientAction, RtrClient, VrpUpdate};
use crate::vrp::Vrp;

/// One RFC 8416 `prefixFilter`: drops VRPs it matches. A filter with a
/// prefix matches every VRP whose prefix is equal to or more specific
/// than it; a filter with an ASN matches every VRP of that ASN; with
/// both, both must hold. An empty filter matches nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlurmFilter {
    /// Match VRPs covered by this prefix.
    pub prefix: Option<Prefix>,
    /// Match VRPs with this origin ASN.
    pub asn: Option<Asn>,
}

impl SlurmFilter {
    /// Filter every VRP covered by `prefix`.
    pub fn prefix(prefix: Prefix) -> Self {
        SlurmFilter { prefix: Some(prefix), asn: None }
    }

    /// Filter every VRP originated by `asn`.
    pub fn asn(asn: Asn) -> Self {
        SlurmFilter { prefix: None, asn: Some(asn) }
    }

    /// Filter VRPs matching both the prefix and the ASN.
    pub fn prefix_and_asn(prefix: Prefix, asn: Asn) -> Self {
        SlurmFilter { prefix: Some(prefix), asn: Some(asn) }
    }

    /// Whether this filter drops `vrp`.
    pub fn matches(&self, vrp: &Vrp) -> bool {
        if self.prefix.is_none() && self.asn.is_none() {
            return false;
        }
        self.prefix.is_none_or(|p| p.covers(vrp.prefix)) && self.asn.is_none_or(|a| a == vrp.asn)
    }
}

/// A set of RFC 8416 local exceptions: filters first, then assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlurmFile {
    /// `prefixFilters`: VRPs matching any filter are dropped.
    pub filters: Vec<SlurmFilter>,
    /// `prefixAssertions`: locally-trusted VRPs added after filtering.
    pub assertions: Vec<Vrp>,
}

impl SlurmFile {
    /// No local exceptions: `apply` is the identity.
    pub fn empty() -> Self {
        SlurmFile::default()
    }

    /// Whether this file changes nothing.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty() && self.assertions.is_empty()
    }

    /// Applies the exceptions: drop every VRP matching any filter, then
    /// add every assertion. Idempotent — re-filtering removes at most
    /// what re-asserting restores.
    pub fn apply(&self, vrps: &BTreeSet<Vrp>) -> BTreeSet<Vrp> {
        let mut out: BTreeSet<Vrp> =
            vrps.iter().filter(|v| !self.filters.iter().any(|f| f.matches(v))).copied().collect();
        out.extend(self.assertions.iter().copied());
        out
    }
}

/// How a relay combines its live upstream feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Union of every live feed: a VRP counts if *any* relying party
    /// vouches for it (availability over strictness).
    Union,
    /// First live feed wins: pure failover, no mixing.
    Any,
    /// Intersection of every live feed: a VRP counts only if *all*
    /// relying parties agree (strictness over availability — divergence
    /// between tiers shrinks the set routers act on).
    All,
}

/// The sequential oracle for a merge: what the policy produces on the
/// given live-feed VRP sets, in feed order. The relay's published set
/// must equal this byte-for-byte.
pub fn reference_merge(policy: MergePolicy, feeds: &[BTreeSet<Vrp>]) -> BTreeSet<Vrp> {
    match policy {
        MergePolicy::Union => {
            feeds.iter().fold(BTreeSet::new(), |acc, f| acc.union(f).copied().collect())
        }
        MergePolicy::Any => feeds.first().cloned().unwrap_or_default(),
        MergePolicy::All => {
            let Some((first, rest)) = feeds.split_first() else {
                return BTreeSet::new();
            };
            rest.iter().fold(first.clone(), |acc, f| acc.intersection(f).copied().collect())
        }
    }
}

/// One upstream RTR session the relay consumes.
#[derive(Debug)]
struct Feed {
    upstream: NodeId,
    client: RtrClient,
}

/// A composable relay unit: merges upstream feeds, applies SLURM, and
/// re-serves downstream as an RTR cache.
#[derive(Debug)]
pub struct Relay {
    node: NodeId,
    feeds: Vec<Feed>,
    policy: MergePolicy,
    slurm: SlurmFile,
    target: RtrFabric,
}

impl Relay {
    /// A relay at `node` re-serving under its own RTR session id and
    /// delta-history depth.
    pub fn new(
        node: NodeId,
        policy: MergePolicy,
        slurm: SlurmFile,
        session: u16,
        max_history: usize,
    ) -> Self {
        Relay {
            node,
            feeds: Vec::new(),
            policy,
            slurm,
            target: RtrFabric::new(node, session, max_history),
        }
    }

    /// The relay's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers an upstream cache to feed from (in policy order:
    /// [`MergePolicy::Any`] prefers earlier feeds).
    pub fn add_feed(&mut self, upstream: NodeId) {
        self.feeds.push(Feed { upstream, client: RtrClient::new() });
    }

    /// Registers a downstream router for notify fan-out.
    pub fn attach(&mut self, router: NodeId) {
        self.target.attach(router);
    }

    /// The downstream-facing fabric (serial, session table, stats).
    pub fn target(&self) -> &RtrFabric {
        &self.target
    }

    /// Polls every upstream feed (reset query on fresh sessions).
    pub fn poll_feeds(&mut self, net: &mut Network) {
        for feed in &mut self.feeds {
            let pdu = feed.client.poll();
            net.send(self.node, feed.upstream, frame(FRAME_RTR_QUERY, &pdu));
        }
    }

    /// Indices of feeds with an established session, in feed order.
    pub fn live_feeds(&self) -> Vec<usize> {
        (0..self.feeds.len()).filter(|&i| self.feeds[i].client.session().is_some()).collect()
    }

    /// The serial feed `i` has reached, if its session is established.
    pub fn feed_serial(&self, i: usize) -> Option<u32> {
        let feed = self.feeds.get(i)?;
        feed.client.session().map(|_| feed.client.serial())
    }

    /// The merged, SLURM-filtered VRP set over the live feeds.
    pub fn merged(&self) -> BTreeSet<Vrp> {
        let live: Vec<BTreeSet<Vrp>> = self
            .feeds
            .iter()
            .filter(|f| f.client.session().is_some())
            .map(|f| f.client.vrp_set().clone())
            .collect();
        self.slurm.apply(&reference_merge(self.policy, &live))
    }

    /// Recomputes the merge and, if it changed, publishes it downstream
    /// (serial bump + notify fan-out). Returns `true` on a new serial.
    pub fn republish(&mut self, net: &mut Network) -> bool {
        let merged = self.merged();
        self.target.publish(net, VrpUpdate::Snapshot(merged))
    }
}

impl RtrEndpoint for Relay {
    fn node(&self) -> NodeId {
        self.node
    }

    fn deliver(&mut self, net: &mut Network, delivery: &Delivery) {
        // Upstream data frame → the matching feed's client.
        if let Some(feed) = self.feeds.iter_mut().find(|f| f.upstream == delivery.from) {
            let Ok(pdu) = unframe(FRAME_RTR_DATA, &delivery.payload) else {
                return; // corrupted upstream frame: next notify retries
            };
            match feed.client.handle(&pdu) {
                ClientAction::Query | ClientAction::Reset => {
                    let poll = feed.client.poll();
                    net.send(self.node, feed.upstream, frame(FRAME_RTR_QUERY, &poll));
                }
                ClientAction::Idle => {}
            }
            return;
        }
        // Anything else is a downstream router query for our target.
        self.target.deliver(net, delivery);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{pump_until, RtrRouter};
    use ipres::{Asn, Prefix};

    fn v(s: &str, max: u8, asn: u32) -> Vrp {
        Vrp::new(s.parse::<Prefix>().unwrap(), max, Asn(asn))
    }

    fn set(vrps: &[Vrp]) -> BTreeSet<Vrp> {
        vrps.iter().copied().collect()
    }

    #[test]
    fn slurm_filters_and_assertions() {
        let vrps =
            set(&[v("10.0.0.0/16", 24, 1), v("10.0.1.0/24", 24, 2), v("10.1.0.0/16", 16, 3)]);
        // Prefix filter drops covered VRPs only.
        let file = SlurmFile {
            filters: vec![SlurmFilter::prefix("10.0.0.0/16".parse().unwrap())],
            assertions: vec![],
        };
        assert_eq!(file.apply(&vrps), set(&[v("10.1.0.0/16", 16, 3)]));
        // ASN filter drops by origin.
        let file = SlurmFile { filters: vec![SlurmFilter::asn(Asn(2))], assertions: vec![] };
        assert_eq!(file.apply(&vrps).len(), 2);
        // Prefix+ASN filter requires both.
        let file = SlurmFile {
            filters: vec![SlurmFilter::prefix_and_asn("10.0.0.0/16".parse().unwrap(), Asn(1))],
            assertions: vec![],
        };
        assert_eq!(file.apply(&vrps).len(), 2, "only the (prefix, asn) match drops");
        // Assertions are added after filtering; an empty filter matches
        // nothing.
        let asserted = v("192.0.2.0/24", 24, 64512);
        let file = SlurmFile { filters: vec![SlurmFilter::default()], assertions: vec![asserted] };
        let out = file.apply(&vrps);
        assert_eq!(out.len(), 4);
        assert!(out.contains(&asserted));
        // Idempotence.
        assert_eq!(file.apply(&out), out);
    }

    #[test]
    fn reference_merge_policies() {
        let a = set(&[v("10.0.0.0/16", 24, 1), v("10.1.0.0/16", 16, 2)]);
        let b = set(&[v("10.1.0.0/16", 16, 2), v("10.2.0.0/16", 16, 3)]);
        assert_eq!(reference_merge(MergePolicy::Union, &[a.clone(), b.clone()]).len(), 3);
        assert_eq!(
            reference_merge(MergePolicy::All, &[a.clone(), b.clone()]),
            set(&[v("10.1.0.0/16", 16, 2)])
        );
        assert_eq!(reference_merge(MergePolicy::Any, &[a.clone(), b.clone()]), a);
        assert_eq!(reference_merge(MergePolicy::Union, &[]), BTreeSet::new());
        assert_eq!(reference_merge(MergePolicy::All, &[]), BTreeSet::new());
    }

    /// Two upstream caches with diverging sets, a union relay with a
    /// SLURM filter, one router behind it: the router ends up holding
    /// exactly the sequential reference merge.
    #[test]
    fn relay_end_to_end_matches_reference() {
        let mut net = Network::new(23);
        let cache_a = net.add_node("rp-a");
        let cache_b = net.add_node("rp-b");
        let relay_node = net.add_node("relay");
        let router_node = net.add_node("router");

        let mut fab_a = RtrFabric::new(cache_a, 10, 8);
        let mut fab_b = RtrFabric::new(cache_b, 20, 8);
        let slurm = SlurmFile {
            filters: vec![SlurmFilter::asn(Asn(666))],
            assertions: vec![v("192.0.2.0/24", 24, 64512)],
        };
        let mut relay = Relay::new(relay_node, MergePolicy::Union, slurm.clone(), 30, 8);
        relay.add_feed(cache_a);
        relay.add_feed(cache_b);
        fab_a.attach(relay_node);
        fab_b.attach(relay_node);
        relay.attach(router_node);
        let mut router = RtrRouter::new(router_node, relay_node);

        let set_a = [v("10.0.0.0/16", 24, 1), v("10.3.0.0/16", 16, 666)];
        let set_b = [v("10.1.0.0/16", 16, 2), v("10.3.0.0/16", 16, 666)];
        fab_a.publish(&mut net, VrpUpdate::snapshot(set_a));
        fab_b.publish(&mut net, VrpUpdate::snapshot(set_b));
        relay.poll_feeds(&mut net);
        let deadline = net.now() + 1_000;
        {
            let mut eps: Vec<&mut dyn RtrEndpoint> =
                vec![&mut fab_a, &mut fab_b, &mut relay, &mut router];
            pump_until(&mut net, deadline, &mut eps);
        }
        assert_eq!(relay.live_feeds(), vec![0, 1]);
        assert!(relay.republish(&mut net));
        let deadline = net.now() + 1_000;
        {
            let mut eps: Vec<&mut dyn RtrEndpoint> =
                vec![&mut fab_a, &mut fab_b, &mut relay, &mut router];
            pump_until(&mut net, deadline, &mut eps);
        }

        let reference =
            slurm.apply(&reference_merge(MergePolicy::Union, &[set(&set_a), set(&set_b)]));
        assert_eq!(router.vrps(), &reference);
        // The filtered AS 666 VRP and the asserted one behaved.
        assert!(!router.vrps().contains(&v("10.3.0.0/16", 16, 666)));
        assert!(router.vrps().contains(&v("192.0.2.0/24", 24, 64512)));
    }

    /// An `Any` relay fails over: while feed 0 has never synced, the
    /// relay serves feed 1; once feed 0 comes up it takes precedence.
    #[test]
    fn any_policy_fails_over_in_feed_order() {
        let mut net = Network::new(29);
        let cache_a = net.add_node("rp-a");
        let cache_b = net.add_node("rp-b");
        let relay_node = net.add_node("relay");

        let mut fab_a = RtrFabric::new(cache_a, 10, 8);
        let mut fab_b = RtrFabric::new(cache_b, 20, 8);
        let mut relay = Relay::new(relay_node, MergePolicy::Any, SlurmFile::empty(), 30, 8);
        relay.add_feed(cache_a);
        relay.add_feed(cache_b);
        fab_a.attach(relay_node);
        fab_b.attach(relay_node);

        let set_a = [v("10.0.0.0/16", 24, 1)];
        let set_b = [v("10.1.0.0/16", 16, 2)];
        net.faults.partition(cache_a, relay_node);
        fab_a.publish(&mut net, VrpUpdate::snapshot(set_a));
        fab_b.publish(&mut net, VrpUpdate::snapshot(set_b));
        relay.poll_feeds(&mut net);
        let deadline = net.now() + 1_000;
        {
            let mut eps: Vec<&mut dyn RtrEndpoint> = vec![&mut fab_a, &mut fab_b, &mut relay];
            pump_until(&mut net, deadline, &mut eps);
        }
        assert_eq!(relay.live_feeds(), vec![1]);
        assert_eq!(relay.merged(), set(&set_b), "failover to the live feed");

        net.faults.heal(cache_a, relay_node);
        fab_a.renotify(&mut net, relay_node);
        let deadline = net.now() + 1_000;
        {
            let mut eps: Vec<&mut dyn RtrEndpoint> = vec![&mut fab_a, &mut fab_b, &mut relay];
            pump_until(&mut net, deadline, &mut eps);
        }
        assert_eq!(relay.live_feeds(), vec![0, 1]);
        assert_eq!(relay.merged(), set(&set_a), "first live feed wins again");
    }
}
