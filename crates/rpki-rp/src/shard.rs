//! Deterministic sharded validation: the per-publication-point subtree
//! walks of [`Validator::run`] become independent shard units executed
//! by a seeded work-stealing scheduler, with a canonical merge that
//! makes the N-shard output **byte-identical** to the sequential walk.
//!
//! # How determinism survives parallelism
//!
//! The walk proceeds in *waves*: the frontier of pending publication
//! points at one depth. Each wave runs in three stages:
//!
//! 1. **Canonical-order I/O (coordinator).** The frontier is sorted by
//!    its [DFS key](#dfs-keys) and every directory is loaded by the
//!    coordinator, one at a time, in that order. Transport traffic is
//!    therefore a pure function of the world — independent of the
//!    shard count — so seeded fault dice are consumed identically
//!    whether the walk runs on 1 shard or 8. Incremental cache probes
//!    and digest checks (PR 4) happen here too, per publication point,
//!    so the memo cache composes with sharding unchanged.
//! 2. **Sharded CPU work (workers).** Decode, signature verification,
//!    manifest/CRL checks, and resource containment — the expensive
//!    part — run on `shards` worker threads. Slots are assigned to
//!    shards by a seeded hash (`splitmix64(seed, wave, slot)`); an
//!    idle worker steals from the back of a neighbour's deque. Each
//!    item produces a self-contained *fragment* (its slice of the
//!    run), so racing workers never touch shared output.
//! 3. **Canonical merge (coordinator).** Fragments are stitched back
//!    in ascending DFS-key order — the exact order the sequential
//!    LIFO walk processes items — and cache insertions are applied in
//!    that same order. Scheduling jitter can change *which worker*
//!    computes a fragment, never *where* the fragment lands.
//!
//! # DFS keys
//!
//! Every work item carries a path key `Vec<u32>`: trust anchor `i` of
//! `k` gets `[k-1-i]`, and a child queued at push-rank `r` of `n`
//! extends its parent's key with `n-1-r`. Ascending lexicographic
//! order over these keys is exactly the order `Validator::run`'s
//! LIFO queue pops items (parents before children, later-pushed
//! siblings first), so concatenating fragments in key order
//! reproduces every order-sensitive output vector byte for byte.
//!
//! # Equivalence guarantees
//!
//! - `run_sharded(N)` ≡ `run_sharded(M)` for all N, M — always,
//!   including under seeded faults, because I/O order and merge order
//!   are both shard-count independent.
//! - `run_sharded(N)` ≡ [`Validator::run`] over order-insensitive
//!   sources ([`DirectSource`](crate::DirectSource), or a fault-free
//!   network): the wave walk loads directories in a different *order*
//!   than the depth-first walk, which only matters to transports whose
//!   answers depend on request ordering.
//!
//! Timing data (per-shard busy time, steal counts) is inherently
//! nondeterministic; it lives only in the returned [`ShardStats`] and
//! is **never** emitted into trace events, which must stay replayable
//! byte for byte.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

use ipres::ResourceSet;
use rpki_objects::{Encode, TrustAnchorLocator};
use rpki_obs::Recorder;
use rpki_repo::{Freshness, SyncOutcome};
use rpkisim_crypto::{sha256, Digest, KeyId};
use serde::Serialize;

use crate::incremental::{
    CacheEntry, ProcessObservations, RevalidationMode, RevalidationStats, ValidationState, VrpDelta,
};
use crate::source::ObjectSource;
use crate::validation::{
    Diagnostic, Issue, RejectedCa, ValidationConfig, ValidationRun, Validator, WorkItem,
};

/// How a sharded walk distributes work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ShardPlan {
    /// Number of shard workers (clamped to ≥ 1).
    pub shards: usize,
    /// Seed for the shard-assignment hash. Different seeds permute
    /// which shard initially owns which item; the merged output is
    /// identical for every seed.
    pub seed: u64,
}

impl ShardPlan {
    /// A plan with `shards` workers and the default seed.
    pub fn new(shards: usize) -> Self {
        ShardPlan::seeded(shards, 0x5eed_cafe)
    }

    /// A plan with `shards` workers and an explicit assignment seed.
    pub fn seeded(shards: usize, seed: u64) -> Self {
        ShardPlan { shards: shards.max(1), seed }
    }
}

/// What one sharded walk did.
///
/// The deterministic fields (`shards`, `waves`, `items`, `assigned`)
/// are a pure function of the world and the plan. The timing fields
/// (`busy_ns`, `critical_path_ns`, `processed`, `steals`) are
/// wall-clock measurements and vary run to run — they are returned
/// here for benchmarking but deliberately kept out of trace events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ShardStats {
    /// Worker count the walk ran with.
    pub shards: usize,
    /// Frontier waves executed (= deepest processed depth + 1).
    pub waves: u64,
    /// Publication-point items processed across all waves.
    pub items: u64,
    /// Items initially assigned to each shard by the seeded hash
    /// (before stealing) — deterministic.
    pub assigned: Vec<u64>,
    /// Items each worker actually processed (own plus stolen).
    pub processed: Vec<u64>,
    /// Items that ran on a different shard than assigned.
    pub steals: u64,
    /// Per-shard busy time, nanoseconds, summed over waves.
    pub busy_ns: Vec<u64>,
    /// Total busy time across all shards (the sequential CPU cost of
    /// the sharded stage).
    pub busy_total_ns: u64,
    /// Sum over waves of the *maximum* per-shard busy time in that
    /// wave: the schedule's critical path. With perfect balance this
    /// approaches `busy_total_ns / shards`.
    pub critical_path_ns: u64,
}

impl ShardStats {
    /// The schedule's load-balance speedup: total busy time divided by
    /// the critical path. This is the factor by which the sharded
    /// stage beats the sequential walk *given one core per shard* —
    /// it measures the quality of the work distribution independently
    /// of how many physical cores the host happens to have.
    pub fn model_speedup(&self) -> f64 {
        if self.critical_path_ns == 0 {
            return 1.0;
        }
        self.busy_total_ns as f64 / self.critical_path_ns as f64
    }

    /// Emits the walk's deterministic shape into `rec` at simulated
    /// time `at`. Timing fields are intentionally omitted: traces must
    /// replay byte-identically.
    pub fn emit(&self, rec: &Recorder, at: u64) {
        if !rec.is_enabled() {
            return;
        }
        rec.count("rp.shard.runs", 1);
        rec.observe("rp.shard.items_per_run", self.items);
        rec.event(at, "rp", "sharded_walk")
            .u64("shards", self.shards as u64)
            .u64("waves", self.waves)
            .u64("items", self.items)
            .u64("assigned_min", self.assigned.iter().copied().min().unwrap_or(0))
            .u64("assigned_max", self.assigned.iter().copied().max().unwrap_or(0))
            .emit();
    }
}

/// SplitMix64: the seeded, stateless shard-assignment hash.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The shard an item at `slot` of `wave` is initially assigned to.
fn assign(plan: ShardPlan, wave: u64, slot: usize) -> usize {
    (splitmix64(plan.seed ^ splitmix64((wave << 32) | slot as u64)) % plan.shards as u64) as usize
}

/// One item's self-contained output: its fragment of the run plus the
/// children it queued, in push order.
struct ItemOutput {
    frag: ValidationRun,
    children: Vec<WorkItem>,
    /// Present when the item was processed with cache observations
    /// (incremental miss path).
    obs: Option<ProcessObservations>,
}

/// A unit of sharded CPU work: everything a worker needs, I/O already
/// done.
struct PendingJob {
    item: WorkItem,
    outcome: SyncOutcome,
    with_obs: bool,
}

/// Coordinator-side facts needed to memoize a job's result after the
/// wave completes (incremental mode only).
struct MemoMeta {
    key: KeyId,
    cert_digest: Digest,
    dir: String,
    dir_digest: Option<Digest>,
    depth: usize,
    effective: ResourceSet,
}

/// What stage 1 decided about one frontier slot.
enum Prepared {
    /// Resolved on the coordinator (depth guard or cache replay).
    Done(Box<ItemOutput>),
    /// Needs worker processing.
    Job(Box<PendingJob>),
}

struct WorkerOut {
    results: Vec<(usize, ItemOutput)>,
    busy: u64,
    processed: u64,
    steals: u64,
}

fn append(run: &mut ValidationRun, frag: ValidationRun) {
    run.vrps.extend(frag.vrps);
    run.vrp_records.extend(frag.vrp_records);
    run.cas.extend(frag.cas);
    run.accepted_roas.extend(frag.accepted_roas);
    run.revocations.extend(frag.revocations);
    run.diagnostics.extend(frag.diagnostics);
    run.freshness.extend(frag.freshness);
    run.rejected_cas.extend(frag.rejected_cas);
}

/// Runs one job: validated-CA entry, then the full publication-point
/// walk into a private fragment. Pure CPU — no I/O, no shared state.
fn process_job(v: &Validator, job: PendingJob) -> ItemOutput {
    let mut frag = ValidationRun::default();
    let mut children = Vec::new();
    frag.cas.push(Validator::validated_ca(&job.item));
    if job.with_obs {
        let mut obs = ProcessObservations::at(v.config().now.0);
        v.process_pubpoint(job.item, job.outcome, &mut frag, &mut children, Some(&mut obs));
        ItemOutput { frag, children, obs: Some(obs) }
    } else {
        v.process_pubpoint(job.item, job.outcome, &mut frag, &mut children, None);
        ItemOutput { frag, children, obs: None }
    }
}

impl Validator {
    /// Runs validation from `tals` over `source` with the walk sharded
    /// per `plan`. The merged [`ValidationRun`] is byte-identical to
    /// [`Validator::run`] over order-insensitive sources, and
    /// byte-identical across shard counts unconditionally (see the
    /// [module docs](self)).
    pub fn run_sharded(
        &self,
        source: &mut dyn ObjectSource,
        tals: &[TrustAnchorLocator],
        plan: ShardPlan,
    ) -> (ValidationRun, ShardStats) {
        self.run_sharded_inner(source, tals, plan, None)
    }

    /// [`Validator::run_sharded`] composed with the PR 4 memo cache:
    /// cached subtrees replay on the coordinator (including LIST-only
    /// digest probes in [`RevalidationMode::Probe`]), and only cache
    /// misses fan out to the shard workers. Afterwards `state` holds
    /// the VRP delta and [`RevalidationStats`] exactly as
    /// [`Validator::run_incremental`] would leave them.
    pub fn run_sharded_incremental(
        &self,
        source: &mut dyn ObjectSource,
        tals: &[TrustAnchorLocator],
        plan: ShardPlan,
        state: &mut ValidationState,
    ) -> (ValidationRun, ShardStats) {
        self.run_sharded_inner(source, tals, plan, Some(state))
    }

    fn run_sharded_inner(
        &self,
        source: &mut dyn ObjectSource,
        tals: &[TrustAnchorLocator],
        plan: ShardPlan,
        mut state: Option<&mut ValidationState>,
    ) -> (ValidationRun, ShardStats) {
        let shards = plan.shards.max(1);
        let config = self.config();
        let mut stats = ShardStats {
            shards,
            assigned: vec![0; shards],
            processed: vec![0; shards],
            busy_ns: vec![0; shards],
            ..ShardStats::default()
        };
        let mut inc_stats = RevalidationStats::default();
        let mut run = ValidationRun::default();

        // Seed the frontier from the TALs, mirroring `run`: rejected
        // TALs diagnose straight into the run (before any fragment),
        // accepted ones get the canonical key of their pop order.
        let mut frontier: Vec<(Vec<u32>, WorkItem)> = Vec::new();
        let k = tals.len();
        for (i, tal) in tals.iter().enumerate() {
            match self.fetch_ta(source, tal) {
                Some(cert) => {
                    let effective = cert.data().resources.clone();
                    frontier.push((
                        vec![(k - 1 - i) as u32],
                        WorkItem {
                            cert,
                            effective,
                            depth: 0,
                            ancestors: BTreeSet::new(),
                            digest: None,
                        },
                    ));
                }
                None => run.diagnostics.push(Diagnostic {
                    ca: "(trust anchor)".to_owned(),
                    dir: tal.uri.to_string(),
                    issue: Issue::TalRejected,
                }),
            }
        }

        let mut fragments: Vec<(Vec<u32>, ValidationRun)> = Vec::new();
        let mut wave_idx: u64 = 0;

        while !frontier.is_empty() {
            frontier.sort_by(|a, b| a.0.cmp(&b.0));
            stats.waves += 1;
            stats.items += frontier.len() as u64;

            // -- Stage 1: canonical-order I/O and cache decisions. --
            let n = frontier.len();
            let mut keys: Vec<Vec<u32>> = Vec::with_capacity(n);
            let mut memos: Vec<Option<MemoMeta>> = Vec::with_capacity(n);
            let mut outputs: Vec<Option<ItemOutput>> = Vec::with_capacity(n);
            let mut jobs: Vec<Mutex<Option<PendingJob>>> = Vec::with_capacity(n);
            let mut pending: Vec<usize> = Vec::new();
            for (slot, (key_path, item)) in frontier.drain(..).enumerate() {
                keys.push(key_path);
                let (prepared, memo) =
                    self.prepare(source, item, state.as_deref_mut(), &mut inc_stats);
                memos.push(memo);
                match prepared {
                    Prepared::Done(out) => {
                        outputs.push(Some(*out));
                        jobs.push(Mutex::new(None));
                    }
                    Prepared::Job(job) => {
                        outputs.push(None);
                        jobs.push(Mutex::new(Some(*job)));
                        pending.push(slot);
                    }
                }
            }

            // -- Stage 2: seeded assignment, work-stealing execution. --
            if !pending.is_empty() {
                let queues: Vec<Mutex<VecDeque<usize>>> =
                    (0..shards).map(|_| Mutex::new(VecDeque::new())).collect();
                // The `expect`s on locks and joins below are internal
                // invariants, not remote-reachable: a lock is poisoned
                // (and a join fails) only if another worker already
                // panicked, and the validator itself never panics on
                // adversarial input — the corpus differential suite
                // asserts exactly that.
                for (pos, &slot) in pending.iter().enumerate() {
                    let shard = assign(plan, wave_idx, pos);
                    stats.assigned[shard] += 1;
                    queues[shard].lock().expect("queue lock").push_back(slot);
                }
                let outs: Vec<WorkerOut> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..shards)
                        .map(|w| {
                            let queues = &queues;
                            let jobs = &jobs;
                            let v = *self;
                            s.spawn(move || {
                                let mut out = WorkerOut {
                                    results: Vec::new(),
                                    busy: 0,
                                    processed: 0,
                                    steals: 0,
                                };
                                loop {
                                    // Own deque first (front), then
                                    // steal from the back of the next
                                    // non-empty neighbour. Each pop is
                                    // bound to a `let` so its lock
                                    // guard drops before the next
                                    // queue is touched — holding one
                                    // queue while probing another
                                    // would deadlock two stealers.
                                    let own = queues[w].lock().expect("queue lock").pop_front();
                                    let mut found = own.map(|i| (i, false));
                                    if found.is_none() {
                                        for d in 1..shards {
                                            let q = (w + d) % shards;
                                            let stolen =
                                                queues[q].lock().expect("queue lock").pop_back();
                                            if let Some(i) = stolen {
                                                found = Some((i, true));
                                                break;
                                            }
                                        }
                                    }
                                    let Some((slot, stolen)) = found else { break };
                                    let job = jobs[slot]
                                        .lock()
                                        .expect("job lock")
                                        .take()
                                        .expect("job claimed once");
                                    let t0 = Instant::now();
                                    let res = process_job(&v, job);
                                    out.busy += t0.elapsed().as_nanos() as u64;
                                    out.processed += 1;
                                    if stolen {
                                        out.steals += 1;
                                    }
                                    out.results.push((slot, res));
                                }
                                out
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
                });
                let mut wave_max = 0u64;
                for (w, out) in outs.into_iter().enumerate() {
                    wave_max = wave_max.max(out.busy);
                    stats.busy_ns[w] += out.busy;
                    stats.busy_total_ns += out.busy;
                    stats.processed[w] += out.processed;
                    stats.steals += out.steals;
                    for (slot, res) in out.results {
                        outputs[slot] = Some(res);
                    }
                }
                stats.critical_path_ns += wave_max;
            }

            // -- Stage 3: canonical-order memoization and frontier
            // extension; fragments are stashed for the final merge. --
            for (slot, out) in outputs.into_iter().enumerate() {
                // Internal invariant: stage 1 resolved the slot or put
                // it in `pending`, and stage 2 drained `pending`.
                let out = out.expect("every slot resolved");
                let key_path = std::mem::take(&mut keys[slot]);
                if let (Some(st), Some(memo)) = (state.as_deref_mut(), memos[slot].take()) {
                    memoize(st, memo, &out, config);
                }
                let n_children = out.children.len();
                for (r, child) in out.children.into_iter().enumerate() {
                    let mut ck = key_path.clone();
                    ck.push((n_children - 1 - r) as u32);
                    frontier.push((ck, child));
                }
                fragments.push((key_path, out.frag));
            }
            wave_idx += 1;
        }

        // -- Canonical merge: ascending DFS-key order is exactly the
        // sequential walk's processing order. --
        fragments.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, frag) in fragments {
            append(&mut run, frag);
        }
        self.finish(&mut run);

        if let Some(state) = state {
            let prev = state.last_vrps.take().unwrap_or_default();
            let delta = VrpDelta::between(&prev, &run.vrps);
            inc_stats.announced = delta.announce.len() as u64;
            inc_stats.withdrawn = delta.withdraw.len() as u64;
            state.last_vrps = Some(run.vrps.clone());
            state.last_delta = delta;
            state.stats = inc_stats;
        }
        (run, stats)
    }

    /// Stage-1 decision for one frontier item: resolve it on the
    /// coordinator (depth guard, cache replay) or load its directory
    /// and package a worker job. Mirrors `step` from the incremental
    /// walk, minus the processing itself.
    fn prepare(
        &self,
        source: &mut dyn ObjectSource,
        item: WorkItem,
        state: Option<&mut ValidationState>,
        inc: &mut RevalidationStats,
    ) -> (Prepared, Option<MemoMeta>) {
        let config = self.config();
        if item.depth >= config.max_depth {
            if state.is_some() {
                inc.subtrees_rewalked += 1;
            }
            let mut frag = ValidationRun::default();
            frag.cas.push(Validator::validated_ca(&item));
            frag.diagnostics.push(Diagnostic {
                ca: item.cert.data().subject.clone(),
                dir: item.cert.data().sia.to_string(),
                issue: Issue::DepthExceeded,
            });
            frag.rejected_cas.push(RejectedCa {
                ca: item.cert.data().subject.clone(),
                dir: item.cert.data().sia.to_string(),
                resources: item.effective.clone(),
            });
            return (
                Prepared::Done(Box::new(ItemOutput { frag, children: Vec::new(), obs: None })),
                None,
            );
        }
        let dir = item.cert.data().sia.clone();
        let Some(state) = state else {
            let outcome = source.load_dir(&dir);
            return (Prepared::Job(Box::new(PendingJob { item, outcome, with_obs: false })), None);
        };

        let key = item.cert.data().subject_key.id();
        let cert_digest = item.digest.unwrap_or_else(|| sha256(&item.cert.to_bytes()));
        let now = config.now.0;
        let usable = state.entries.get(&key).is_some_and(|e| {
            e.cert_digest == cert_digest
                && e.effective == item.effective
                && e.depth == item.depth
                && e.incomplete == config.incomplete
                && e.overclaim == config.overclaim
                && e.max_depth == config.max_depth
                && e.window.0 <= now
                && now < e.window.1
                && e.child_keys.is_disjoint(&item.ancestors)
        });

        if usable && state.mode == RevalidationMode::Probe {
            if let Some(probe) = source.probe_dir(&dir) {
                inc.probes += 1;
                // Internal invariant: `usable` came from this entry.
                let entry = state.entries.get(&key).expect("usable entry present");
                if probe.listed && probe.content_digest() == Some(entry.dir_digest) {
                    inc.probe_hits += 1;
                    inc.subtrees_reused += 1;
                    return (
                        Prepared::Done(Box::new(replay_to_fragment(
                            entry,
                            Freshness::Fresh,
                            &item,
                        ))),
                        None,
                    );
                }
            }
        }

        let outcome = source.load_dir(&dir);
        let dir_digest = outcome.content_digest();
        if usable {
            // Internal invariant: `usable` came from this entry.
            let entry = state.entries.get(&key).expect("usable entry present");
            if dir_digest == Some(entry.dir_digest) {
                inc.subtrees_reused += 1;
                return (
                    Prepared::Done(Box::new(replay_to_fragment(entry, outcome.freshness, &item))),
                    None,
                );
            }
        }

        inc.subtrees_rewalked += 1;
        let memo = MemoMeta {
            key,
            cert_digest,
            dir: dir.to_string(),
            dir_digest,
            depth: item.depth,
            effective: item.effective.clone(),
        };
        (Prepared::Job(Box::new(PendingJob { item, outcome, with_obs: true })), Some(memo))
    }
}

/// Replays a memoized subtree into a fresh fragment (the sharded
/// analogue of the incremental walk's `replay`).
fn replay_to_fragment(entry: &CacheEntry, freshness: Freshness, item: &WorkItem) -> ItemOutput {
    let mut frag = ValidationRun::default();
    let mut children = Vec::new();
    Validator::replay(entry, freshness, item, &mut frag, &mut children);
    ItemOutput { frag, children, obs: None }
}

/// Inserts (or invalidates) the cache entry for a freshly rewalked
/// publication point, exactly as the sequential incremental walk's
/// mark-slice memoization does.
fn memoize(
    state: &mut ValidationState,
    memo: MemoMeta,
    out: &ItemOutput,
    config: ValidationConfig,
) {
    // Internal invariant: only `Prepared::Job` slots carry a MemoMeta,
    // and `process_job` always attaches observations to those.
    let obs = out.obs.as_ref().expect("job slots carry observations");
    // Unlisted directories have no content digest to key on, and walks
    // that hit a certificate loop depend on the chain's ancestry:
    // neither is memoized.
    let Some(dir_digest) = memo.dir_digest else {
        state.entries.remove(&memo.key);
        return;
    };
    if obs.loop_seen {
        state.entries.remove(&memo.key);
        return;
    }
    let entry = CacheEntry {
        cert_digest: memo.cert_digest,
        effective: memo.effective,
        depth: memo.depth,
        incomplete: config.incomplete,
        overclaim: config.overclaim,
        max_depth: config.max_depth,
        dir: memo.dir,
        dir_digest,
        window: obs.window(),
        child_keys: obs.child_keys.clone(),
        ca: out.frag.cas[0].clone(),
        diagnostics: out.frag.diagnostics.clone(),
        accepted_roas: out.frag.accepted_roas.clone(),
        vrps: out.frag.vrps.clone(),
        vrp_records: out.frag.vrp_records.clone(),
        revocations: out.frag.revocations.clone(),
        rejected_cas: out.frag.rejected_cas.clone(),
        children: out
            .children
            .iter()
            .map(|w| {
                let digest = w.digest.unwrap_or_else(|| sha256(&w.cert.to_bytes()));
                (w.cert.clone(), w.effective.clone(), digest)
            })
            .collect(),
    };
    state.entries.insert(memo.key, entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DirectSource;
    use ipres::{Asn, Prefix, ResourceSet};
    use netsim::Network;
    use rpki_ca::CertAuthority;
    use rpki_objects::{Moment, RepoUri, RoaPrefix, Span};
    use rpki_repo::RepoRegistry;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    struct Rig {
        repos: RepoRegistry,
        tal: TrustAnchorLocator,
    }

    /// A TA with `n` child CAs, each publishing one ROA at its own
    /// publication point.
    fn rig(n: usize) -> Rig {
        let mut net = Network::new(1);
        let mut repos = RepoRegistry::new();
        repos.create(&mut net, "h");
        let ta_dir = RepoUri::new("h", &["ta"]);
        let root_dir = RepoUri::new("h", &["repo", "root"]);
        let mut root = CertAuthority::new("root", "shard-root", root_dir.clone());
        root.certify_self(ResourceSet::from_prefix_strs("10.0.0.0/8"), Moment(0), Span::days(30));
        let mut children = Vec::new();
        for i in 0..n {
            let dir = RepoUri::new("h", &["repo", &format!("c{i}")]);
            let mut ca = CertAuthority::new(&format!("c{i}"), &format!("shard-c{i}"), dir.clone());
            let res = ResourceSet::from_prefix_strs(&format!("10.{i}.0.0/16"));
            let rc =
                root.issue_cert(&format!("c{i}"), ca.public_key(), res, dir, Moment(0)).unwrap();
            ca.install_cert(rc);
            ca.issue_roa(
                Asn(64_500 + i as u32),
                vec![RoaPrefix::exact(p(&format!("10.{i}.0.0/16")))],
                Moment(0),
            )
            .unwrap();
            children.push(ca);
        }
        let tal = TrustAnchorLocator::new(ta_dir.join("root.cer"), root.public_key());
        {
            use rpki_objects::RpkiObject;
            let cert = root.cert().unwrap().clone();
            let root_snap = root.publication_snapshot(Moment(1));
            let snaps: Vec<_> = children
                .iter_mut()
                .map(|ca| (ca.sia().clone(), ca.publication_snapshot(Moment(1))))
                .collect();
            let repo = repos.by_host_mut("h").unwrap();
            repo.publish_raw(&ta_dir, "root.cer", RpkiObject::Cert(cert).to_bytes());
            repo.publish_snapshot(root.sia(), &root_snap);
            for (sia, snap) in &snaps {
                repo.publish_snapshot(sia, snap);
            }
        }
        Rig { repos, tal }
    }

    #[test]
    fn sharded_matches_sequential_for_every_shard_count() {
        let rig = rig(9);
        let v = Validator::new(ValidationConfig::at(Moment(2)));
        let sequential = v.run(&mut DirectSource::new(&rig.repos), std::slice::from_ref(&rig.tal));
        assert_eq!(sequential.vrps.len(), 9);
        for shards in [1, 2, 3, 8, 16] {
            let (run, stats) = v.run_sharded(
                &mut DirectSource::new(&rig.repos),
                std::slice::from_ref(&rig.tal),
                ShardPlan::new(shards),
            );
            assert_eq!(run, sequential, "{shards}-shard walk diverged");
            assert_eq!(stats.shards, shards);
            assert_eq!(stats.waves, 2);
            assert_eq!(stats.items, 10);
            assert_eq!(stats.processed.iter().sum::<u64>(), 10);
        }
    }

    #[test]
    fn assignment_is_seed_deterministic() {
        let rig = rig(6);
        let v = Validator::new(ValidationConfig::at(Moment(2)));
        let plan = ShardPlan::seeded(4, 99);
        let (_, a) =
            v.run_sharded(&mut DirectSource::new(&rig.repos), std::slice::from_ref(&rig.tal), plan);
        let (_, b) =
            v.run_sharded(&mut DirectSource::new(&rig.repos), std::slice::from_ref(&rig.tal), plan);
        assert_eq!(a.assigned, b.assigned);
        assert_eq!(a.assigned.iter().sum::<u64>(), a.items);
        // A different seed permutes the assignment but not the output.
        let (run_a, _) =
            v.run_sharded(&mut DirectSource::new(&rig.repos), std::slice::from_ref(&rig.tal), plan);
        let (run_b, _) = v.run_sharded(
            &mut DirectSource::new(&rig.repos),
            std::slice::from_ref(&rig.tal),
            ShardPlan::seeded(4, 100),
        );
        assert_eq!(run_a, run_b);
    }

    #[test]
    fn sharded_incremental_reuses_and_matches() {
        let rig = rig(5);
        let v = Validator::new(ValidationConfig::at(Moment(2)));
        let sequential = v.run(&mut DirectSource::new(&rig.repos), std::slice::from_ref(&rig.tal));
        let mut state = ValidationState::full();
        let plan = ShardPlan::new(4);
        let (cold, _) = v.run_sharded_incremental(
            &mut DirectSource::new(&rig.repos),
            std::slice::from_ref(&rig.tal),
            plan,
            &mut state,
        );
        assert_eq!(cold, sequential);
        assert_eq!(state.stats().subtrees_rewalked, 6);
        assert_eq!(state.stats().announced, 5);
        let (warm, _) = v.run_sharded_incremental(
            &mut DirectSource::new(&rig.repos),
            std::slice::from_ref(&rig.tal),
            plan,
            &mut state,
        );
        assert_eq!(warm, sequential);
        assert_eq!(state.stats().subtrees_reused, 6);
        assert_eq!(state.stats().subtrees_rewalked, 0);
        assert!(state.last_delta().is_empty());
        // And the cache interoperates with the sequential incremental
        // walk: a sequential pass over the same state reuses it all.
        let seq_warm = v.run_incremental(
            &mut DirectSource::new(&rig.repos),
            std::slice::from_ref(&rig.tal),
            &mut state,
        );
        assert_eq!(seq_warm, sequential);
        assert_eq!(state.stats().subtrees_reused, 6);
    }

    #[test]
    fn probe_mode_probes_on_coordinator() {
        let rig = rig(4);
        let v = Validator::new(ValidationConfig::at(Moment(2)));
        let mut state = ValidationState::probe();
        let plan = ShardPlan::new(2);
        let (cold, _) = v.run_sharded_incremental(
            &mut DirectSource::new(&rig.repos),
            std::slice::from_ref(&rig.tal),
            plan,
            &mut state,
        );
        let (warm, _) = v.run_sharded_incremental(
            &mut DirectSource::new(&rig.repos),
            std::slice::from_ref(&rig.tal),
            plan,
            &mut state,
        );
        assert_eq!(warm, cold);
        assert_eq!(state.stats().probes, 5);
        assert_eq!(state.stats().probe_hits, 5);
    }

    #[test]
    fn model_speedup_sane() {
        let stats = ShardStats {
            shards: 4,
            busy_total_ns: 4_000,
            critical_path_ns: 1_000,
            ..ShardStats::default()
        };
        assert!((stats.model_speedup() - 4.0).abs() < 1e-9);
        assert_eq!(ShardStats::default().model_speedup(), 1.0);
    }
}
