//! The RPKI-to-Router protocol (RFC 6810-shaped).
//!
//! Validated VRPs are useless until they reach routers; production
//! deployments run the RTR protocol between the relying party's cache
//! and each router. The protocol matters to the paper's story for one
//! reason: it adds *another* stage at which the set of VRPs a router
//! acts on can lag or diverge from repository state — a whacked ROA
//! takes effect at the router only after the next serial, and a router
//! that loses too many updates falls back to a full cache reset.
//!
//! Implemented faithfully at the semantic level:
//!
//! - a [`RtrServer`] owns the session id, a monotonically increasing
//!   **serial**, the current VRP set, and a bounded history of deltas;
//! - a [`RtrClient`] (the router side) issues `ResetQuery` when it has
//!   nothing and `SerialQuery` thereafter, applies announce/withdraw
//!   PDUs, and treats `CacheReset` / session-id changes as a signal to
//!   start over;
//! - PDUs use the workspace's canonical codec, so they run over
//!   `netsim` and are subject to the same fault model as everything
//!   else.

use std::collections::{BTreeSet, VecDeque};

use rpki_objects::{Decode, DecodeError, Encode, Reader};

use crate::incremental::VrpDelta;
use crate::vrp::{Vrp, VrpCache};

/// RFC 1982 serial-number comparison: is `a` newer than `b`?
///
/// RTR serials are 32-bit and wrap (RFC 6810 §5.3 defers to RFC 1982),
/// so plain `u32` ordering breaks at the wrap boundary: serial `0` is
/// *newer* than serial `u32::MAX`. Two serials are comparable when
/// their distance is under `2^31`; the half-universe ambiguity never
/// arises here because the delta history is far shallower than `2^31`.
pub fn serial_newer(a: u32, b: u32) -> bool {
    a != b && a.wrapping_sub(b) < (1 << 31)
}

/// How many serial increments lead from `from` to `to`, wrapping.
/// Meaningful when `to` is not older than `from` (RFC 1982 terms).
pub fn serial_distance(from: u32, to: u32) -> u32 {
    to.wrapping_sub(from)
}

/// One unit of new data for [`RtrServer::publish`]: either a complete
/// VRP snapshot (the server diffs it against its current set) or a
/// pre-computed [`VrpDelta`] from an incremental validation run
/// (applied in O(delta) without touching the rest of the set).
#[derive(Debug, Clone)]
pub enum VrpUpdate<'a> {
    /// A full validated VRP set, e.g. [`ValidationRun::vrps`]
    /// (duplicates collapse).
    ///
    /// [`ValidationRun::vrps`]: crate::validation::ValidationRun::vrps
    Snapshot(BTreeSet<Vrp>),
    /// An announce/withdraw delta against the previous run, e.g.
    /// [`ValidationState::last_delta`].
    ///
    /// [`ValidationState::last_delta`]: crate::incremental::ValidationState::last_delta
    Delta(&'a VrpDelta),
}

impl VrpUpdate<'_> {
    /// A snapshot update from any VRP iterator.
    pub fn snapshot<I: IntoIterator<Item = Vrp>>(vrps: I) -> Self {
        VrpUpdate::Snapshot(vrps.into_iter().collect())
    }
}

impl<'a> From<&'a VrpDelta> for VrpUpdate<'a> {
    fn from(delta: &'a VrpDelta) -> Self {
        VrpUpdate::Delta(delta)
    }
}

/// One VRP change: announced (`true`) or withdrawn (`false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delta {
    /// The payload.
    pub vrp: Vrp,
    /// `true` = announce, `false` = withdraw.
    pub announce: bool,
}

/// RTR protocol data units (the RFC 6810 set, minus transport-security
/// PDUs that have no analogue in the simulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtrPdu {
    /// Server → client: "I have new data" (sent after each update).
    SerialNotify {
        /// Current session.
        session: u16,
        /// The server's new serial.
        serial: u32,
    },
    /// Client → server: "send me deltas after `serial`".
    SerialQuery {
        /// The client's session (must match the server's).
        session: u16,
        /// The last serial the client applied.
        serial: u32,
    },
    /// Client → server: "send me everything".
    ResetQuery,
    /// Server → client: header opening a response.
    CacheResponse {
        /// The server's session.
        session: u16,
    },
    /// Server → client: one VRP change.
    Prefix(Delta),
    /// Server → client: response complete; client is now at `serial`.
    EndOfData {
        /// The session.
        session: u16,
        /// The serial the client has now reached.
        serial: u32,
    },
    /// Server → client: "I cannot serve deltas from your serial; issue
    /// a ResetQuery."
    CacheReset,
    /// Either direction: protocol error (the simulator treats these as
    /// fatal to the session).
    ErrorReport {
        /// Numeric error code (RFC 6810 §10 style; only a few used).
        code: u16,
    },
}

const PDU_SERIAL_NOTIFY: u8 = 0;
const PDU_SERIAL_QUERY: u8 = 1;
const PDU_RESET_QUERY: u8 = 2;
const PDU_CACHE_RESPONSE: u8 = 3;
const PDU_PREFIX: u8 = 4;
const PDU_END_OF_DATA: u8 = 7;
const PDU_CACHE_RESET: u8 = 8;
const PDU_ERROR: u8 = 10;

impl Encode for RtrPdu {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RtrPdu::SerialNotify { session, serial } => {
                out.push(PDU_SERIAL_NOTIFY);
                session.encode(out);
                serial.encode(out);
            }
            RtrPdu::SerialQuery { session, serial } => {
                out.push(PDU_SERIAL_QUERY);
                session.encode(out);
                serial.encode(out);
            }
            RtrPdu::ResetQuery => out.push(PDU_RESET_QUERY),
            RtrPdu::CacheResponse { session } => {
                out.push(PDU_CACHE_RESPONSE);
                session.encode(out);
            }
            RtrPdu::Prefix(delta) => {
                out.push(PDU_PREFIX);
                out.push(delta.announce as u8);
                delta.vrp.prefix.encode(out);
                out.push(delta.vrp.max_len);
                delta.vrp.asn.encode(out);
            }
            RtrPdu::EndOfData { session, serial } => {
                out.push(PDU_END_OF_DATA);
                session.encode(out);
                serial.encode(out);
            }
            RtrPdu::CacheReset => out.push(PDU_CACHE_RESET),
            RtrPdu::ErrorReport { code } => {
                out.push(PDU_ERROR);
                code.encode(out);
            }
        }
    }
}

impl Decode for RtrPdu {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            PDU_SERIAL_NOTIFY => Ok(RtrPdu::SerialNotify { session: r.u16()?, serial: r.u32()? }),
            PDU_SERIAL_QUERY => Ok(RtrPdu::SerialQuery { session: r.u16()?, serial: r.u32()? }),
            PDU_RESET_QUERY => Ok(RtrPdu::ResetQuery),
            PDU_CACHE_RESPONSE => Ok(RtrPdu::CacheResponse { session: r.u16()? }),
            PDU_PREFIX => {
                let announce = match r.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(DecodeError::BadTag(t)),
                };
                let prefix = ipres::Prefix::decode(r)?;
                let max_len = r.u8()?;
                let asn = ipres::Asn::decode(r)?;
                if max_len < prefix.len() || max_len > prefix.family().bits() {
                    return Err(DecodeError::Invalid("RTR prefix maxLength out of range"));
                }
                Ok(RtrPdu::Prefix(Delta { vrp: Vrp::new(prefix, max_len, asn), announce }))
            }
            PDU_END_OF_DATA => Ok(RtrPdu::EndOfData { session: r.u16()?, serial: r.u32()? }),
            PDU_CACHE_RESET => Ok(RtrPdu::CacheReset),
            PDU_ERROR => Ok(RtrPdu::ErrorReport { code: r.u16()? }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// The cache side of the protocol.
#[derive(Debug)]
pub struct RtrServer {
    session: u16,
    serial: u32,
    current: BTreeSet<Vrp>,
    /// `(serial reached, deltas that got there)`, oldest first.
    history: VecDeque<(u32, Vec<Delta>)>,
    max_history: usize,
}

impl RtrServer {
    /// A server with the given session id and delta-history depth.
    pub fn new(session: u16, max_history: usize) -> Self {
        RtrServer::new_at(session, max_history, 0)
    }

    /// A server whose serial counter starts at `serial` — for resuming
    /// a persisted session, and for exercising the RFC 1982 wrap
    /// boundary (start near `u32::MAX` and publish across it).
    pub fn new_at(session: u16, max_history: usize, serial: u32) -> Self {
        RtrServer {
            session,
            serial,
            current: BTreeSet::new(),
            history: VecDeque::new(),
            max_history,
        }
    }

    /// The current serial.
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// The session id.
    pub fn session(&self) -> u16 {
        self.session
    }

    /// Publishes new data: the one entry point for feeding the server.
    ///
    /// A [`VrpUpdate::Snapshot`] is diffed against the current set (the
    /// post-validation path); a [`VrpUpdate::Delta`] is applied change
    /// by change in O(delta) (the incremental path), with no-ops
    /// against the current set (already-announced VRPs, withdrawals of
    /// absent VRPs) skipped. Either way the server bumps its serial
    /// (wrapping, per RFC 1982), records the effective changes in the
    /// bounded delta history, and returns the `SerialNotify` to
    /// broadcast — or `None` if nothing effectively changed.
    pub fn publish(&mut self, update: VrpUpdate<'_>) -> Option<RtrPdu> {
        let changes: Vec<Delta> = match update {
            VrpUpdate::Snapshot(new) => {
                let mut delta: Vec<Delta> = Vec::new();
                for &v in new.difference(&self.current) {
                    delta.push(Delta { vrp: v, announce: true });
                }
                for &v in self.current.difference(&new) {
                    delta.push(Delta { vrp: v, announce: false });
                }
                if !delta.is_empty() {
                    self.current = new;
                }
                delta
            }
            VrpUpdate::Delta(delta) => {
                let mut changes: Vec<Delta> = Vec::new();
                for &vrp in &delta.announce {
                    if self.current.insert(vrp) {
                        changes.push(Delta { vrp, announce: true });
                    }
                }
                for vrp in &delta.withdraw {
                    if self.current.remove(vrp) {
                        changes.push(Delta { vrp: *vrp, announce: false });
                    }
                }
                changes
            }
        };
        if changes.is_empty() {
            return None;
        }
        self.serial = self.serial.wrapping_add(1);
        self.history.push_back((self.serial, changes));
        while self.history.len() > self.max_history {
            self.history.pop_front();
        }
        Some(RtrPdu::SerialNotify { session: self.session, serial: self.serial })
    }

    /// Starts a new RTR session: new session id, serial restarted at 0,
    /// delta history cleared. The current VRP set is retained — only
    /// the *continuity story* is gone. Call this when the upstream data
    /// source loses its own continuity (an RRDP session reset, tracked
    /// by `RrdpClientState::epoch`): a connected router's next
    /// `SerialQuery` carries the old session id, gets `CacheReset`, and
    /// resynchronises from scratch instead of trusting a serial bump
    /// that no longer means "delta from what you have".
    pub fn reset_session(&mut self, session: u16) {
        self.session = session;
        self.serial = 0;
        self.history.clear();
    }

    /// The server's current VRP set, sorted.
    pub fn vrps(&self) -> Vec<Vrp> {
        self.current.iter().copied().collect()
    }

    /// Handles one client PDU, producing the response PDU sequence.
    pub fn handle(&self, pdu: &RtrPdu) -> Vec<RtrPdu> {
        match pdu {
            RtrPdu::ResetQuery => {
                let mut out = vec![RtrPdu::CacheResponse { session: self.session }];
                for &v in &self.current {
                    out.push(RtrPdu::Prefix(Delta { vrp: v, announce: true }));
                }
                out.push(RtrPdu::EndOfData { session: self.session, serial: self.serial });
                out
            }
            RtrPdu::SerialQuery { session, serial } => {
                if *session != self.session {
                    // Session mismatch: the client must start over.
                    return vec![RtrPdu::CacheReset];
                }
                if *serial == self.serial {
                    // Nothing new.
                    return vec![
                        RtrPdu::CacheResponse { session: self.session },
                        RtrPdu::EndOfData { session: self.session, serial: self.serial },
                    ];
                }
                if serial_newer(*serial, self.serial) {
                    // The client claims a future serial: its state is
                    // not one this session produced. Start over.
                    return vec![RtrPdu::CacheReset];
                }
                // Can we replay from the client's serial? We need every
                // delta newer than the client's serial, contiguously.
                // All comparisons are RFC 1982 (wrapping): the history
                // may straddle the u32 wrap boundary.
                let available: Vec<&(u32, Vec<Delta>)> =
                    self.history.iter().filter(|(s, _)| serial_newer(*s, *serial)).collect();
                let contiguous =
                    available.first().map(|(s, _)| *s == serial.wrapping_add(1)).unwrap_or(false)
                        && available.len() as u32 == serial_distance(*serial, self.serial);
                if !contiguous {
                    return vec![RtrPdu::CacheReset];
                }
                let mut out = vec![RtrPdu::CacheResponse { session: self.session }];
                for (_, deltas) in available {
                    for d in deltas {
                        out.push(RtrPdu::Prefix(*d));
                    }
                }
                out.push(RtrPdu::EndOfData { session: self.session, serial: self.serial });
                out
            }
            _ => vec![RtrPdu::ErrorReport { code: 3 /* invalid request */ }],
        }
    }
}

/// The router side of the protocol.
#[derive(Debug, Default)]
pub struct RtrClient {
    session: Option<u16>,
    serial: u32,
    vrps: BTreeSet<Vrp>,
    /// Deltas buffered between `CacheResponse` and `EndOfData` (applied
    /// atomically, per the RFC).
    pending: Option<Vec<Delta>>,
}

/// What the client wants to do next after processing PDUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientAction {
    /// Nothing; wait for the next notify/poll interval.
    Idle,
    /// Send this query to the server.
    Query,
    /// Session invalid: clear state and send `ResetQuery`.
    Reset,
}

impl RtrClient {
    /// A fresh client with no data.
    pub fn new() -> Self {
        RtrClient::default()
    }

    /// The serial this client has applied.
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// The established session id, if any.
    pub fn session(&self) -> Option<u16> {
        self.session
    }

    /// The router's current VRPs as a sorted set (cheap; building a
    /// queryable [`VrpCache`] via [`cache`](RtrClient::cache) is the
    /// expensive form).
    pub fn vrp_set(&self) -> &BTreeSet<Vrp> {
        &self.vrps
    }

    /// The PDU to send when polling the server.
    pub fn poll(&self) -> RtrPdu {
        match self.session {
            Some(session) => RtrPdu::SerialQuery { session, serial: self.serial },
            None => RtrPdu::ResetQuery,
        }
    }

    /// Processes one server PDU; returns what to do next.
    pub fn handle(&mut self, pdu: &RtrPdu) -> ClientAction {
        match pdu {
            RtrPdu::SerialNotify { session, serial } => {
                if Some(*session) != self.session || serial_newer(*serial, self.serial) {
                    ClientAction::Query
                } else {
                    ClientAction::Idle
                }
            }
            RtrPdu::CacheResponse { session } => {
                match self.session {
                    Some(s) if s != *session => {
                        // Session changed under us: restart.
                        self.session = None;
                        self.serial = 0;
                        self.vrps.clear();
                        self.pending = None;
                        return ClientAction::Reset;
                    }
                    _ => {}
                }
                if self.session.is_none() {
                    // Response to our ResetQuery establishes the
                    // session; the full set replaces everything.
                    self.session = Some(*session);
                    self.vrps.clear();
                }
                self.pending = Some(Vec::new());
                ClientAction::Idle
            }
            RtrPdu::Prefix(delta) => {
                if let Some(pending) = self.pending.as_mut() {
                    pending.push(*delta);
                }
                ClientAction::Idle
            }
            RtrPdu::EndOfData { session, serial } => {
                if Some(*session) != self.session {
                    return ClientAction::Reset;
                }
                if let Some(pending) = self.pending.take() {
                    for d in pending {
                        if d.announce {
                            self.vrps.insert(d.vrp);
                        } else {
                            self.vrps.remove(&d.vrp);
                        }
                    }
                }
                self.serial = *serial;
                ClientAction::Idle
            }
            RtrPdu::CacheReset => {
                self.session = None;
                self.serial = 0;
                self.vrps.clear();
                self.pending = None;
                ClientAction::Reset
            }
            RtrPdu::ErrorReport { .. } => ClientAction::Reset,
            RtrPdu::SerialQuery { .. } | RtrPdu::ResetQuery => ClientAction::Idle,
        }
    }

    /// The router's current VRPs as a queryable cache.
    pub fn cache(&self) -> VrpCache {
        self.vrps.iter().copied().collect()
    }

    /// Number of VRPs the router holds.
    pub fn len(&self) -> usize {
        self.vrps.len()
    }

    /// Whether the router holds no VRPs.
    pub fn is_empty(&self) -> bool {
        self.vrps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipres::{Asn, Prefix};

    fn v(s: &str, max: u8, asn: u32) -> Vrp {
        Vrp::new(s.parse::<Prefix>().unwrap(), max, Asn(asn))
    }

    fn sample() -> Vec<Vrp> {
        vec![v("10.0.0.0/16", 24, 1), v("10.1.0.0/16", 16, 2), v("2001:db8::/32", 48, 3)]
    }

    /// The direct-call sync the deprecated `poll_cycle` helper used to
    /// provide: query, answer, apply, retrying on reset. Tests here
    /// exercise the state machines in isolation; the framed transport
    /// lives in `fabric`.
    fn sync(client: &mut RtrClient, server: &RtrServer) -> usize {
        let mut exchanged = 0;
        for _ in 0..3 {
            let query = client.poll();
            exchanged += 1;
            let mut reset = false;
            for pdu in server.handle(&query) {
                exchanged += 1;
                if client.handle(&pdu) == ClientAction::Reset {
                    reset = true;
                }
            }
            if !reset {
                break;
            }
        }
        exchanged
    }

    fn publish(server: &mut RtrServer, vrps: Vec<Vrp>) -> Option<RtrPdu> {
        server.publish(VrpUpdate::snapshot(vrps))
    }

    #[test]
    fn pdus_round_trip() {
        for pdu in [
            RtrPdu::SerialNotify { session: 7, serial: 42 },
            RtrPdu::SerialQuery { session: 7, serial: 41 },
            RtrPdu::ResetQuery,
            RtrPdu::CacheResponse { session: 7 },
            RtrPdu::Prefix(Delta { vrp: v("10.0.0.0/16", 24, 1), announce: true }),
            RtrPdu::Prefix(Delta { vrp: v("2001:db8::/32", 48, 3), announce: false }),
            RtrPdu::EndOfData { session: 7, serial: 42 },
            RtrPdu::CacheReset,
            RtrPdu::ErrorReport { code: 3 },
        ] {
            assert_eq!(RtrPdu::from_bytes(&pdu.to_bytes()).unwrap(), pdu);
        }
    }

    #[test]
    fn corrupted_pdu_rejected() {
        let pdu = RtrPdu::Prefix(Delta { vrp: v("10.0.0.0/16", 24, 1), announce: true });
        let mut bytes = pdu.to_bytes();
        bytes[1] = 9; // bad announce flag
        assert!(RtrPdu::from_bytes(&bytes).is_err());
    }

    #[test]
    fn full_sync_from_reset() {
        let mut server = RtrServer::new(1, 8);
        assert!(publish(&mut server, sample()).is_some());
        let mut client = RtrClient::new();
        let n = sync(&mut client, &server);
        assert!(n >= 5); // query + response + 3 prefixes + EOD
        assert_eq!(client.len(), 3);
        assert_eq!(client.serial(), server.serial());
        assert_eq!(client.cache().vrps(), server.current.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn incremental_sync_sends_only_deltas() {
        let mut server = RtrServer::new(1, 8);
        publish(&mut server, sample());
        let mut client = RtrClient::new();
        sync(&mut client, &server);

        // One VRP replaced by another.
        let mut vrps = sample();
        vrps.remove(0);
        vrps.push(v("10.9.0.0/16", 16, 9));
        let notify = publish(&mut server, vrps.clone()).expect("changed");
        assert_eq!(notify, RtrPdu::SerialNotify { session: 1, serial: 2 });

        let query = client.poll();
        let response = server.handle(&query);
        // CacheResponse + 2 deltas + EndOfData.
        assert_eq!(response.len(), 4);
        let prefix_count = response.iter().filter(|p| matches!(p, RtrPdu::Prefix(_))).count();
        assert_eq!(prefix_count, 2);
        for pdu in &response {
            client.handle(pdu);
        }
        assert_eq!(client.serial(), 2);
        let mut want = vrps;
        want.sort_unstable();
        assert_eq!(client.cache().vrps(), want);
    }

    #[test]
    fn apply_delta_matches_snapshot_update() {
        use crate::incremental::VrpDelta;

        // Two servers driven by the same changes: one with full
        // snapshots, one with deltas. They must agree serial by serial.
        let mut by_snapshot = RtrServer::new(1, 8);
        let mut by_delta = RtrServer::new(1, 8);
        let mut prev: Vec<Vrp> = Vec::new();
        let updates = [
            sample(),
            {
                let mut s = sample();
                s.remove(0);
                s.push(v("10.9.0.0/16", 16, 9));
                s
            },
            {
                let mut s = sample();
                s.remove(0);
                s
            },
        ];
        for update in updates {
            let mut sorted = update.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let delta = VrpDelta::between(&prev, &sorted);
            let a = by_snapshot.publish(VrpUpdate::snapshot(update));
            let b = by_delta.publish(VrpUpdate::Delta(&delta));
            assert_eq!(a, b);
            assert_eq!(by_snapshot.vrps(), by_delta.vrps());
            assert_eq!(by_snapshot.serial(), by_delta.serial());
            prev = sorted;
        }
        // An empty delta must not bump the serial.
        assert!(by_delta.publish(VrpUpdate::Delta(&VrpDelta::default())).is_none());
        // A delta-fed server serves clients exactly like a snapshot one.
        let mut client = RtrClient::new();
        sync(&mut client, &by_delta);
        assert_eq!(client.cache().vrps(), by_delta.vrps());
    }

    #[test]
    fn no_change_no_serial_bump() {
        let mut server = RtrServer::new(1, 8);
        publish(&mut server, sample());
        assert!(publish(&mut server, sample()).is_none());
        assert_eq!(server.serial(), 1);
    }

    #[test]
    fn history_eviction_forces_cache_reset() {
        let mut server = RtrServer::new(1, 2); // only 2 deltas retained
        publish(&mut server, sample());
        let mut client = RtrClient::new();
        sync(&mut client, &server);
        assert_eq!(client.serial(), 1);

        // Four more updates: the client's serial falls off the history.
        for i in 0..4u32 {
            let mut vrps = sample();
            vrps.push(v("10.9.0.0/16", 16, 100 + i));
            publish(&mut server, vrps);
            // (each update replaces the previous extra VRP)
        }
        let response = server.handle(&client.poll());
        assert_eq!(response, vec![RtrPdu::CacheReset]);
        // The poll cycle recovers via reset.
        sync(&mut client, &server);
        assert_eq!(client.serial(), server.serial());
        assert_eq!(client.cache().vrps(), server.current.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn reset_session_forces_cache_reset_not_a_serial_bump() {
        let mut server = RtrServer::new(1, 8);
        publish(&mut server, sample());
        let mut client = RtrClient::new();
        sync(&mut client, &server);
        assert_eq!(client.serial(), server.serial());
        // Upstream continuity lost (e.g. an RRDP session reset): the
        // server starts a new RTR session over the same VRP set.
        server.reset_session(2);
        assert_eq!(server.session(), 2);
        assert_eq!(server.serial(), 0);
        // The client's stale-session query must be answered CacheReset,
        // never a quiet delta.
        let response = server.handle(&client.poll());
        assert_eq!(response, vec![RtrPdu::CacheReset]);
        // And the poll cycle reconverges from scratch.
        sync(&mut client, &server);
        assert_eq!(client.serial(), 0);
        assert_eq!(client.cache().vrps(), server.vrps());
        assert_eq!(client.len(), 3);
    }

    #[test]
    fn session_change_resets_client() {
        let mut server = RtrServer::new(1, 8);
        publish(&mut server, sample());
        let mut client = RtrClient::new();
        sync(&mut client, &server);

        // The cache restarts with a new session id (e.g. RP rebooted).
        let mut server2 = RtrServer::new(2, 8);
        publish(&mut server2, vec![v("10.0.0.0/16", 24, 1)]);
        sync(&mut client, &server2);
        assert_eq!(client.serial(), server2.serial());
        assert_eq!(client.len(), 1);
    }

    #[test]
    fn deltas_apply_atomically_at_end_of_data() {
        let mut server = RtrServer::new(1, 8);
        publish(&mut server, sample());
        let mut client = RtrClient::new();
        // Feed the response but stop before EndOfData: nothing applied.
        let response = server.handle(&client.poll());
        for pdu in &response[..response.len() - 1] {
            client.handle(pdu);
        }
        assert_eq!(client.len(), 0, "deltas must not apply before EndOfData");
        client.handle(response.last().unwrap());
        assert_eq!(client.len(), 3);
    }

    #[test]
    fn serial_notify_prompts_query_only_when_behind() {
        let mut server = RtrServer::new(1, 8);
        publish(&mut server, sample());
        let mut client = RtrClient::new();
        sync(&mut client, &server);
        // In-sync notify: idle.
        let notify = RtrPdu::SerialNotify { session: 1, serial: server.serial() };
        assert_eq!(client.handle(&notify), ClientAction::Idle);
        // Ahead notify: query.
        let notify = RtrPdu::SerialNotify { session: 1, serial: server.serial() + 1 };
        assert_eq!(client.handle(&notify), ClientAction::Query);
    }

    /// End to end over the simulated network with a dropped frame: the
    /// router simply retries its poll on the next cycle.
    #[test]
    fn rtr_over_netsim_with_loss() {
        use netsim::{Network, Occurrence};
        use rpki_objects::{Decode as _, Encode as _};

        let mut net = Network::new(4);
        let cache_node = net.add_node("rp-cache");
        let router_node = net.add_node("router");

        let mut server = RtrServer::new(9, 8);
        publish(&mut server, sample());
        let mut client = RtrClient::new();

        // Drop the first server→router frame (the CacheResponse).
        net.faults.drop_nth(cache_node, router_node, 1);

        for _attempt in 0..3 {
            net.send(router_node, cache_node, client.poll().to_bytes());
            while let Some(occ) = net.step() {
                let Occurrence::Delivered(d) = occ else { continue };
                if d.to == cache_node {
                    if let Ok(pdu) = RtrPdu::from_bytes(&d.payload) {
                        for resp in server.handle(&pdu) {
                            net.send(cache_node, router_node, resp.to_bytes());
                        }
                    }
                } else if let Ok(pdu) = RtrPdu::from_bytes(&d.payload) {
                    client.handle(&pdu);
                }
            }
            if client.serial() == server.serial() && !client.is_empty() {
                break;
            }
        }
        assert_eq!(client.len(), 3);
        assert_eq!(client.serial(), server.serial());
    }

    #[test]
    fn rfc1982_serial_arithmetic() {
        // RFC 1982 §3.2: a > b iff (a - b) mod 2^32 < 2^31, a != b.
        assert!(serial_newer(1, 0));
        assert!(!serial_newer(0, 1));
        assert!(!serial_newer(7, 7));
        // Across the wrap: 0 is newer than u32::MAX.
        assert!(serial_newer(0, u32::MAX));
        assert!(!serial_newer(u32::MAX, 0));
        assert!(serial_newer(5, u32::MAX - 5));
        assert_eq!(serial_distance(u32::MAX, 0), 1);
        assert_eq!(serial_distance(u32::MAX - 1, 2), 4);
        assert_eq!(serial_distance(3, 3), 0);
    }

    /// A server publishing across the u32 serial wrap keeps serving
    /// contiguous deltas: a client acked at `u32::MAX - 1` catches up to
    /// serial 1 without ever seeing a Cache Reset.
    #[test]
    fn serial_wrap_boundary_syncs_by_delta() {
        let mut server = RtrServer::new_at(1, 8, u32::MAX - 2);
        publish(&mut server, sample()); // serial -> u32::MAX - 1
        assert_eq!(server.serial(), u32::MAX - 1);
        let mut client = RtrClient::new();
        sync(&mut client, &server);
        assert_eq!(client.serial(), u32::MAX - 1);

        // Three publishes carry the serial across the wrap.
        let mut vrps = sample();
        for i in 0..3u32 {
            vrps.push(v("10.9.0.0/16", 16, 200 + i));
            let notify = publish(&mut server, vrps.clone()).expect("changed");
            let RtrPdu::SerialNotify { serial, .. } = notify else {
                panic!("expected SerialNotify")
            };
            assert!(serial_newer(serial, client.serial()));
            assert_eq!(client.handle(&notify), ClientAction::Query);
        }
        assert_eq!(server.serial(), 1); // MAX-1 -> MAX -> 0 -> 1

        // The catch-up must be a pure delta run, never a reset.
        let response = server.handle(&client.poll());
        assert!(!response.contains(&RtrPdu::CacheReset));
        let prefix_count = response.iter().filter(|p| matches!(p, RtrPdu::Prefix(_))).count();
        assert_eq!(prefix_count, 3, "one announce per publish, not a full snapshot");
        for pdu in &response {
            assert_ne!(client.handle(pdu), ClientAction::Reset);
        }
        assert_eq!(client.serial(), 1);
        assert_eq!(client.cache().vrps(), server.vrps());

        // A stale query from the far side of the wrap (fallen off the
        // history window) still degrades to Cache Reset, not garbage.
        let stale = RtrPdu::SerialQuery { session: 1, serial: u32::MAX - 7 };
        assert_eq!(server.handle(&stale), vec![RtrPdu::CacheReset]);
    }
}
