//! The relying party: from repositories to route validity.
//!
//! A relying party turns the distributed soup of signed objects into
//! routing decisions, in two stages the paper analyses separately:
//!
//! 1. **Chain validation** ([`validation`]) — walk top-down from trust
//!    anchors, enforcing signatures, validity windows, CRLs, manifests,
//!    and strict RFC 3779 resource containment, producing the set of
//!    *validated ROA payloads* (VRPs). RFC 6480's requirement that the
//!    relying party hold "a complete set of valid ROAs" is load-bearing:
//!    what this stage cannot fetch or verify simply is not in the set.
//! 2. **Route origin validation** ([`ov`]) — RFC 6811: classify each
//!    BGP route as valid / invalid / unknown against the VRP set, with
//!    the cover/match semantics whose side effects (5 and 6) the paper
//!    demonstrates.
//!
//! Object retrieval is abstracted by [`ObjectSource`] so the validator
//! runs identically over the faulty simulated network
//! ([`NetworkSource`]) or directly against at-rest repository state
//! ([`DirectSource`], for analyses that don't involve transport).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod incremental;
pub mod ov;
pub mod relay;
pub mod resilience;
pub mod rrdp;
pub mod rtr;
pub mod scheduler;
pub mod shard;
pub mod source;
pub mod validation;
pub mod vrp;

pub use fabric::{pump_until, FabricStats, RtrEndpoint, RtrFabric, RtrRouter};
pub use incremental::{RevalidationMode, RevalidationStats, ValidationState, VrpDelta};
pub use ov::{Route, RouteValidity};
pub use relay::{reference_merge, MergePolicy, Relay, SlurmFile, SlurmFilter};
pub use resilience::{FetchHealth, ResilienceConfig, ResilientState};
pub use rrdp::RrdpSource;
pub use rtr::{
    serial_distance, serial_newer, ClientAction, Delta, RtrClient, RtrPdu, RtrServer, VrpUpdate,
};
pub use scheduler::{RunStats, SchedulePlan, ScheduledSource, SchedulerState, SchedulerStats};
pub use shard::{ShardPlan, ShardStats};
pub use source::{DirectSource, NetworkSource, ObjectSource, ResilientSource};
pub use validation::{
    Diagnostic, IncompletePolicy, Issue, OverclaimPolicy, RejectedCa, UnsafeVrpPolicy,
    ValidationConfig, ValidationRun, Validator, VrpRecord,
};
pub use vrp::{Vrp, VrpCache};
