//! Property test for DESIGN.md invariant 5: whack-plan soundness on
//! randomly generated hierarchies.
//!
//! For any generated three-level world (TA → child CA → ROAs/sub-CAs)
//! and any target ROA:
//!
//! 1. executing the plan makes the target ROA's VRPs disappear;
//! 2. every other previously-valid route keeps its exact validity
//!    (reissues may move VRPs between publication points, but the VRP
//!    *content* set minus the target's is preserved);
//! 3. zero-collateral plans require zero suspicious reissues whenever
//!    the target owns space no sibling uses.

use ipres::{Asn, Prefix, ResourceSet};
use netsim::Network;
use proptest::prelude::*;
use rpki_attacks::{plan_whack, CaView};
use rpki_ca::CertAuthority;
use rpki_objects::{Encode, Moment, RepoUri, RoaPrefix, RpkiObject, Span, TrustAnchorLocator};
use rpki_repo::RepoRegistry;
use rpki_rp::{DirectSource, ValidationConfig, Validator, Vrp};

/// A randomly shaped child publication point: which /22s of the child's
/// /16 get ROAs, with which origins and maxlen allowances.
#[derive(Debug, Clone)]
struct ChildShape {
    /// (quarter index 0..16, origin 1..=6, extra maxlen 0..=2) per ROA.
    roas: Vec<(u8, u32, u8)>,
    /// Index of the ROA to whack.
    target: usize,
}

fn arb_shape() -> impl Strategy<Value = ChildShape> {
    proptest::collection::vec((0u8..16, 1u32..=6, 0u8..=2), 1..8).prop_flat_map(|mut roas| {
        // Deduplicate identical (slot, origin) pairs to avoid aliased
        // ROAs whose "content identity" collides.
        roas.sort();
        roas.dedup_by_key(|(slot, origin, _)| (*slot, *origin));
        let len = roas.len();
        (Just(roas), 0..len).prop_map(|(roas, target)| ChildShape { roas, target })
    })
}

struct World {
    repos: RepoRegistry,
    ta: CertAuthority,
    child: CertAuthority,
    tal: TrustAnchorLocator,
}

fn build(shape: &ChildShape, case: u64) -> World {
    let mut net = Network::new(0);
    let mut repos = RepoRegistry::new();
    repos.create(&mut net, "ta.example");
    repos.create(&mut net, "child.example");
    let ta_dir = RepoUri::new("ta.example", &["repo"]);
    let child_dir = RepoUri::new("child.example", &["repo"]);

    let mut ta = CertAuthority::new("TA", &format!("prop-ta-{case}"), ta_dir);
    ta.certify_self(ResourceSet::from_prefix_strs("10.0.0.0/8"), Moment(0), Span::days(3650));
    let mut child = CertAuthority::new("Child", &format!("prop-child-{case}"), child_dir);
    let rc = ta
        .issue_cert(
            "Child",
            child.public_key(),
            ResourceSet::from_prefix_strs("10.1.0.0/16"),
            child.sia().clone(),
            Moment(0),
        )
        .expect("inside TA space");
    child.install_cert(rc);

    for (slot, origin, extra) in &shape.roas {
        // quarter `slot` of 10.1.0.0/16 → a /20.
        let base = 0x0a01_0000u32 | ((*slot as u32) << 12);
        let prefix = Prefix::new(ipres::Addr::v4(base), 20);
        child
            .issue_roa(Asn(*origin), vec![RoaPrefix::up_to(prefix, 20 + extra)], Moment(0))
            .expect("inside child space");
    }

    let tal = TrustAnchorLocator::new(
        RepoUri::new("ta.example", &["repo-ta", "root.cer"]),
        ta.public_key(),
    );
    let mut world = World { repos, ta, child, tal };
    publish(&mut world, Moment(1));
    world
}

fn publish(w: &mut World, now: Moment) {
    let ta_cert = w.ta.cert().expect("certified").clone();
    let ta_pub_dir = RepoUri::new("ta.example", &["repo-ta"]);
    w.repos.by_host_mut("ta.example").expect("exists").publish_raw(
        &ta_pub_dir,
        "root.cer",
        RpkiObject::Cert(ta_cert).to_bytes(),
    );
    for host in ["ta.example", "child.example"] {
        let ca = if host == "ta.example" { &mut w.ta } else { &mut w.child };
        let sia = ca.sia().clone();
        let snap = ca.publication_snapshot(now);
        w.repos.by_host_mut(host).expect("exists").publish_snapshot(&sia, &snap);
    }
}

fn validate(w: &World, now: Moment) -> Vec<Vrp> {
    let mut source = DirectSource::new(&w.repos);
    Validator::new(ValidationConfig::at(now)).run(&mut source, std::slice::from_ref(&w.tal)).vrps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn whack_plans_are_sound(shape in arb_shape(), case in 0u64..1_000_000) {
        let mut w = build(&shape, case);
        let before = validate(&w, Moment(2));
        prop_assert_eq!(before.len(), shape.roas.len(), "world must validate fully");

        // Plan against the child from the TA (grandchild whack).
        let rc = w.ta.issued_cert_for(w.child.key_id()).expect("issued").clone();
        let view = CaView::from_repos(&rc, &w.repos);
        let (slot, origin, _) = shape.roas[shape.target];
        let target_roa = view
            .roas
            .iter()
            .find(|r| {
                r.asn() == Asn(origin)
                    && r.resources().ranges()[0].lo().value() as u32
                        == (0x0a01_0000u32 | ((slot as u32) << 12))
            })
            .expect("target published")
            .clone();
        let target_file = target_roa.file_name();
        let plan = plan_whack(std::slice::from_ref(&view), &target_file).expect("plannable");

        plan.execute(&mut w.ta, Moment(3)).expect("executable");
        publish(&mut w, Moment(3));
        let after = validate(&w, Moment(4));

        // 1. The target's VRPs are gone.
        let target_vrps: Vec<Vrp> = target_roa
            .data()
            .prefixes
            .iter()
            .map(|rp| Vrp::new(rp.prefix, rp.effective_max_len(), target_roa.asn()))
            .collect();
        for tv in &target_vrps {
            prop_assert!(!after.contains(tv), "target VRP {tv} survived; plan {plan:?}");
        }

        // 2. Every other VRP's content is preserved (possibly reissued
        // from the TA's publication point).
        for v in &before {
            if target_vrps.contains(v) {
                continue;
            }
            prop_assert!(
                after.contains(v),
                "collateral: VRP {} lost; plan {:?}",
                v,
                plan
            );
        }

        // 3. If the target's space overlaps no sibling ROA, the plan
        // must be reissue-free.
        let target_space = target_roa.resources();
        let sibling_overlap = view
            .roas
            .iter()
            .filter(|r| r.file_name() != target_file)
            .any(|r| r.resources().overlaps(&target_space));
        if !sibling_overlap {
            prop_assert_eq!(plan.reissued, 0, "needless reissues: {:?}", plan);
        }

        // 4. And the carve is always inside the target's space.
        prop_assert!(target_space.contains_set(&plan.carved));
    }
}
