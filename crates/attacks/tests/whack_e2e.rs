//! End-to-end whacking: build a hierarchy, plan from public state,
//! execute, republish, re-validate — and check exactly who died.
//!
//! These tests reproduce the mechanics of the paper's Section 3.1 and
//! Figure 3 against the real validator (DESIGN.md invariant 5).

use ipres::{Asn, Prefix, ResourceSet};
use netsim::Network;
use rpki_attacks::{damage_between, plan_whack, probes_for, CaView, WhackError, WhackStep};
use rpki_ca::CertAuthority;
use rpki_objects::{Encode, Moment, RepoUri, RoaPrefix, RpkiObject, Span, TrustAnchorLocator};
use rpki_repo::RepoRegistry;
use rpki_rp::{DirectSource, Route, RouteValidity, ValidationConfig, Validator};

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn rs(s: &str) -> ResourceSet {
    ResourceSet::from_prefix_strs(s)
}

/// The paper's model RPKI, reconstructed: ARIN → Sprint → {ETB,
/// Continental Broadband}, with Continental issuing five ROAs (the
/// Figure 3 situation) and Sprint issuing two of its own.
struct ModelWorld {
    net: Network,
    repos: RepoRegistry,
    arin: CertAuthority,
    sprint: CertAuthority,
    etb: CertAuthority,
    continental: CertAuthority,
    tal: TrustAnchorLocator,
}

impl ModelWorld {
    fn build() -> ModelWorld {
        let mut net = Network::new(3);
        let mut repos = RepoRegistry::new();
        for host in [
            "rpki.arin.example",
            "rpki.sprint.example",
            "rpki.etb.example",
            "rpki.continental.example",
        ] {
            repos.create(&mut net, host);
        }
        let dir = |host: &str| RepoUri::new(host, &["repo"]);

        let mut arin = CertAuthority::new("ARIN", "e2e-arin", dir("rpki.arin.example"));
        arin.certify_self(rs("63.0.0.0/8, 208.0.0.0/4"), Moment(0), Span::days(3650));

        let mut sprint = CertAuthority::new("Sprint", "e2e-sprint", dir("rpki.sprint.example"));
        let rc = arin
            .issue_cert(
                "Sprint",
                sprint.public_key(),
                rs("63.160.0.0/12, 208.0.0.0/11"),
                sprint.sia().clone(),
                Moment(0),
            )
            .unwrap();
        sprint.install_cert(rc);

        let mut etb = CertAuthority::new("ETB S.A. ESP.", "e2e-etb", dir("rpki.etb.example"));
        let rc = sprint
            .issue_cert(
                "ETB S.A. ESP.",
                etb.public_key(),
                rs("63.166.0.0/16"),
                etb.sia().clone(),
                Moment(0),
            )
            .unwrap();
        etb.install_cert(rc);

        let mut continental = CertAuthority::new(
            "Continental Broadband",
            "e2e-continental",
            dir("rpki.continental.example"),
        );
        let rc = sprint
            .issue_cert(
                "Continental Broadband",
                continental.public_key(),
                rs("63.174.16.0/20"),
                continental.sia().clone(),
                Moment(0),
            )
            .unwrap();
        continental.install_cert(rc);

        // Sprint's own ROAs.
        sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::up_to(p("63.160.64.0/20"), 24)], Moment(0))
            .unwrap();
        sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::up_to(p("208.24.0.0/16"), 24)], Moment(0))
            .unwrap();
        // ETB's ROA.
        etb.issue_roa(Asn(19094), vec![RoaPrefix::exact(p("63.166.0.0/16"))], Moment(0)).unwrap();
        // Continental's five ROAs (Figure 3's cast): the /20 covering
        // ROA, a customer /22, and three more inside [16.0–23.255] ∪
        // [25.0–31.255] so that 63.174.24.0/24 is collateral-free.
        continental
            .issue_roa(Asn(17054), vec![RoaPrefix::exact(p("63.174.16.0/20"))], Moment(0))
            .unwrap();
        continental
            .issue_roa(Asn(7341), vec![RoaPrefix::exact(p("63.174.16.0/22"))], Moment(0))
            .unwrap();
        continental
            .issue_roa(Asn(7342), vec![RoaPrefix::exact(p("63.174.20.0/23"))], Moment(0))
            .unwrap();
        continental
            .issue_roa(Asn(7343), vec![RoaPrefix::exact(p("63.174.22.0/24"))], Moment(0))
            .unwrap();
        continental
            .issue_roa(Asn(7344), vec![RoaPrefix::exact(p("63.174.25.0/24"))], Moment(0))
            .unwrap();

        let tal = TrustAnchorLocator::new(
            RepoUri::new("rpki.arin.example", &["ta", "root.cer"]),
            arin.public_key(),
        );

        let mut world = ModelWorld { net, repos, arin, sprint, etb, continental, tal };
        world.publish_all(Moment(1));
        world
    }

    fn publish_all(&mut self, now: Moment) {
        let ta_cert = self.arin.cert().unwrap().clone();
        let ta_dir = RepoUri::new("rpki.arin.example", &["ta"]);
        self.repos.by_host_mut("rpki.arin.example").unwrap().publish_raw(
            &ta_dir,
            "root.cer",
            RpkiObject::Cert(ta_cert).to_bytes(),
        );
        for (host, ca) in [
            ("rpki.arin.example", &mut self.arin),
            ("rpki.sprint.example", &mut self.sprint),
            ("rpki.etb.example", &mut self.etb),
            ("rpki.continental.example", &mut self.continental),
        ] {
            let sia = ca.sia().clone();
            let snap = ca.publication_snapshot(now);
            self.repos.by_host_mut(host).unwrap().publish_snapshot(&sia, &snap);
        }
        let _ = &self.net;
    }

    fn validate(&self, now: Moment) -> rpki_rp::ValidationRun {
        let mut source = DirectSource::new(&self.repos);
        Validator::new(ValidationConfig::at(now)).run(&mut source, std::slice::from_ref(&self.tal))
    }

    /// The manipulator's (Sprint's) public view of Continental.
    fn continental_view(&self) -> CaView {
        let rc = self.sprint.issued_cert_for(self.continental.key_id()).unwrap();
        CaView::from_repos(rc, &self.repos)
    }
}

#[test]
fn clean_world_baseline() {
    let w = ModelWorld::build();
    let run = w.validate(Moment(2));
    assert_eq!(run.cas.len(), 4);
    assert_eq!(run.vrps.len(), 8);
}

/// Side Effect 3: Sprint whacks Continental's covering /20 ROA with
/// zero collateral — the Figure 3 headline, via the free /24 at
/// 63.174.24.0 (no other object uses it).
#[test]
fn grandchild_whack_without_collateral() {
    let mut w = ModelWorld::build();
    let before = w.validate(Moment(2));
    let view = w.continental_view();
    let target_file = view.roas.iter().find(|r| r.asn() == Asn(17054)).unwrap().file_name();

    let plan = plan_whack(std::slice::from_ref(&view), &target_file).unwrap();
    // Zero suspicious reissues: the clean carve exists.
    assert_eq!(plan.reissued, 0, "plan: {plan:?}");
    assert_eq!(plan.steps.len(), 1);
    // The carved space is a single free /24 inside the target (the
    // paper's example picks 63.174.24.0/24; any /24 overlapping no
    // other object works — the planner deterministically takes the
    // lowest, 63.174.23.0/24).
    assert_eq!(plan.carved.size(), 256);
    let other_objects = rs("63.174.16.0/22, 63.174.20.0/23, 63.174.22.0/24, 63.174.25.0/24");
    assert!(!plan.carved.overlaps(&other_objects));
    assert!(rs("63.174.16.0/20").contains_set(&plan.carved));
    match &plan.steps[0] {
        WhackStep::OverwriteChildCert { new_resources, .. } => {
            // The shape of Figure 3's published RC: the /20 minus one
            // /24, expressed as two non-CIDR ranges.
            assert_eq!(new_resources, &rs("63.174.16.0/20").difference(&plan.carved));
            assert_eq!(new_resources.num_runs(), 2);
        }
        other => panic!("unexpected step {other:?}"),
    }

    plan.execute(&mut w.sprint, Moment(3)).unwrap();
    w.publish_all(Moment(3));
    let after = w.validate(Moment(4));

    // The target is gone; everything else survives.
    assert_eq!(after.vrps.len(), before.vrps.len() - 1);
    let damage = damage_between(&before.vrps, &after.vrps, &probes_for(&before.vrps));
    assert!(damage.clean_except(&[Asn(17054)]), "damage: {damage:?}");
    assert_eq!(damage.lost_vrps.len(), 1);
    assert_eq!(damage.lost_vrps[0].asn, Asn(17054));
    // And the victim's route is now INVALID (covered by its own former
    // customers' ROAs? No — by nothing at /20... check what state):
    let cache = after.vrp_cache();
    let validity = cache.classify(Route::new(p("63.174.16.0/20"), Asn(17054)));
    // The /22,/23,/24 ROAs do not cover the /20, so it becomes unknown.
    assert_eq!(validity, RouteValidity::Unknown);
}

/// The make-before-break case: targeting the /22 customer ROA, whose
/// space is entirely inside the /20 covering ROA — no collateral-free
/// carve exists, so the damaged /20 ROA is first reissued by Sprint.
#[test]
fn make_before_break_whack() {
    let mut w = ModelWorld::build();
    let before = w.validate(Moment(2));
    let view = w.continental_view();
    let target_file = view.roas.iter().find(|r| r.asn() == Asn(7341)).unwrap().file_name();

    let plan = plan_whack(std::slice::from_ref(&view), &target_file).unwrap();
    // The covering /20 ROA is damaged and must be reissued: exactly one
    // suspicious reissue.
    assert_eq!(plan.reissued, 1, "plan: {plan:?}");
    assert!(plan
        .steps
        .iter()
        .any(|s| matches!(s, WhackStep::ReissueRoaAsOwn { asn, .. } if *asn == Asn(17054))));

    plan.execute(&mut w.sprint, Moment(3)).unwrap();
    w.publish_all(Moment(3));
    let after = w.validate(Moment(4));

    let damage = damage_between(&before.vrps, &after.vrps, &probes_for(&before.vrps));
    assert!(damage.clean_except(&[Asn(7341)]), "damage: {damage:?}");
    // The reissued /20 VRP is identical in content, so route validity
    // for AS17054 is unchanged.
    let cache = after.vrp_cache();
    assert_eq!(cache.classify(Route::new(p("63.174.16.0/20"), Asn(17054))), RouteValidity::Valid);
    // The target dies as INVALID, not unknown: the covering /20 remains
    // (Section 3's "whacked AND covered" summary case).
    assert_eq!(cache.classify(Route::new(p("63.174.16.0/22"), Asn(7341))), RouteValidity::Invalid);
}

/// Side Effect 4: ARIN (the grandparent's parent) whacks a
/// great-grandchild ROA of Continental's — requiring the intermediate
/// (Sprint's) RC to be suspiciously reissued as ARIN's own.
#[test]
fn great_grandchild_whack_needs_more_reissues() {
    let mut w = ModelWorld::build();
    let before = w.validate(Moment(2));

    // ARIN's chain: its child Sprint, then Sprint's child Continental.
    let sprint_rc = w.arin.issued_cert_for(w.sprint.key_id()).unwrap().clone();
    let sprint_view = CaView::from_repos(&sprint_rc, &w.repos);
    let continental_view = w.continental_view();
    let target_file =
        continental_view.roas.iter().find(|r| r.asn() == Asn(17054)).unwrap().file_name();

    let chain = vec![sprint_view, continental_view];
    let plan = plan_whack(&chain, &target_file).unwrap();
    // One reissue for the intermediate (Continental's RC as ARIN's own
    // child); the carve itself is collateral-free.
    assert_eq!(plan.reissued, 1, "plan: {plan:?}");
    assert!(plan.steps.iter().any(|s| matches!(
        s,
        WhackStep::ReissueCertAsOwn { handle, .. } if handle == "Continental Broadband"
    )));

    plan.execute(&mut w.arin, Moment(3)).unwrap();
    w.publish_all(Moment(3));
    let after = w.validate(Moment(4));

    let damage = damage_between(&before.vrps, &after.vrps, &probes_for(&before.vrps));
    assert!(damage.clean_except(&[Asn(17054)]), "damage: {damage:?}");
    assert_eq!(damage.lost_vrps.len(), 1);
}

/// The blunt baseline the paper contrasts against: revoking
/// Continental's RC whacks the target plus four ROAs of collateral.
#[test]
fn naive_revocation_causes_collateral() {
    let mut w = ModelWorld::build();
    let before = w.validate(Moment(2));
    let serial = w.sprint.issued_cert_for(w.continental.key_id()).unwrap().data().serial;
    w.sprint.revoke_serial(serial);
    w.publish_all(Moment(3));
    let after = w.validate(Moment(4));
    let damage = damage_between(&before.vrps, &after.vrps, &probes_for(&before.vrps));
    // All five of Continental's ROAs die: the target plus four others —
    // exactly the paper's collateral count.
    assert_eq!(damage.lost_vrps.len(), 5);
    assert!(!damage.clean_except(&[Asn(17054)]));
}

#[test]
fn whack_plan_rejects_missing_target() {
    let w = ModelWorld::build();
    let view = w.continental_view();
    let err = plan_whack(std::slice::from_ref(&view), "nonexistent.roa").unwrap_err();
    assert_eq!(err, WhackError::TargetNotFound("nonexistent.roa".to_owned()));
}

#[test]
fn whack_plan_rejects_broken_chain() {
    let w = ModelWorld::build();
    // Chain in the wrong order: Continental then Sprint.
    let sprint_rc = w.arin.issued_cert_for(w.sprint.key_id()).unwrap().clone();
    let sprint_view = CaView::from_repos(&sprint_rc, &w.repos);
    let continental_view = w.continental_view();
    let target = continental_view.roas[0].file_name();
    let chain = vec![continental_view, sprint_view];
    assert_eq!(plan_whack(&chain, &target).unwrap_err(), WhackError::BrokenChain(1));
}

/// The monitor sees the make-before-break attack.
#[test]
fn monitor_catches_make_before_break() {
    use rpki_attacks::{Monitor, MonitorSnapshot};
    let mut w = ModelWorld::build();
    let mut monitor = Monitor::new();
    monitor.observe(MonitorSnapshot::capture(&w.repos, Moment(2)));

    let view = w.continental_view();
    let target_file = view.roas.iter().find(|r| r.asn() == Asn(7341)).unwrap().file_name();
    let plan = plan_whack(std::slice::from_ref(&view), &target_file).unwrap();
    plan.execute(&mut w.sprint, Moment(3)).unwrap();
    w.publish_all(Moment(3));

    let events = monitor.observe(MonitorSnapshot::capture(&w.repos, Moment(3)));
    let suspicious: Vec<_> = events.iter().filter(|e| e.classification.is_suspicious()).collect();
    assert!(suspicious.len() >= 2, "expect whack + reissue flagged, got {events:?}");
}
