//! The Stalloris-style RRDP downgrade: misbehaving publication points.
//!
//! *Stalloris: RPKI Downgrade Attack* (USENIX Security '22) modernises
//! the paper's §2 authority-misbehaviour model: a relying party that
//! prefers RRDP can be pushed off it — or worse, pinned on a stale
//! replay of it — by a publication point that misbehaves at the
//! *transport* layer while every signature it serves stays valid. No
//! key compromise, no malformed object; just a server answering
//! selectively. The server-side knobs live on
//! [`Repository`](rpki_repo::Repository); this module packages them as
//! a planner ([`DowngradePlan`]) and an executor ([`apply_step`]) in
//! the same shape as [`whack`](crate::whack): a *plan* is an inspectable
//! list of steps, so experiments and monitors can reason about the
//! attack before any of it touches a repository.
//!
//! Steps compose: [`DowngradeStep::PinStale`] followed by an
//! authority-side whack is the full Stalloris scenario — the RRDP feed
//! keeps confirming the pre-whack world while rsync (and reality)
//! moved on. [`DowngradeStep::Restore`] clears every knob, modelling
//! the attacker covering tracks after the BGP damage is done.

use rpki_repo::RepoRegistry;

/// One server-side misbehaviour a downgrade plan applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DowngradeStep {
    /// Freeze the RRDP feed of every directory on the host at its
    /// current state and replay it: notifications keep confirming the
    /// frozen serial, snapshots and deltas serve the frozen bytes.
    /// Relying parties without a freshness cross-check stay captive.
    PinStale,
    /// Keep advertising deltas in the notification but answer every
    /// delta request NotFound: clients behind by one serial are forced
    /// into full snapshot fetches (amplification), clients with a
    /// deadline may walk away and downgrade.
    WithholdDeltas,
    /// Take RRDP offline outright (every request NotFound): the crude
    /// downgrade that pushes every client onto the rsync path, where
    /// Stalloris' slow-serve economics apply.
    ForceRsync,
    /// Reset the RRDP session: fresh session id, serial restart, delta
    /// history gone. Every client must resnapshot, and well-built RTR
    /// caches downstream must signal a cache reset.
    ResetSession,
    /// Clear every knob: the host behaves again.
    Restore,
}

impl DowngradeStep {
    /// Stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            DowngradeStep::PinStale => "pin_stale",
            DowngradeStep::WithholdDeltas => "withhold_deltas",
            DowngradeStep::ForceRsync => "force_rsync",
            DowngradeStep::ResetSession => "reset_session",
            DowngradeStep::Restore => "restore",
        }
    }
}

/// An inspectable downgrade schedule against one repository host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DowngradePlan {
    /// The misbehaving publication point's host name.
    pub host: String,
    /// The steps, in application order.
    pub steps: Vec<DowngradeStep>,
}

impl DowngradePlan {
    /// The canonical Stalloris sequence: pin the feed (the whack lands
    /// behind it, invisible over RRDP), then — once the stale window
    /// has done its work — restore the host to cover tracks.
    pub fn stalloris(host: &str) -> Self {
        DowngradePlan {
            host: host.to_owned(),
            steps: vec![DowngradeStep::PinStale, DowngradeStep::Restore],
        }
    }

    /// A plan that simply forces every client onto rsync for the
    /// duration (the downgrade half without the stale replay).
    pub fn force_rsync(host: &str) -> Self {
        DowngradePlan {
            host: host.to_owned(),
            steps: vec![DowngradeStep::ForceRsync, DowngradeStep::Restore],
        }
    }
}

/// Applies one step to `host`'s repository. Returns `false` (and does
/// nothing) if the registry has no such host — a plan against a
/// non-existent publication point is a no-op, not a panic.
pub fn apply_step(repos: &mut RepoRegistry, host: &str, step: DowngradeStep) -> bool {
    let Some(repo) = repos.by_host_mut(host) else { return false };
    match step {
        DowngradeStep::PinStale => repo.rrdp_pin(),
        DowngradeStep::WithholdDeltas => repo.set_rrdp_withhold_deltas(true),
        DowngradeStep::ForceRsync => repo.set_rrdp_offline(true),
        DowngradeStep::ResetSession => repo.rrdp_reset_sessions(),
        DowngradeStep::Restore => {
            repo.rrdp_unpin();
            repo.set_rrdp_withhold_deltas(false);
            repo.set_rrdp_offline(false);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Network, NodeId};
    use rpki_objects::RepoUri;
    use rpki_repo::{rrdp_sync_dir, sync_dir, RrdpClientState, RrdpError, RrdpSyncKind};

    fn world() -> (Network, RepoRegistry, NodeId, RepoUri) {
        let mut net = Network::new(3);
        let client = net.add_node("rp");
        let mut repos = RepoRegistry::new();
        let server = repos.create(&mut net, "pp.example");
        let dir = RepoUri::new("pp.example", &["repo"]);
        repos.get_mut(server).unwrap().publish_raw(&dir, "a.roa", vec![1]);
        (net, repos, client, dir)
    }

    #[test]
    fn unknown_host_is_a_noop() {
        let (_, mut repos, _, _) = world();
        assert!(!apply_step(&mut repos, "nope.example", DowngradeStep::PinStale));
        assert!(apply_step(&mut repos, "pp.example", DowngradeStep::PinStale));
    }

    #[test]
    fn pin_serves_stale_while_rsync_sees_truth() {
        let (mut net, mut repos, client, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        apply_step(&mut repos, "pp.example", DowngradeStep::PinStale);
        repos.by_host_mut("pp.example").unwrap().publish_raw(&dir, "a.roa", vec![2]);
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::Unchanged, "the pinned feed keeps confirming");
        assert_eq!(out.files["a.roa"], vec![1]);
        assert_eq!(sync_dir(&mut net, &repos, client, &dir).files["a.roa"], vec![2]);
        // Restore heals the feed.
        apply_step(&mut repos, "pp.example", DowngradeStep::Restore);
        let (out, _) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(out.files["a.roa"], vec![2]);
    }

    #[test]
    fn withheld_deltas_force_snapshot_churn() {
        let (mut net, mut repos, client, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        apply_step(&mut repos, "pp.example", DowngradeStep::WithholdDeltas);
        repos.by_host_mut("pp.example").unwrap().publish_raw(&dir, "a.roa", vec![2]);
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::Snapshot, "one serial behind, yet a full snapshot");
        assert_eq!(out.files["a.roa"], vec![2]);
        assert_eq!(state.stats().snapshot_syncs, 2);
        assert_eq!(state.stats().delta_syncs, 0);
    }

    #[test]
    fn force_rsync_withholds_rrdp_entirely() {
        let (mut net, mut repos, client, dir) = world();
        apply_step(&mut repos, "pp.example", DowngradeStep::ForceRsync);
        let mut state = RrdpClientState::new();
        let err = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap_err();
        assert_eq!(err, RrdpError::Withheld);
        assert!(sync_dir(&mut net, &repos, client, &dir).is_complete());
    }

    #[test]
    fn session_reset_forces_resnapshot_and_epoch_bump() {
        let (mut net, mut repos, client, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        apply_step(&mut repos, "pp.example", DowngradeStep::ResetSession);
        let (_, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::SessionReset);
        assert_eq!(state.epoch(), 1);
    }

    #[test]
    fn plans_are_inspectable() {
        let plan = DowngradePlan::stalloris("pp.example");
        assert_eq!(plan.steps.first().unwrap().label(), "pin_stale");
        assert_eq!(plan.steps.last(), Some(&DowngradeStep::Restore));
        let plan = DowngradePlan::force_rsync("pp.example");
        assert_eq!(plan.steps.first().unwrap().label(), "force_rsync");
    }
}
