//! A seeded corpus of adversarial RPKI objects.
//!
//! The paper's manipulations are *semantically* valid objects issued by
//! a misbehaving authority. This module covers the complementary layer:
//! a publication point that serves **malformed or inconsistent bytes**
//! — truncated DER, implausible length prefixes, manifests that list
//! themselves, certificates that overclaim, validity windows from the
//! far future. A relying party must survive all of it: the worst
//! acceptable outcome is a rejected subtree, never a panic, a hang, or
//! collateral damage to sibling publication points.
//!
//! Every mutation goes through the repository's ordinary write path
//! ([`Repository::publish_raw`] / [`Repository::corrupt_at_rest`]), so
//! the poison propagates exactly as a real misbehaving host would serve
//! it: the rsync listing, the content digest, the RRDP delta log and
//! snapshot all carry the same bytes. Nothing is special-cased for the
//! transport a relying party happens to use.
//!
//! Generation is deterministic in `(kind, seed)`: the differential
//! suite replays identical corpora against every validator tier and
//! asserts byte-identical outcomes.

use ipres::{Asn, AsnSet, ResourceSet};
use rpki_ca::CertAuthority;
use rpki_objects::{
    CertData, Encode, Manifest, ManifestData, ManifestEntry, Moment, RepoUri, ResourceCert, Roa,
    RoaData, RoaPrefix, RpkiObject, Span, Validity,
};
use rpki_repo::Repository;
use rpkisim_crypto::{sha256, KeyPair};
use serde::Serialize;

/// One family of adversarial bytes the corpus can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum CorpusKind {
    /// An existing object cut short at a seeded offset.
    TruncatedDer,
    /// A length prefix claiming ~4 GiB where an object body should be.
    OversizedLength,
    /// A valid object with seeded junk appended after the value.
    TrailingBytes,
    /// A single seeded bit flipped somewhere in a valid object.
    BitFlip,
    /// A manifest that lists *itself* among its entries — a digest no
    /// signer can satisfy, and a tempting recursion for a sloppy walk.
    SelfReferencingManifest,
    /// Two manifests in one directory listing each other.
    CyclicManifests,
    /// A child certificate claiming `0.0.0.0/0` — far beyond anything
    /// the issuing CA holds.
    ResourceOverclaim,
    /// At-rest corruption of a listed file: the manifest's digest no
    /// longer matches what the repository serves.
    DigestMismatch,
    /// Two ROAs with absurd validity: one starting at the end of time,
    /// one with an inverted window.
    AbsurdValidity,
    /// A ROA whose entries repeat one prefix with conflicting
    /// maxLengths.
    ConflictingRoaEntries,
    /// A manifest listing more entries than any honest CA publishes
    /// (beyond [`rpki_rp::validation::MAX_MANIFEST_ENTRIES`]).
    OversizeListing,
}

impl CorpusKind {
    /// Every corpus family, in a stable order.
    pub const ALL: [CorpusKind; 11] = [
        CorpusKind::TruncatedDer,
        CorpusKind::OversizedLength,
        CorpusKind::TrailingBytes,
        CorpusKind::BitFlip,
        CorpusKind::SelfReferencingManifest,
        CorpusKind::CyclicManifests,
        CorpusKind::ResourceOverclaim,
        CorpusKind::DigestMismatch,
        CorpusKind::AbsurdValidity,
        CorpusKind::ConflictingRoaEntries,
        CorpusKind::OversizeListing,
    ];

    /// A short stable label for reports and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            CorpusKind::TruncatedDer => "truncated",
            CorpusKind::OversizedLength => "oversized_length",
            CorpusKind::TrailingBytes => "trailing_bytes",
            CorpusKind::BitFlip => "bit_flip",
            CorpusKind::SelfReferencingManifest => "self_referencing_manifest",
            CorpusKind::CyclicManifests => "cyclic_manifests",
            CorpusKind::ResourceOverclaim => "resource_overclaim",
            CorpusKind::DigestMismatch => "digest_mismatch",
            CorpusKind::AbsurdValidity => "absurd_validity",
            CorpusKind::ConflictingRoaEntries => "conflicting_roa_entries",
            CorpusKind::OversizeListing => "oversize_listing",
        }
    }

    /// A deterministic kind for a campaign seed (cycles through
    /// [`ALL`](Self::ALL)).
    pub fn for_seed(seed: u64) -> CorpusKind {
        CorpusKind::ALL[(seed % CorpusKind::ALL.len() as u64) as usize]
    }
}

/// What one corpus application did to a repository.
#[derive(Debug, Clone, Serialize)]
pub struct CorpusCase {
    /// The family applied.
    pub kind: CorpusKind,
    /// The poisoned publication directory.
    pub dir: RepoUri,
    /// The files written, corrupted, or replaced.
    pub files: Vec<String>,
    /// Human-readable description of the mutation.
    pub note: String,
}

/// splitmix64: small, deterministic, good enough to spread corpus
/// choices across seeds. (The attacks crate deliberately has no rand
/// dependency.)
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Picks a deterministic file from `files` satisfying `pred`.
fn pick<F: Fn(&str) -> bool>(files: &[String], state: &mut u64, pred: F) -> Option<String> {
    let eligible: Vec<&String> = files.iter().filter(|n| pred(n)).collect();
    if eligible.is_empty() {
        return None;
    }
    Some(eligible[(mix(state) % eligible.len() as u64) as usize].clone())
}

/// Applies one adversarial mutation of family `kind`, derived
/// deterministically from `seed`, to `ca`'s publication directory in
/// `repo`.
///
/// `ca` must be the authority publishing at its
/// [`sia`](CertAuthority::sia) inside `repo` — the corpus signs its
/// poisoned objects with the CA's real key
/// ([`key_for_attack`](CertAuthority::key_for_attack)), modelling a
/// *misbehaving authority*, not a forger. All writes go through the
/// publication log, so RRDP clients see the same poison as rsync
/// clients.
pub fn poison(
    repo: &mut Repository,
    ca: &CertAuthority,
    kind: CorpusKind,
    seed: u64,
    now: Moment,
) -> CorpusCase {
    // Distinct streams per kind so e.g. BitFlip and TruncatedDer with
    // one seed do not target the same offset of the same file.
    let mut state = seed ^ (kind.label().len() as u64) << 32 ^ kind as u64;
    let dir = ca.sia().clone();
    let names: Vec<String> = repo.list(&dir).into_iter().map(|(n, _)| n).collect();
    let mft_name = format!("{}.mft", ca.key_id().short());
    let key = ca.key_for_attack();

    let case =
        |files: Vec<String>, note: String| CorpusCase { kind, dir: dir.clone(), files, note };

    match kind {
        CorpusKind::TruncatedDer => {
            let name = pick(&names, &mut state, |_| true).unwrap_or_else(|| mft_name.clone());
            let bytes = repo.fetch(&dir, &name).map(<[u8]>::to_vec).unwrap_or_default();
            let cut =
                if bytes.is_empty() { 0 } else { (mix(&mut state) % bytes.len() as u64) as usize };
            repo.publish_raw(&dir, &name, bytes[..cut].to_vec());
            case(vec![name.clone()], format!("truncated {name} to {cut} bytes"))
        }
        CorpusKind::OversizedLength => {
            // A certificate whose subject-string length prefix claims
            // u32::MAX bytes: tag, serial, then an implausible length
            // the reader must reject before sizing any buffer.
            let name = pick(&names, &mut state, |n| n.ends_with(".cer"))
                .unwrap_or_else(|| "oversized.cer".to_owned());
            let mut bytes = vec![1u8]; // RpkiObject cert tag
            bytes.extend_from_slice(&mix(&mut state).to_be_bytes());
            bytes.extend_from_slice(&u32::MAX.to_be_bytes());
            repo.publish_raw(&dir, &name, bytes);
            case(vec![name.clone()], format!("{name} claims a 4 GiB subject string"))
        }
        CorpusKind::TrailingBytes => {
            let name = pick(&names, &mut state, |_| true).unwrap_or_else(|| mft_name.clone());
            let mut bytes = repo.fetch(&dir, &name).map(<[u8]>::to_vec).unwrap_or_default();
            let extra = 1 + (mix(&mut state) % 16) as usize;
            for _ in 0..extra {
                bytes.push(mix(&mut state) as u8);
            }
            repo.publish_raw(&dir, &name, bytes);
            case(vec![name.clone()], format!("appended {extra} junk bytes to {name}"))
        }
        CorpusKind::BitFlip => {
            let name = pick(&names, &mut state, |_| true).unwrap_or_else(|| mft_name.clone());
            let mut bytes = repo.fetch(&dir, &name).map(<[u8]>::to_vec).unwrap_or_default();
            let note = if bytes.is_empty() {
                format!("{name} empty; nothing to flip")
            } else {
                let bit = (mix(&mut state) % (bytes.len() as u64 * 8)) as usize;
                bytes[bit / 8] ^= 1 << (bit % 8);
                format!("flipped bit {bit} of {name}")
            };
            repo.publish_raw(&dir, &name, bytes);
            case(vec![name.clone()], note)
        }
        CorpusKind::SelfReferencingManifest => {
            // No signer can produce a manifest whose listed digest for
            // itself matches its own bytes; the walk must treat the
            // impossible entry as a plain mismatch, not recurse.
            let mut entries: Vec<ManifestEntry> = repo
                .list(&dir)
                .into_iter()
                .filter(|(n, _)| *n != mft_name)
                .map(|(n, h)| ManifestEntry { name: n, hash: h })
                .collect();
            entries.push(ManifestEntry { name: mft_name.clone(), hash: sha256(b"self-reference") });
            let mft = Manifest::sign(
                ManifestData {
                    issuer_key: ca.key_id(),
                    number: mix(&mut state),
                    this_update: now,
                    next_update: now + Span::days(7),
                    entries,
                },
                key,
            );
            repo.publish_raw(&dir, &mft_name, RpkiObject::Manifest(mft).to_bytes());
            case(vec![mft_name.clone()], format!("{mft_name} lists itself"))
        }
        CorpusKind::CyclicManifests => {
            let loop_name = "loop.mft".to_owned();
            // B lists the real manifest (by whatever digest it will
            // have — unknowable, hence junk)...
            let b = Manifest::sign(
                ManifestData {
                    issuer_key: ca.key_id(),
                    number: mix(&mut state),
                    this_update: now,
                    next_update: now + Span::days(7),
                    entries: vec![ManifestEntry { name: mft_name.clone(), hash: sha256(b"cycle") }],
                },
                key,
            );
            let b_bytes = RpkiObject::Manifest(b).to_bytes();
            // ...while the real manifest lists B with B's true digest,
            // closing the cycle A → B → A.
            let mut entries: Vec<ManifestEntry> = repo
                .list(&dir)
                .into_iter()
                .filter(|(n, _)| *n != mft_name)
                .map(|(n, h)| ManifestEntry { name: n, hash: h })
                .collect();
            entries.push(ManifestEntry { name: loop_name.clone(), hash: sha256(&b_bytes) });
            let a = Manifest::sign(
                ManifestData {
                    issuer_key: ca.key_id(),
                    number: mix(&mut state),
                    this_update: now,
                    next_update: now + Span::days(7),
                    entries,
                },
                key,
            );
            repo.publish_raw(&dir, &loop_name, b_bytes);
            repo.publish_raw(&dir, &mft_name, RpkiObject::Manifest(a).to_bytes());
            case(
                vec![mft_name.clone(), loop_name.clone()],
                format!("{mft_name} and {loop_name} list each other"),
            )
        }
        CorpusKind::ResourceOverclaim => {
            let subject = KeyPair::from_seed(&format!("corpus-overclaim-{seed}"));
            let cert = ResourceCert::sign(
                CertData {
                    serial: mix(&mut state),
                    subject: "corpus-overclaim".to_owned(),
                    subject_key: subject.public(),
                    resources: ResourceSet::from_prefix_strs("0.0.0.0/0"),
                    as_resources: AsnSet::empty(),
                    validity: Validity::starting(now, Span::days(365)),
                    issuer_key: ca.key_id(),
                    sia: dir.join("overclaim"),
                    crl_dp: Some(ca.crl_uri()),
                },
                key,
            );
            let name = cert.file_name();
            repo.publish_raw(&dir, &name, RpkiObject::Cert(cert).to_bytes());
            // The authority lists its own over-claimer: re-sign the
            // manifest over the current listing so the validator must
            // process (and reject) the certificate rather than skip an
            // unlisted file.
            let entries: Vec<ManifestEntry> = repo
                .list(&dir)
                .into_iter()
                .filter(|(n, _)| *n != mft_name)
                .map(|(n, h)| ManifestEntry { name: n, hash: h })
                .collect();
            let mft = Manifest::sign(
                ManifestData {
                    issuer_key: ca.key_id(),
                    number: mix(&mut state),
                    this_update: now,
                    next_update: now + Span::days(7),
                    entries,
                },
                key,
            );
            repo.publish_raw(&dir, &mft_name, RpkiObject::Manifest(mft).to_bytes());
            case(vec![name.clone(), mft_name.clone()], format!("{name} claims 0.0.0.0/0"))
        }
        CorpusKind::DigestMismatch => {
            let name = pick(&names, &mut state, |n| !n.ends_with(".mft"))
                .unwrap_or_else(|| mft_name.clone());
            repo.corrupt_at_rest(&dir, &name);
            case(vec![name.clone()], format!("{name} corrupted at rest under an honest manifest"))
        }
        CorpusKind::AbsurdValidity => {
            let prefix = ca
                .resources()
                .to_prefixes()
                .into_iter()
                .next()
                .unwrap_or_else(|| "203.0.113.0/24".parse().expect("literal prefix parses"));
            let data = RoaData {
                asn: Asn(64_512 + (mix(&mut state) % 1024) as u32),
                prefixes: vec![RoaPrefix::exact(prefix)],
            };
            // One ROA valid only at the end of time (validation-layer
            // rejection), one with an inverted window (decode-layer
            // rejection — built via the struct literal, since the
            // constructors refuse it).
            let future = Roa::issue(
                data.clone(),
                mix(&mut state),
                Validity::new(Moment(u64::MAX - 1), Moment(u64::MAX)),
                key,
                &KeyPair::from_seed(&format!("corpus-ee-future-{seed}")),
            );
            let inverted = Roa::issue(
                data,
                mix(&mut state),
                Validity { not_before: Moment(u64::MAX), not_after: Moment(0) },
                key,
                &KeyPair::from_seed(&format!("corpus-ee-inverted-{seed}")),
            );
            let files = vec!["absurd-future.roa".to_owned(), "absurd-inverted.roa".to_owned()];
            repo.publish_raw(&dir, &files[0], RpkiObject::Roa(future).to_bytes());
            repo.publish_raw(&dir, &files[1], RpkiObject::Roa(inverted).to_bytes());
            case(files, "ROAs valid from the end of time / with inverted windows".to_owned())
        }
        CorpusKind::ConflictingRoaEntries => {
            let prefix = ca
                .resources()
                .to_prefixes()
                .into_iter()
                .next()
                .unwrap_or_else(|| "203.0.113.0/24".parse().expect("literal prefix parses"));
            let max = prefix.family().bits();
            let roa = Roa::issue(
                RoaData {
                    asn: Asn(64_512 + (mix(&mut state) % 1024) as u32),
                    prefixes: vec![
                        RoaPrefix::exact(prefix),
                        RoaPrefix::up_to(prefix, max),
                        RoaPrefix::exact(prefix),
                    ],
                },
                mix(&mut state),
                Validity::starting(now, Span::days(30)),
                key,
                &KeyPair::from_seed(&format!("corpus-ee-dup-{seed}")),
            );
            let name = pick(&names, &mut state, |n| n.ends_with(".roa"))
                .unwrap_or_else(|| "conflicting.roa".to_owned());
            repo.publish_raw(&dir, &name, RpkiObject::Roa(roa).to_bytes());
            case(vec![name.clone()], format!("{name} repeats {prefix} with conflicting maxLength"))
        }
        CorpusKind::OversizeListing => {
            let count = rpki_rp::validation::MAX_MANIFEST_ENTRIES + 1;
            let hash = sha256(b"padding");
            let entries: Vec<ManifestEntry> = (0..count)
                .map(|i| ManifestEntry { name: format!("pad-{i:06}.roa"), hash })
                .collect();
            let mft = Manifest::sign(
                ManifestData {
                    issuer_key: ca.key_id(),
                    number: mix(&mut state),
                    this_update: now,
                    next_update: now + Span::days(7),
                    entries,
                },
                key,
            );
            repo.publish_raw(&dir, &mft_name, RpkiObject::Manifest(mft).to_bytes());
            case(vec![mft_name.clone()], format!("{mft_name} lists {count} files"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::NodeId;

    fn fixture() -> (Repository, CertAuthority) {
        let sia = RepoUri::new("rpki.corpus.example", &["repo", "ca"]);
        let mut ca = CertAuthority::new("Corpus", "corpus-ca", sia);
        ca.certify_self(ResourceSet::from_prefix_strs("10.0.0.0/8"), Moment(0), Span::days(365));
        ca.issue_roa(
            Asn(64_500),
            vec![RoaPrefix::exact("10.1.0.0/16".parse().expect("literal prefix"))],
            Moment(0),
        )
        .expect("fixture roa");
        let mut repo = Repository::new("rpki.corpus.example", NodeId(1));
        let snapshot = ca.publication_snapshot(Moment(1));
        repo.publish_snapshot(ca.sia(), &snapshot);
        (repo, ca)
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        for kind in CorpusKind::ALL {
            let (mut a, ca_a) = fixture();
            let (mut b, ca_b) = fixture();
            let ca_case = poison(&mut a, &ca_a, kind, 7, Moment(2));
            let cb_case = poison(&mut b, &ca_b, kind, 7, Moment(2));
            assert_eq!(ca_case.files, cb_case.files, "{kind:?} file choice must be seeded");
            assert_eq!(
                a.content_digest(ca_a.sia()),
                b.content_digest(ca_b.sia()),
                "{kind:?} must mutate identically for one seed"
            );
            // A different seed may (not must) differ; the content
            // digest changing under *some* kind proves the seed flows.
        }
    }

    #[test]
    fn every_kind_dirties_the_publication_log() {
        for kind in CorpusKind::ALL {
            let (mut repo, ca) = fixture();
            let before = repo.content_digest(ca.sia());
            let pos_before = repo.rrdp_position(ca.sia()).expect("dir exists");
            let case = poison(&mut repo, &ca, kind, 3, Moment(2));
            assert!(!case.files.is_empty(), "{kind:?} must name its targets");
            assert_ne!(
                before,
                repo.content_digest(ca.sia()),
                "{kind:?} must change served content"
            );
            let pos_after = repo.rrdp_position(ca.sia()).expect("dir exists");
            assert!(
                pos_after.1 > pos_before.1,
                "{kind:?} must flow through the RRDP publication log"
            );
        }
    }

    #[test]
    fn seed_cycles_all_kinds() {
        let hit: std::collections::BTreeSet<&str> =
            (0..CorpusKind::ALL.len() as u64).map(|s| CorpusKind::for_seed(s).label()).collect();
        assert_eq!(hit.len(), CorpusKind::ALL.len());
    }
}
