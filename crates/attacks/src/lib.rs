//! The HotNets '13 manipulation toolkit: **ROA whacking**.
//!
//! > "We say that an RPKI manipulator *whacks* a target ROA, regardless
//! > whether this is accomplished by a known method … or by a new
//! > method …" — Section 3.
//!
//! This crate implements every whacking method the paper describes, as
//! *planners* that work from public information (the target's
//! publication points) and *executors* that drive a
//! [`rpki_ca::CertAuthority`] the manipulator controls:
//!
//! - **Revocation** (Side Effect 1) — transparent, auditable, blunt:
//!   revoking an RC kills its entire subtree.
//! - **Stealthy withdrawal** (Side Effect 2) — deletion from the
//!   issuer's own repository, no CRL trace.
//! - **Targeted carve-out** (Side Effect 3) — overwrite a child RC with
//!   one missing a sliver of the target ROA's space, chosen to overlap
//!   nothing else: the grandchild ROA over-claims and dies, with zero
//!   collateral damage.
//! - **Make-before-break** (Figure 3) — when no collateral-free sliver
//!   exists, first reissue the would-be-damaged descendants as the
//!   manipulator's own, then carve. Works to any depth (Side Effect 4),
//!   at the cost of more suspicious reissues.
//!
//! [`collateral`] quantifies the damage of each method, and [`monitor`]
//! implements the snapshot-diff monitoring scheme the paper poses as an
//! open problem — classifying repository churn into benign operations
//! and whacking signatures.
//!
//! [`downgrade`] extends the toolkit below the object layer: the
//! Stalloris-style RRDP transport misbehaviours (stale-feed pinning,
//! delta withholding, forced rsync downgrade, session resets) that let
//! a publication point hide a whack from relying parties without
//! forging a single signature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collateral;
pub mod corpus;
pub mod downgrade;
pub mod monitor;
pub mod starve;
pub mod view;
pub mod whack;

pub use collateral::{damage_between, probes_for, DamageReport};
pub use corpus::{poison, CorpusCase, CorpusKind};
pub use downgrade::{apply_step, DowngradePlan, DowngradeStep};
pub use monitor::{
    ChangeKind, Classification, HostReport, MisbehaviorReport, Monitor, MonitorEvent,
    MonitorSnapshot, TransportEvidence,
};
pub use starve::{apply_round, StarvePlan};
pub use view::CaView;
pub use whack::{plan_whack, WhackError, WhackPlan, WhackStep};
