//! Collateral-damage accounting.
//!
//! The paper's argument for why revocation deters manipulation is the
//! "outcry from collateral damage"; the whole point of targeted
//! whacking is to get the damage to zero. [`damage_between`] measures
//! it directly: diff the validated VRP sets (and the route validities
//! they induce) before and after a manipulation.

use ipres::Asn;
use rpki_rp::{Route, RouteValidity, Vrp, VrpCache};
use serde::Serialize;

/// The observable damage of a manipulation.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DamageReport {
    /// VRPs present before and absent after.
    pub lost_vrps: Vec<Vrp>,
    /// VRPs absent before and present after (reissues land here).
    pub gained_vrps: Vec<Vrp>,
    /// Routes that were valid before and are not after — the paper's
    /// collateral-damage number, measured on a probe route set.
    pub routes_degraded: Vec<(Route, RouteValidity)>,
    /// Routes that changed state in any direction.
    pub routes_changed: usize,
}

impl DamageReport {
    /// Whether the manipulation damaged nothing but the intended
    /// targets (`targets` = origin ASes whose degradation is intended).
    pub fn clean_except(&self, targets: &[Asn]) -> bool {
        self.routes_degraded.iter().all(|(r, _)| targets.contains(&r.origin))
    }
}

/// Computes the damage between two VRP snapshots, probing route
/// validity over `probes`.
pub fn damage_between(before: &[Vrp], after: &[Vrp], probes: &[Route]) -> DamageReport {
    let before_cache: VrpCache = before.iter().copied().collect();
    let after_cache: VrpCache = after.iter().copied().collect();

    let lost_vrps: Vec<Vrp> = before.iter().filter(|v| !after.contains(v)).copied().collect();
    let gained_vrps: Vec<Vrp> = after.iter().filter(|v| !before.contains(v)).copied().collect();

    let mut routes_degraded = Vec::new();
    let mut routes_changed = 0;
    for &route in probes {
        let was = before_cache.classify(route);
        let is = after_cache.classify(route);
        if was != is {
            routes_changed += 1;
            if was == RouteValidity::Valid && is != RouteValidity::Valid {
                routes_degraded.push((route, is));
            }
        }
    }

    DamageReport { lost_vrps, gained_vrps, routes_degraded, routes_changed }
}

/// The natural probe set for a VRP universe: one route per VRP, as its
/// holder would announce it (prefix at its own length, authorised
/// origin).
pub fn probes_for(vrps: &[Vrp]) -> Vec<Route> {
    let mut probes: Vec<Route> = vrps.iter().map(|v| Route::new(v.prefix, v.asn)).collect();
    probes.sort_unstable();
    probes.dedup();
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipres::Prefix;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn no_change_no_damage() {
        let vrps = vec![Vrp::new(p("10.0.0.0/16"), 16, Asn(1))];
        let report = damage_between(&vrps, &vrps, &probes_for(&vrps));
        assert!(report.lost_vrps.is_empty());
        assert!(report.gained_vrps.is_empty());
        assert!(report.routes_degraded.is_empty());
        assert_eq!(report.routes_changed, 0);
        assert!(report.clean_except(&[]));
    }

    #[test]
    fn whack_with_cover_degrades_to_invalid() {
        // The victim's VRP disappears; a covering VRP remains → the
        // victim's route flips valid → INVALID (Side Effect 6 shape).
        let before =
            vec![Vrp::new(p("10.0.0.0/8"), 8, Asn(99)), Vrp::new(p("10.1.0.0/16"), 16, Asn(1))];
        let after = vec![Vrp::new(p("10.0.0.0/8"), 8, Asn(99))];
        let report = damage_between(&before, &after, &probes_for(&before));
        assert_eq!(report.lost_vrps, vec![Vrp::new(p("10.1.0.0/16"), 16, Asn(1))]);
        assert_eq!(report.routes_degraded.len(), 1);
        assert_eq!(report.routes_degraded[0].1, RouteValidity::Invalid);
        assert!(report.clean_except(&[Asn(1)]));
        assert!(!report.clean_except(&[Asn(2)]));
    }

    #[test]
    fn whack_without_cover_degrades_to_unknown() {
        let before = vec![Vrp::new(p("10.1.0.0/16"), 16, Asn(1))];
        let after: Vec<Vrp> = vec![];
        let report = damage_between(&before, &after, &probes_for(&before));
        assert_eq!(report.routes_degraded.len(), 1);
        assert_eq!(report.routes_degraded[0].1, RouteValidity::Unknown);
    }

    #[test]
    fn reissue_shows_as_gain_and_prevents_degradation() {
        // Make-before-break: same VRP content reappears (from the
        // manipulator's pub point) → no degradation.
        let before =
            vec![Vrp::new(p("10.0.0.0/8"), 8, Asn(99)), Vrp::new(p("10.1.0.0/16"), 16, Asn(1))];
        let after = before.clone(); // identical VRPs, different issuer
        let report = damage_between(&before, &after, &probes_for(&before));
        assert!(report.routes_degraded.is_empty());
    }

    #[test]
    fn probes_deduplicate() {
        let vrps =
            vec![Vrp::new(p("10.0.0.0/8"), 8, Asn(1)), Vrp::new(p("10.0.0.0/8"), 24, Asn(1))];
        assert_eq!(probes_for(&vrps).len(), 1);
    }
}
