//! The snapshot-diff RPKI monitor.
//!
//! Section 3.1 ends with: *"One of the open problems we are working on
//! is the design of monitoring schemes that deter RPKI manipulations by
//! detecting suspiciously reissued objects."* This module is that
//! scheme: capture periodic snapshots of every repository, diff them,
//! and classify each change as routine churn or a manipulation
//! signature. The paper's worry — *"distinguishing between abusive
//! behavior and normal RPKI churn could be difficult"* (Side Effect 2)
//! — becomes measurable: the ablation benches feed the monitor seeded
//! churn with and without injected whacks and score it.
//!
//! Signatures implemented:
//!
//! - **Suspected whack** — a certificate overwritten with shrunken
//!   resources while some descendant ROA still needs the removed space.
//! - **Suspicious reissue** — an object appearing at one publication
//!   point whose content duplicates an object living at (or vanished
//!   from) *another* — the make-before-break fingerprint.
//! - **Stealthy removal** — an object vanishing with neither a CRL
//!   entry nor a same-point renewal.
//!
//! Routine churn (CRL/manifest refresh, ROA renewal, key rollover,
//! fresh issuance) is classified as such.

use std::collections::BTreeMap;

use ipres::{Asn, ResourceSet};
use rpki_objects::{Decode, Moment, RoaPrefix, RpkiObject};
use rpki_obs::{FieldValue, Recorder, TraceEvent};
use rpki_repo::RepoRegistry;
use rpki_rp::ValidationRun;
use serde::Serialize;

/// A point-in-time, fully decoded picture of every repository.
#[derive(Debug, Clone)]
pub struct MonitorSnapshot {
    /// Capture time.
    pub when: Moment,
    /// `directory URI → file name → decoded object`. Files that fail to
    /// decode are skipped (a production monitor would flag them; the
    /// validator already does).
    pub dirs: BTreeMap<String, BTreeMap<String, RpkiObject>>,
}

impl MonitorSnapshot {
    /// Captures the current state of every repository.
    pub fn capture(repos: &RepoRegistry, when: Moment) -> Self {
        let mut dirs = BTreeMap::new();
        for repo in repos.iter() {
            for dir in repo.directories() {
                let mut files = BTreeMap::new();
                for (name, _) in repo.list(&dir) {
                    if let Some(bytes) = repo.fetch(&dir, &name) {
                        if let Ok(obj) = RpkiObject::from_bytes(bytes) {
                            files.insert(name, obj);
                        }
                    }
                }
                dirs.insert(dir.to_string(), files);
            }
        }
        MonitorSnapshot { when, dirs }
    }

    fn roas(&self) -> impl Iterator<Item = (&String, &String, &rpki_objects::Roa)> {
        self.dirs.iter().flat_map(|(dir, files)| {
            files.iter().filter_map(move |(name, obj)| match obj {
                RpkiObject::Roa(r) => Some((dir, name, r)),
                _ => None,
            })
        })
    }
}

/// Direction of a change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ChangeKind {
    /// File appeared.
    Added,
    /// File vanished.
    Removed,
    /// File's bytes changed under the same name (an overwrite).
    Modified,
}

impl ChangeKind {
    /// A short machine-readable label for traces.
    pub fn label(&self) -> &'static str {
        match self {
            ChangeKind::Added => "added",
            ChangeKind::Removed => "removed",
            ChangeKind::Modified => "modified",
        }
    }
}

/// What the monitor concluded about one change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Classification {
    /// CRL/manifest refresh or an equal-content overwrite.
    RoutineRefresh,
    /// Same-content object reappeared at the same publication point
    /// with a fresh identity (ROA renewal, key rollover).
    Renewal,
    /// A brand-new object with unseen content.
    NewIssuance,
    /// Removal matched by a CRL revocation — transparent, auditable.
    RevokedRemoval,
    /// Removal with no CRL entry and no renewal — Side Effect 2.
    StealthyRemoval,
    /// A certificate shrank while descendants still use the removed
    /// space.
    SuspectedWhack {
        /// ROAs (display strings) orphaned by the shrink.
        orphaned: Vec<String>,
    },
    /// An object whose content duplicates one at another publication
    /// point — the make-before-break fingerprint.
    SuspiciousReissue {
        /// The other publication point holding the duplicated content.
        original_dir: String,
    },
}

impl Classification {
    /// Whether this classification should alert an operator.
    pub fn is_suspicious(&self) -> bool {
        matches!(
            self,
            Classification::StealthyRemoval
                | Classification::SuspectedWhack { .. }
                | Classification::SuspiciousReissue { .. }
        )
    }

    /// A short machine-readable label for traces and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Classification::RoutineRefresh => "routine_refresh",
            Classification::Renewal => "renewal",
            Classification::NewIssuance => "new_issuance",
            Classification::RevokedRemoval => "revoked_removal",
            Classification::StealthyRemoval => "stealthy_removal",
            Classification::SuspectedWhack { .. } => "suspected_whack",
            Classification::SuspiciousReissue { .. } => "suspicious_reissue",
        }
    }
}

/// One classified change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MonitorEvent {
    /// The publication directory.
    pub dir: String,
    /// The file that changed.
    pub file: String,
    /// Direction of the change.
    pub kind: ChangeKind,
    /// The monitor's verdict.
    pub classification: Classification,
}

/// The stateful monitor: feed it snapshots, read classified events.
#[derive(Debug, Default)]
pub struct Monitor {
    last: Option<MonitorSnapshot>,
    recorder: Recorder,
}

/// Content identity of a ROA: authorization semantics, not bytes.
fn roa_key(roa: &rpki_objects::Roa) -> (Asn, Vec<RoaPrefix>) {
    let mut prefixes = roa.data().prefixes.clone();
    prefixes.sort_by_key(|rp| (rp.prefix, rp.max_len));
    (roa.asn(), prefixes)
}

impl Monitor {
    /// A monitor with no history.
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Installs an observability recorder: every classified change is
    /// counted by verdict, and suspicious verdicts additionally emit
    /// `alarm` events. Disabled by default.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Ingests a snapshot; returns the classified diff against the
    /// previous one (empty on the first call).
    pub fn observe(&mut self, snap: MonitorSnapshot) -> Vec<MonitorEvent> {
        let at = snap.when;
        let Some(old) = self.last.replace(snap) else {
            return Vec::new();
        };
        let old = &old;
        let new = self.last.as_ref().expect("just replaced");
        let mut events = Vec::new();

        // Index ROA content locations in the new snapshot.
        let mut new_roa_dirs: BTreeMap<(Asn, Vec<RoaPrefix>), Vec<&String>> = BTreeMap::new();
        for (dir, _, roa) in new.roas() {
            new_roa_dirs.entry(roa_key(roa)).or_default().push(dir);
        }
        // And in the old one (for duplicate detection).
        let mut old_roa_dirs: BTreeMap<(Asn, Vec<RoaPrefix>), Vec<&String>> = BTreeMap::new();
        for (dir, _, roa) in old.roas() {
            old_roa_dirs.entry(roa_key(roa)).or_default().push(dir);
        }

        let empty = BTreeMap::new();
        let all_dirs: Vec<&String> = old.dirs.keys().chain(new.dirs.keys()).collect();
        let mut seen_dirs: Vec<&String> = Vec::new();
        for dir in all_dirs {
            if seen_dirs.contains(&dir) {
                continue;
            }
            seen_dirs.push(dir);
            let old_files = old.dirs.get(dir).unwrap_or(&empty);
            let new_files = new.dirs.get(dir).unwrap_or(&empty);

            // The new CRLs of this dir (for revocation matching).
            let new_crls: Vec<&rpki_objects::Crl> = new_files
                .values()
                .filter_map(|o| match o {
                    RpkiObject::Crl(c) => Some(c),
                    _ => None,
                })
                .collect();
            let revoked = |serial: u64| new_crls.iter().any(|c| c.is_revoked(serial));

            // Removed and modified files.
            for (name, old_obj) in old_files {
                match new_files.get(name) {
                    Some(new_obj) if new_obj == old_obj => {}
                    Some(new_obj) => {
                        events.push(MonitorEvent {
                            dir: dir.clone(),
                            file: name.clone(),
                            kind: ChangeKind::Modified,
                            classification: classify_modification(old, old_obj, new_obj),
                        });
                    }
                    None => {
                        events.push(MonitorEvent {
                            dir: dir.clone(),
                            file: name.clone(),
                            kind: ChangeKind::Removed,
                            classification: classify_removal(dir, old_obj, new_files, &revoked),
                        });
                    }
                }
            }

            // Added files.
            for (name, new_obj) in new_files {
                if old_files.contains_key(name) {
                    continue;
                }
                events.push(MonitorEvent {
                    dir: dir.clone(),
                    file: name.clone(),
                    kind: ChangeKind::Added,
                    classification: classify_addition(
                        dir,
                        new_obj,
                        old_files,
                        &old_roa_dirs,
                        &new_roa_dirs,
                        old,
                    ),
                });
            }
        }
        if self.recorder.is_enabled() {
            for event in &events {
                self.recorder.count(&format!("monitor.{}", event.classification.label()), 1);
                if event.classification.is_suspicious() {
                    self.recorder.count("monitor.alarms", 1);
                    self.recorder
                        .event(at.0, "monitor", "alarm")
                        .str("dir", &event.dir)
                        .str("file", &event.file)
                        .str("change", event.kind.label())
                        .str("verdict", event.classification.label())
                        .emit();
                }
            }
        }
        events
    }
}

/// One transport-layer detection against a host, pulled from the
/// relying party's trace: a pinned-feed detection (`rrdp_pinned`) or
/// an RRDP→rsync downgrade (`rrdp_downgrade`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TransportEvidence {
    /// Simulated time of the detection.
    pub at: u64,
    /// `"rrdp_pinned"` or `"rrdp_downgrade"`.
    pub kind: String,
    /// The downgrade's reason label (`"pinned"`, a transport error),
    /// when the event carried one.
    pub reason: Option<String>,
}

/// Everything the monitor holds against one publication host: the
/// snapshot-diff verdicts from its directories plus the transport
/// misbehaviour the relying parties reported against it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HostReport {
    /// The accused host.
    pub host: String,
    /// Pinned-feed detections against this host.
    pub pinned_detections: usize,
    /// RRDP→rsync downgrades forced by this host.
    pub downgrades: usize,
    /// Suspicious snapshot-diff events in this host's directories.
    pub object_alarms: Vec<MonitorEvent>,
    /// The transport-layer detections, in trace order.
    pub transport: Vec<TransportEvidence>,
    /// CAs under this host's directories that a relying-party walk
    /// dropped, as `"handle (resources)"` — the object-rejection
    /// evidence from the validation layer.
    pub rejected_cas: Vec<String>,
    /// VRP display strings a relying-party run flagged *unsafe*
    /// because they overlap this host's rejected resources. Under
    /// [`rpki_rp::UnsafeVrpPolicy::Reject`] these are the payloads the
    /// misbehaving host suppressed for every relying party.
    pub unsafe_vrps: Vec<String>,
}

impl HostReport {
    /// One human-readable line naming the host and its evidence tally.
    pub fn summary_line(&self) -> String {
        format!(
            "{}: {} object alarm(s), {} pinned detection(s), {} downgrade(s), {} rejected CA(s), {} unsafe VRP(s)",
            self.host,
            self.object_alarms.len(),
            self.pinned_detections,
            self.downgrades,
            self.rejected_cas.len(),
            self.unsafe_vrps.len()
        )
    }
}

/// The merged misbehaviour artifact: every host with object-layer or
/// transport-layer evidence against it, sorted by host name.
///
/// This is the paper's monitoring scheme closed end-to-end: the
/// snapshot-diff verdicts say *what changed at rest* (a stealthy
/// removal, a whack) and the `rrdp_pinned` / `rrdp_downgrade` trace
/// events say *what the host did on the wire to hide it* — one
/// artifact names the misbehaving authority and both halves of the
/// evidence.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct MisbehaviorReport {
    /// Per-host dossiers, sorted by host name.
    pub hosts: Vec<HostReport>,
}

/// The host of a publication directory URI (`rsync://host/path`).
fn dir_host(dir: &str) -> String {
    let rest = dir.strip_prefix("rsync://").unwrap_or(dir);
    rest.split('/').next().unwrap_or(rest).to_string()
}

impl MisbehaviorReport {
    /// Merges suspicious snapshot-diff events with the `rrdp_pinned` /
    /// `rrdp_downgrade` events of a relying-party trace. Hosts with no
    /// evidence of either kind do not appear.
    pub fn build(object_events: &[MonitorEvent], trace: &[TraceEvent]) -> Self {
        let mut hosts: BTreeMap<String, HostReport> = BTreeMap::new();
        let entry = |hosts: &mut BTreeMap<String, HostReport>, host: &str| {
            hosts.entry(host.to_string()).or_insert_with(|| HostReport {
                host: host.to_string(),
                pinned_detections: 0,
                downgrades: 0,
                object_alarms: Vec::new(),
                transport: Vec::new(),
                rejected_cas: Vec::new(),
                unsafe_vrps: Vec::new(),
            });
        };
        for event in object_events {
            if !event.classification.is_suspicious() {
                continue;
            }
            let host = dir_host(&event.dir);
            entry(&mut hosts, &host);
            hosts.get_mut(&host).expect("just inserted").object_alarms.push(event.clone());
        }
        for event in trace {
            if event.layer != "rp" || !matches!(event.kind, "rrdp_pinned" | "rrdp_downgrade") {
                continue;
            }
            let field = |name: &str| {
                event.fields.iter().find_map(|(k, v)| match v {
                    FieldValue::Str(s) if *k == name => Some(s.clone()),
                    _ => None,
                })
            };
            let Some(host) = field("host") else { continue };
            entry(&mut hosts, &host);
            let report = hosts.get_mut(&host).expect("just inserted");
            match event.kind {
                "rrdp_pinned" => report.pinned_detections += 1,
                _ => report.downgrades += 1,
            }
            report.transport.push(TransportEvidence {
                at: event.at,
                kind: event.kind.to_string(),
                reason: field("reason"),
            });
        }
        MisbehaviorReport { hosts: hosts.into_values().collect() }
    }

    /// Folds a relying-party run's rejection evidence into the dossier:
    /// each [`rpki_rp::RejectedCa`] accuses the host of its publication
    /// directory, and each unsafe VRP accuses every host whose rejected
    /// resources cover it. Hosts with only validation-layer evidence
    /// are added; existing dossiers are extended in place.
    pub fn attach_validation(&mut self, run: &ValidationRun) {
        let mut hosts: BTreeMap<String, HostReport> =
            std::mem::take(&mut self.hosts).into_iter().map(|h| (h.host.clone(), h)).collect();
        for rejected in &run.rejected_cas {
            let host = dir_host(&rejected.dir);
            let report = hosts.entry(host.clone()).or_insert_with(|| HostReport {
                host: host.clone(),
                pinned_detections: 0,
                downgrades: 0,
                object_alarms: Vec::new(),
                transport: Vec::new(),
                rejected_cas: Vec::new(),
                unsafe_vrps: Vec::new(),
            });
            report.rejected_cas.push(format!("{} ({})", rejected.ca, rejected.resources));
            for vrp in &run.unsafe_vrps {
                if rejected.resources.overlaps_prefix(vrp.prefix) {
                    report.unsafe_vrps.push(vrp.to_string());
                }
            }
        }
        for report in hosts.values_mut() {
            report.unsafe_vrps.sort();
            report.unsafe_vrps.dedup();
        }
        self.hosts = hosts.into_values().collect();
    }

    /// The dossier for one host, if any evidence names it.
    pub fn host(&self, host: &str) -> Option<&HostReport> {
        self.hosts.iter().find(|h| h.host == host)
    }
}

fn classify_modification(
    old_snap: &MonitorSnapshot,
    old_obj: &RpkiObject,
    new_obj: &RpkiObject,
) -> Classification {
    match (old_obj, new_obj) {
        (RpkiObject::Crl(_), RpkiObject::Crl(_))
        | (RpkiObject::Manifest(_), RpkiObject::Manifest(_)) => Classification::RoutineRefresh,
        (RpkiObject::Cert(old_c), RpkiObject::Cert(new_c)) => {
            let old_res = &old_c.data().resources;
            let new_res = &new_c.data().resources;
            if old_res == new_res {
                return Classification::RoutineRefresh;
            }
            let removed: ResourceSet = old_res.difference(new_res);
            if removed.is_empty() {
                // Pure growth.
                return Classification::RoutineRefresh;
            }
            // Which ROAs at the subject's publication point still need
            // the removed space?
            let subject_dir = old_c.data().sia.to_string();
            let mut orphaned = Vec::new();
            if let Some(files) = old_snap.dirs.get(&subject_dir) {
                for obj in files.values() {
                    if let RpkiObject::Roa(roa) = obj {
                        let needs = roa.resources();
                        if needs.overlaps(&removed) {
                            orphaned.push(roa.to_string());
                        }
                    }
                }
            }
            if orphaned.is_empty() {
                Classification::RoutineRefresh
            } else {
                Classification::SuspectedWhack { orphaned }
            }
        }
        _ => Classification::NewIssuance, // type swap under one name: treat as new
    }
}

fn classify_removal(
    _dir: &str,
    old_obj: &RpkiObject,
    new_files: &BTreeMap<String, RpkiObject>,
    revoked: &dyn Fn(u64) -> bool,
) -> Classification {
    match old_obj {
        RpkiObject::Crl(_) | RpkiObject::Manifest(_) => Classification::RoutineRefresh,
        RpkiObject::Roa(roa) => {
            if revoked(roa.serial()) {
                return Classification::RevokedRemoval;
            }
            // Renewal: same content back under a new file name here.
            let key = roa_key(roa);
            let renewed = new_files.values().any(|o| match o {
                RpkiObject::Roa(r) => roa_key(r) == key,
                _ => false,
            });
            if renewed {
                Classification::Renewal
            } else {
                Classification::StealthyRemoval
            }
        }
        RpkiObject::Cert(cert) => {
            if revoked(cert.data().serial) {
                return Classification::RevokedRemoval;
            }
            // Key rollover: a cert for the same subject with the same
            // resources under a different (key-derived) name.
            let renewed = new_files.values().any(|o| match o {
                RpkiObject::Cert(c) => {
                    c.data().subject == cert.data().subject
                        && c.data().resources == cert.data().resources
                }
                _ => false,
            });
            if renewed {
                Classification::Renewal
            } else {
                Classification::StealthyRemoval
            }
        }
    }
}

fn classify_addition(
    dir: &str,
    new_obj: &RpkiObject,
    old_files: &BTreeMap<String, RpkiObject>,
    old_roa_dirs: &BTreeMap<(Asn, Vec<RoaPrefix>), Vec<&String>>,
    new_roa_dirs: &BTreeMap<(Asn, Vec<RoaPrefix>), Vec<&String>>,
    old_snap: &MonitorSnapshot,
) -> Classification {
    match new_obj {
        RpkiObject::Crl(_) | RpkiObject::Manifest(_) => Classification::RoutineRefresh,
        RpkiObject::Roa(roa) => {
            let key = roa_key(roa);
            // Same content previously here → renewal.
            let was_here = old_files.values().any(|o| match o {
                RpkiObject::Roa(r) => roa_key(r) == key,
                _ => false,
            });
            if was_here {
                return Classification::Renewal;
            }
            // Same content living at (or vanished from) another
            // publication point → make-before-break fingerprint.
            let elsewhere_new =
                new_roa_dirs.get(&key).into_iter().flatten().find(|d| d.as_str() != dir);
            let elsewhere_old =
                old_roa_dirs.get(&key).into_iter().flatten().find(|d| d.as_str() != dir);
            if let Some(original) = elsewhere_new.or(elsewhere_old) {
                return Classification::SuspiciousReissue { original_dir: (*original).clone() };
            }
            Classification::NewIssuance
        }
        RpkiObject::Cert(cert) => {
            // A certificate for a subject key that already has a
            // certificate at another publication point: someone is
            // adopting another CA's child (reissue-as-own).
            for (other_dir, files) in &old_snap.dirs {
                if other_dir == dir {
                    continue;
                }
                for obj in files.values() {
                    if let RpkiObject::Cert(c) = obj {
                        if c.data().subject_key == cert.data().subject_key {
                            return Classification::SuspiciousReissue {
                                original_dir: other_dir.clone(),
                            };
                        }
                    }
                }
            }
            Classification::NewIssuance
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipres::Prefix;
    use netsim::Network;
    use rpki_ca::CertAuthority;
    use rpki_objects::{RepoUri, Span};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn rs(s: &str) -> ResourceSet {
        ResourceSet::from_prefix_strs(s)
    }

    struct Rig {
        net: Network,
        repos: RepoRegistry,
        ta: CertAuthority,
        sprint: CertAuthority,
        dir: RepoUri,
    }

    fn rig(seed: &str) -> Rig {
        let mut net = Network::new(0);
        let mut repos = RepoRegistry::new();
        repos.create(&mut net, "rpki.sprint.example");
        repos.create(&mut net, "rpki.ta.example");
        let ta_dir = RepoUri::new("rpki.ta.example", &["repo"]);
        let dir = RepoUri::new("rpki.sprint.example", &["repo"]);
        let mut ta = CertAuthority::new("TA", &format!("{seed}-ta"), ta_dir);
        ta.certify_self(rs("63.0.0.0/8"), Moment(0), Span::days(3650));
        let mut sprint = CertAuthority::new("Sprint", &format!("{seed}-sprint"), dir.clone());
        let rc = ta
            .issue_cert("Sprint", sprint.public_key(), rs("63.160.0.0/12"), dir.clone(), Moment(0))
            .unwrap();
        sprint.install_cert(rc);
        Rig { net, repos, ta, sprint, dir }
    }

    fn publish(rig: &mut Rig, now: Moment) {
        let snap = rig.ta.publication_snapshot(now);
        rig.repos
            .by_host_mut("rpki.ta.example")
            .unwrap()
            .publish_snapshot(&RepoUri::new("rpki.ta.example", &["repo"]), &snap);
        let snap = rig.sprint.publication_snapshot(now);
        rig.repos.by_host_mut("rpki.sprint.example").unwrap().publish_snapshot(&rig.dir, &snap);
        let _ = &rig.net;
    }

    #[test]
    fn first_snapshot_is_quiet() {
        let mut rig = rig("m0");
        publish(&mut rig, Moment(1));
        let mut mon = Monitor::new();
        assert!(mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(1))).is_empty());
    }

    #[test]
    fn refresh_is_routine() {
        let mut rig = rig("m1");
        publish(&mut rig, Moment(1));
        let mut mon = Monitor::new();
        mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(1)));
        publish(&mut rig, Moment(2)); // CRL+manifest numbers bump
        let events = mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(2)));
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.classification == Classification::RoutineRefresh));
    }

    #[test]
    fn renewal_is_churn_not_alarm() {
        let mut rig = rig("m2");
        let roa = rig
            .sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0))
            .unwrap();
        publish(&mut rig, Moment(1));
        let mut mon = Monitor::new();
        mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(1)));
        rig.sprint.renew_roa(&roa.file_name(), Moment(50)).unwrap();
        publish(&mut rig, Moment(51));
        let events = mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(51)));
        assert!(events.iter().any(|e| e.classification == Classification::Renewal));
        assert!(events.iter().all(|e| !e.classification.is_suspicious()), "{events:?}");
    }

    #[test]
    fn stealthy_withdrawal_flagged() {
        let mut rig = rig("m3");
        let roa = rig
            .sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0))
            .unwrap();
        publish(&mut rig, Moment(1));
        let mut mon = Monitor::new();
        mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(1)));
        rig.sprint.withdraw(&roa.file_name()).unwrap();
        publish(&mut rig, Moment(2));
        let events = mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(2)));
        assert!(events.iter().any(|e| e.classification == Classification::StealthyRemoval));
    }

    #[test]
    fn recorder_counts_verdicts_and_emits_alarms() {
        let mut rig = rig("m3r");
        let roa = rig
            .sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0))
            .unwrap();
        publish(&mut rig, Moment(1));
        let rec = Recorder::new();
        let mut mon = Monitor::new();
        mon.set_recorder(rec.clone());
        mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(1)));
        rig.sprint.withdraw(&roa.file_name()).unwrap();
        publish(&mut rig, Moment(2));
        let events = mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(2)));
        let suspicious = events.iter().filter(|e| e.classification.is_suspicious()).count();
        assert!(suspicious > 0);
        assert_eq!(rec.metrics().counter("monitor.alarms"), suspicious as u64);
        assert!(rec.metrics().counter("monitor.stealthy_removal") >= 1);
        let alarms: Vec<_> = rec.events().into_iter().filter(|e| e.kind == "alarm").collect();
        assert_eq!(alarms.len(), suspicious);
        assert!(alarms.iter().all(|e| e.layer == "monitor" && e.at == 2));
    }

    #[test]
    fn transparent_revocation_not_stealthy() {
        let mut rig = rig("m4");
        let roa = rig
            .sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0))
            .unwrap();
        publish(&mut rig, Moment(1));
        let mut mon = Monitor::new();
        mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(1)));
        rig.sprint.revoke_serial(roa.serial());
        publish(&mut rig, Moment(2));
        let events = mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(2)));
        assert!(events.iter().any(|e| e.classification == Classification::RevokedRemoval));
        assert!(events.iter().all(|e| !e.classification.is_suspicious()));
    }

    #[test]
    fn shrinking_cert_with_orphans_is_suspected_whack() {
        let mut rig = rig("m5");
        // Sprint gets a child CA with a ROA, then the TA shrinks
        // Sprint's cert under that ROA's space. (Here the monitor
        // watches the TA's overwrite of Sprint's RC.)
        rig.sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0))
            .unwrap();
        publish(&mut rig, Moment(1));
        let mut mon = Monitor::new();
        mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(1)));
        // TA carves the ROA's space out of Sprint's cert.
        let carved = rs("63.160.0.0/12").difference(&rs("63.160.0.0/24"));
        rig.ta
            .issue_cert("Sprint", rig.sprint.public_key(), carved, rig.dir.clone(), Moment(2))
            .unwrap();
        publish(&mut rig, Moment(2));
        let events = mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(2)));
        let whack = events
            .iter()
            .find(|e| matches!(e.classification, Classification::SuspectedWhack { .. }));
        let whack = whack.expect("whack flagged");
        match &whack.classification {
            Classification::SuspectedWhack { orphaned } => {
                assert_eq!(orphaned.len(), 1);
                assert!(orphaned[0].contains("63.160.0.0/20"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn make_before_break_reissue_flagged() {
        let mut rig = rig("m6");
        rig.sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0))
            .unwrap();
        publish(&mut rig, Moment(1));
        let mut mon = Monitor::new();
        mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(1)));
        // The TA reissues the same authorization as its own ROA (the
        // "make" of make-before-break) at the TA's publication point.
        rig.ta.issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(2)).unwrap();
        publish(&mut rig, Moment(2));
        let events = mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(2)));
        let reissue = events
            .iter()
            .find(|e| matches!(e.classification, Classification::SuspiciousReissue { .. }))
            .expect("reissue flagged");
        match &reissue.classification {
            Classification::SuspiciousReissue { original_dir } => {
                assert_eq!(original_dir, "rsync://rpki.sprint.example/repo");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn misbehavior_report_merges_object_and_transport_evidence() {
        // Object layer: a stealthy withdrawal at Sprint's pub point.
        let mut rig = rig("m8");
        let roa = rig
            .sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0))
            .unwrap();
        publish(&mut rig, Moment(1));
        let mut mon = Monitor::new();
        mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(1)));
        rig.sprint.withdraw(&roa.file_name()).unwrap();
        publish(&mut rig, Moment(2));
        let events = mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(2)));

        // Transport layer: the relying party detected a pin on the
        // same host and downgraded, plus an unrelated flaky host.
        let rec = Recorder::new();
        rec.event(5, "rp", "rrdp_pinned").str("host", "rpki.sprint.example").emit();
        rec.event(5, "rp", "rrdp_downgrade")
            .str("host", "rpki.sprint.example")
            .str("reason", "pinned")
            .emit();
        rec.event(9, "rp", "rrdp_downgrade")
            .str("host", "rpki.flaky.example")
            .str("reason", "no_notification")
            .emit();
        rec.event(9, "net", "deliver").str("host", "rpki.sprint.example").emit();

        let report = MisbehaviorReport::build(&events, &rec.events());
        assert_eq!(report.hosts.len(), 2, "{report:?}");
        let sprint = report.host("rpki.sprint.example").expect("sprint accused");
        assert_eq!(sprint.pinned_detections, 1);
        assert_eq!(sprint.downgrades, 1);
        assert_eq!(sprint.object_alarms.len(), 1);
        assert_eq!(sprint.object_alarms[0].classification, Classification::StealthyRemoval);
        assert_eq!(sprint.transport[0].kind, "rrdp_pinned");
        assert_eq!(sprint.transport[1].reason.as_deref(), Some("pinned"));
        assert!(sprint.summary_line().starts_with("rpki.sprint.example: 1 object alarm"));
        let flaky = report.host("rpki.flaky.example").expect("flaky listed");
        assert_eq!(flaky.object_alarms.len(), 0);
        assert_eq!(flaky.downgrades, 1);
        // Routine churn and other layers' events accuse nobody.
        assert!(report.host("rpki.ta.example").is_none());
    }

    #[test]
    fn dossier_attaches_validation_rejections_and_unsafe_vrps() {
        use ipres::ResourceSet;
        use rpki_rp::{RejectedCa, Vrp};

        // A transport detection already accuses Sprint; the validation
        // run then adds a rejected CA under the same host plus one
        // under a host the monitor never saw.
        let rec = Recorder::new();
        rec.event(3, "rp", "rrdp_pinned").str("host", "rpki.sprint.example").emit();
        let mut report = MisbehaviorReport::build(&[], &rec.events());

        let mut run = ValidationRun::default();
        run.rejected_cas.push(RejectedCa {
            ca: "Continental".to_string(),
            dir: "rsync://rpki.sprint.example/repo".to_string(),
            resources: ResourceSet::from_prefix_strs("63.160.0.0/20"),
        });
        run.rejected_cas.push(RejectedCa {
            ca: "Etb".to_string(),
            dir: "rsync://rpki.quiet.example/repo".to_string(),
            resources: ResourceSet::from_prefix_strs("198.51.100.0/24"),
        });
        run.unsafe_vrps.push(Vrp::new(p("63.160.7.0/24"), 24, Asn(17054)));
        report.attach_validation(&run);

        let sprint = report.host("rpki.sprint.example").expect("sprint accused");
        assert_eq!(sprint.pinned_detections, 1, "transport evidence kept");
        assert_eq!(sprint.rejected_cas.len(), 1);
        assert!(sprint.rejected_cas[0].starts_with("Continental ("), "{:?}", sprint.rejected_cas);
        // The unsafe VRP overlaps Sprint's rejected space, not Etb's.
        assert_eq!(sprint.unsafe_vrps.len(), 1);
        let quiet = report.host("rpki.quiet.example").expect("validation-only host added");
        assert_eq!(quiet.rejected_cas.len(), 1);
        assert!(quiet.unsafe_vrps.is_empty());
        assert!(sprint.summary_line().contains("1 rejected CA(s), 1 unsafe VRP(s)"));
    }

    #[test]
    fn fresh_issuance_is_not_suspicious() {
        let mut rig = rig("m7");
        publish(&mut rig, Moment(1));
        let mut mon = Monitor::new();
        mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(1)));
        rig.sprint
            .issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.161.0.0/20"))], Moment(2))
            .unwrap();
        publish(&mut rig, Moment(2));
        let events = mon.observe(MonitorSnapshot::capture(&rig.repos, Moment(2)));
        assert!(events.iter().any(|e| e.classification == Classification::NewIssuance));
        assert!(events.iter().all(|e| !e.classification.is_suspicious()));
    }
}
