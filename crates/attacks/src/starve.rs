//! Schedule gaming: a slow-serving authority starves its neighbours.
//!
//! A fetch scheduler that budgets each run (so one sweep cannot burn
//! unbounded wall-clock) opens a new misbehaviour surface the paper's
//! §2 model predicts: an authority that *answers everything, slowly*.
//! Every response it serves is signed, fresh, and correct — it just
//! sits on each one long enough that the relying party's per-run time
//! budget is gone by the time the walk reaches the publication points
//! *behind* it in the fetch order. Those victims are never contacted,
//! never fail, and never trip a breaker; they are simply deferred,
//! round after round, served from an ageing snapshot. Stalloris'
//! slow-serve economics, moved from "stall one transfer" to "game the
//! whole schedule".
//!
//! Like [`whack`](crate::whack) and [`downgrade`](crate::downgrade),
//! the attack is packaged as an inspectable *plan* ([`StarvePlan`])
//! plus a per-round executor ([`apply_round`]): experiments and
//! monitors can reason about the window before anything touches a
//! repository. The server-side knob itself is
//! [`Repository::set_serve_delay`](rpki_repo::Repository::set_serve_delay).

use rpki_repo::RepoRegistry;

/// A slow-serve window against one repository host: between rounds
/// `from` and `to` (inclusive, 1-based like campaign rounds) the host
/// holds every response for `serve_delay` simulated seconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarvePlan {
    /// The slow-serving publication point's host name.
    pub host: String,
    /// Seconds the host sits on each response while the window is
    /// active. The attacker tunes this *under* the relying party's
    /// per-attempt deadline — a served-late answer still counts as a
    /// success, so no retry or breaker ever fires — but high enough
    /// that a handful of exchanges exhaust the scheduler's time
    /// budget.
    pub serve_delay: u64,
    /// First affected round.
    pub from: usize,
    /// Last affected round.
    pub to: usize,
}

impl StarvePlan {
    /// A window of `serve_delay`-second responses over rounds
    /// `from..=to`.
    pub fn new(host: &str, serve_delay: u64, from: usize, to: usize) -> Self {
        StarvePlan { host: host.to_owned(), serve_delay, from, to }
    }

    /// The canonical schedule-gaming window: a mid-campaign stretch of
    /// responses slow enough to burn a 600-second run budget in one
    /// publication point's worth of exchanges, yet comfortably inside
    /// a 300-second per-attempt deadline per frame.
    pub fn stalloris(host: &str) -> Self {
        StarvePlan::new(host, 250, 4, 9)
    }

    /// Whether the window covers `round`.
    pub fn active(&self, round: usize) -> bool {
        self.from <= round && round <= self.to
    }
}

/// Applies `plan` for `round`: arms the host's serve delay while the
/// window is active, clears it otherwise. Idempotent per round, so a
/// campaign loop can call it unconditionally. Returns `false` (and
/// does nothing) if the registry has no such host.
pub fn apply_round(repos: &mut RepoRegistry, plan: &StarvePlan, round: usize) -> bool {
    let Some(repo) = repos.by_host_mut(&plan.host) else { return false };
    repo.set_serve_delay(if plan.active(round) { plan.serve_delay } else { 0 });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use rpki_objects::RepoUri;
    use rpki_repo::sync_dir;

    #[test]
    fn unknown_host_is_a_noop() {
        let mut repos = RepoRegistry::new();
        assert!(!apply_round(&mut repos, &StarvePlan::stalloris("nope.example"), 4));
    }

    #[test]
    fn window_arms_and_clears_the_serve_delay() {
        let mut net = Network::new(0);
        let client = net.add_node("rp");
        let mut repos = RepoRegistry::new();
        repos.create(&mut net, "slow.example");
        let dir = RepoUri::new("slow.example", &["repo"]);
        repos.by_host_mut("slow.example").unwrap().publish_raw(&dir, "a.roa", vec![1]);
        let plan = StarvePlan::new("slow.example", 500, 2, 3);

        // Round 1: window not yet open, the sync is prompt.
        assert!(apply_round(&mut repos, &plan, 1));
        let before = net.now();
        assert!(sync_dir(&mut net, &repos, client, &dir).is_complete());
        let prompt = net.now() - before;
        assert!(prompt < 500, "no delay outside the window (took {prompt}s)");

        // Round 2: every response now sits on the server for 500s —
        // and still arrives complete. Slow is not down.
        assert!(apply_round(&mut repos, &plan, 2));
        let before = net.now();
        assert!(sync_dir(&mut net, &repos, client, &dir).is_complete());
        assert!(net.now() - before >= 500, "each response held for the serve delay");

        // Round 4: past the window, the host behaves again.
        assert!(apply_round(&mut repos, &plan, 4));
        let before = net.now();
        assert!(sync_dir(&mut net, &repos, client, &dir).is_complete());
        assert!(net.now() - before < 500);
    }

    #[test]
    fn plans_are_inspectable() {
        let plan = StarvePlan::stalloris("rpki.sprint.example");
        assert!(!plan.active(3) && plan.active(4) && plan.active(9) && !plan.active(10));
        assert!(plan.serve_delay < 300, "stays under a default per-attempt deadline");
    }
}
