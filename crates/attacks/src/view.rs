//! The manipulator's view of a descendant CA.
//!
//! Everything a whack planner needs is *public*: RPKI repositories are
//! world-readable, so a manipulator can enumerate exactly which objects
//! its descendants have issued and compute carve-outs offline. A
//! [`CaView`] is that public picture of one CA.

use ipres::ResourceSet;
use rpki_objects::{Decode, RepoUri, ResourceCert, Roa, RpkiObject};
use rpki_repo::RepoRegistry;
use rpkisim_crypto::PublicKey;

/// The public picture of one CA: its certificate (as published by its
/// parent) and the objects at its publication point.
#[derive(Debug, Clone)]
pub struct CaView {
    /// Subject handle, from the certificate (reporting only).
    pub handle: String,
    /// The CA's public key.
    pub subject_key: PublicKey,
    /// Resources its current certificate grants.
    pub resources: ResourceSet,
    /// Its publication directory.
    pub sia: RepoUri,
    /// Child certificates found at its publication point.
    pub child_certs: Vec<ResourceCert>,
    /// ROAs found at its publication point.
    pub roas: Vec<Roa>,
}

impl CaView {
    /// Builds the view of the CA certified by `cert`, reading its
    /// publication point from the world's repositories.
    pub fn from_repos(cert: &ResourceCert, repos: &RepoRegistry) -> CaView {
        let sia = cert.data().sia.clone();
        let mut child_certs = Vec::new();
        let mut roas = Vec::new();
        if let Some(repo) = repos.by_host(sia.host()) {
            for (name, _) in repo.list(&sia) {
                let Some(bytes) = repo.fetch(&sia, &name) else { continue };
                match RpkiObject::from_bytes(bytes) {
                    Ok(RpkiObject::Cert(c)) => child_certs.push(c),
                    Ok(RpkiObject::Roa(r)) => roas.push(r),
                    _ => {}
                }
            }
        }
        CaView {
            handle: cert.data().subject.clone(),
            subject_key: cert.data().subject_key,
            resources: cert.data().resources.clone(),
            sia,
            child_certs,
            roas,
        }
    }

    /// The union of resources used by every object this CA issued,
    /// except the ROA named `except_file` (the whack target). This is
    /// the space the manipulator must *keep* to avoid collateral.
    pub fn resources_needed_except(&self, except_file: &str) -> ResourceSet {
        let mut needed = ResourceSet::empty();
        for c in &self.child_certs {
            needed = needed.union(&c.data().resources);
        }
        for r in &self.roas {
            if r.file_name() != except_file {
                needed = needed.union(&r.resources());
            }
        }
        needed
    }

    /// The ROAs (by file name) and child certs (by subject handle)
    /// whose resources overlap `space` — the objects damaged if `space`
    /// is carved away.
    pub fn overlapping(&self, space: &ResourceSet) -> (Vec<&Roa>, Vec<&ResourceCert>) {
        let roas = self.roas.iter().filter(|r| r.resources().overlaps(space)).collect();
        let certs =
            self.child_certs.iter().filter(|c| c.data().resources.overlaps(space)).collect();
        (roas, certs)
    }

    /// Finds a ROA at this publication point by file name.
    pub fn roa(&self, file_name: &str) -> Option<&Roa> {
        self.roas.iter().find(|r| r.file_name() == file_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipres::{Asn, Prefix};
    use netsim::Network;
    use rpki_ca::CertAuthority;
    use rpki_objects::{Moment, RoaPrefix, Span};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn rs(s: &str) -> ResourceSet {
        ResourceSet::from_prefix_strs(s)
    }

    #[test]
    fn view_reads_publication_point() {
        let mut net = Network::new(0);
        let mut repos = RepoRegistry::new();
        repos.create(&mut net, "rpki.sprint.example");
        let dir = RepoUri::new("rpki.sprint.example", &["repo"]);

        let mut ta = CertAuthority::new("TA", "v-ta", RepoUri::new("rpki.ta.example", &["repo"]));
        ta.certify_self(rs("63.0.0.0/8"), Moment(0), Span::days(3650));
        let mut sprint = CertAuthority::new("Sprint", "v-sprint", dir.clone());
        let rc = ta
            .issue_cert("Sprint", sprint.public_key(), rs("63.160.0.0/12"), dir.clone(), Moment(0))
            .unwrap();
        sprint.install_cert(rc.clone());
        sprint.issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0)).unwrap();
        let roa2 = sprint
            .issue_roa(Asn(7341), vec![RoaPrefix::exact(p("63.161.0.0/20"))], Moment(0))
            .unwrap();
        let snap = sprint.publication_snapshot(Moment(1));
        repos.by_host_mut("rpki.sprint.example").unwrap().publish_snapshot(&dir, &snap);

        let view = CaView::from_repos(&rc, &repos);
        assert_eq!(view.handle, "Sprint");
        assert_eq!(view.roas.len(), 2);
        assert!(view.child_certs.is_empty());
        assert_eq!(view.resources, rs("63.160.0.0/12"));
        assert!(view.roa(&roa2.file_name()).is_some());
        assert!(view.roa("nope.roa").is_none());

        // Needed-except excludes exactly the target.
        let needed = view.resources_needed_except(&roa2.file_name());
        assert_eq!(needed, rs("63.160.0.0/20"));

        // Overlap queries.
        let (roas, certs) = view.overlapping(&rs("63.161.0.0/24"));
        assert_eq!(roas.len(), 1);
        assert_eq!(roas[0].asn(), Asn(7341));
        assert!(certs.is_empty());
        let (roas, _) = view.overlapping(&rs("63.170.0.0/16"));
        assert!(roas.is_empty());
    }

    #[test]
    fn view_of_unpublished_ca_is_empty() {
        let mut net = Network::new(0);
        let mut repos = RepoRegistry::new();
        repos.create(&mut net, "h");
        let mut ta = CertAuthority::new("TA", "v2-ta", RepoUri::new("h", &["ta"]));
        ta.certify_self(rs("10.0.0.0/8"), Moment(0), Span::days(10));
        let child = CertAuthority::new("C", "v2-c", RepoUri::new("absent.example", &["repo"]));
        let rc = ta
            .issue_cert("C", child.public_key(), rs("10.0.0.0/16"), child.sia().clone(), Moment(0))
            .unwrap();
        let view = CaView::from_repos(&rc, &repos);
        assert!(view.roas.is_empty());
        assert!(view.child_certs.is_empty());
        assert!(view.resources_needed_except("x").is_empty());
    }
}
