//! Whack planning and execution.
//!
//! The planner answers the paper's Section 3.1 question: *how does a
//! manipulator invalidate one specific descendant ROA while leaving
//! everything else standing?* It works entirely from public repository
//! state ([`CaView`]s), exactly as a real manipulator would, and emits a
//! step list an executor applies to the manipulator's own
//! [`CertAuthority`].
//!
//! ## The carve
//!
//! A ROA is valid only while its EE resources are contained in the
//! issuing CA's certificate, transitively up to the trust anchor.
//! Removing *any* sliver of the target ROA's address space from an
//! ancestor RC therefore invalidates the whole target. The planner
//! looks for a sliver that overlaps **nothing else** below the
//! manipulated certificate:
//!
//! - found → a zero-collateral carve (Side Effect 3; paper's example
//!   removes one /24 from a /20);
//! - not found → make-before-break (Figure 3): reissue every object
//!   the carve would damage as the manipulator's own, *then* carve.
//!
//! Targets deeper than grandchild level (Side Effect 4) force the
//! manipulator to also reissue each intermediate CA's certificate as
//! its own child — the chain of "suspiciously-reissued objects" that
//! makes deep whacks easier to detect.

use ipres::{Asn, Prefix, ResourceSet};
use rpki_ca::{CertAuthority, IssueError};
use rpki_objects::{Moment, RepoUri, RoaPrefix};
use rpkisim_crypto::PublicKey;
use serde::Serialize;

use crate::view::CaView;

/// One action in a whack plan, applied by the manipulator's CA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhackStep {
    /// Overwrite the manipulator's direct child RC (same subject key,
    /// same file name, reduced resources).
    OverwriteChildCert {
        /// Child handle (for the reissued certificate's subject).
        handle: String,
        /// The child's (unchanged) key.
        subject_key: PublicKey,
        /// The carved-down resource set.
        new_resources: ResourceSet,
        /// The child's (unchanged) publication directory.
        sia: RepoUri,
    },
    /// Reissue a descendant CA's certificate as the manipulator's *own*
    /// child — the make-before-break move for intermediate CAs and
    /// damaged sibling sub-CAs.
    ReissueCertAsOwn {
        /// The descendant's handle.
        handle: String,
        /// The descendant's (unchanged) key.
        subject_key: PublicKey,
        /// Resources for the reissued certificate.
        resources: ResourceSet,
        /// The descendant's (unchanged) publication directory.
        sia: RepoUri,
    },
    /// Reissue a damaged descendant ROA under the manipulator's own
    /// publication point (same authorization content, new EE identity).
    ReissueRoaAsOwn {
        /// The origin AS the ROA authorises.
        asn: Asn,
        /// The authorised prefixes.
        prefixes: Vec<RoaPrefix>,
    },
}

/// A complete whack plan.
#[derive(Debug, Clone)]
pub struct WhackPlan {
    /// Display name of the target ROA.
    pub target: String,
    /// The address space carved out of the chain.
    pub carved: ResourceSet,
    /// Steps, in execution order (make before break).
    pub steps: Vec<WhackStep>,
    /// Number of suspicious reissues the plan requires — the paper's
    /// detectability metric. Zero for a clean grandchild carve.
    pub reissued: usize,
    /// ROAs (by display string) damaged and *not* repaired by the plan.
    /// Always empty for plans this planner emits; kept so ablations can
    /// model cruder manipulators.
    pub collateral: Vec<String>,
}

/// Why planning failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum WhackError {
    /// The chain of views was empty.
    EmptyChain,
    /// No ROA with the given file name at the last chain element.
    TargetNotFound(String),
    /// The chain is inconsistent: some element's resources are not
    /// contained in its predecessor's.
    BrokenChain(usize),
}

impl std::fmt::Display for WhackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WhackError::EmptyChain => f.write_str("empty CA chain"),
            WhackError::TargetNotFound(name) => write!(f, "no ROA named {name:?} at chain end"),
            WhackError::BrokenChain(i) => write!(f, "chain element {i} not within its parent"),
        }
    }
}

impl std::error::Error for WhackError {}

/// Granularity of the carve: the paper notes /24 is the smallest
/// globally-routable IPv4 prefix, so manipulations are naturally
/// /24-grained.
const CARVE_LEN_V4: u8 = 24;

/// Candidate carve units inside `space`: each canonical tile, narrowed
/// to a single /24 where the tile is coarser (v4; v6 tiles are used
/// whole — the paper's analysis is IPv4).
fn carve_candidates(space: &ResourceSet) -> Vec<ResourceSet> {
    let mut out = Vec::new();
    for tile in space.to_prefixes() {
        if tile.family() == ipres::Family::V4 && tile.len() < CARVE_LEN_V4 {
            // The first and last /24 of the tile: two cheap, distinct
            // candidates per tile.
            let first = Prefix::new(tile.addr(), CARVE_LEN_V4);
            out.push(ResourceSet::from_prefix(first));
            let last_addr = Prefix::new(tile.last(), CARVE_LEN_V4);
            if last_addr != first {
                out.push(ResourceSet::from_prefix(last_addr));
            }
        } else {
            out.push(ResourceSet::from_prefix(tile));
        }
    }
    out
}

/// Plans the whack of the ROA named `target_file`, published by the CA
/// at the end of `chain`.
///
/// `chain[0]` must be the manipulator's *direct child* (the certificate
/// the manipulator itself issued and can overwrite); each subsequent
/// element is certified by its predecessor. For a grandchild target the
/// chain has one element.
pub fn plan_whack(chain: &[CaView], target_file: &str) -> Result<WhackPlan, WhackError> {
    if chain.is_empty() {
        return Err(WhackError::EmptyChain);
    }
    for i in 1..chain.len() {
        if !chain[i - 1].resources.contains_set(&chain[i].resources) {
            return Err(WhackError::BrokenChain(i));
        }
    }
    let issuer = chain.last().expect("non-empty");
    let target = issuer
        .roa(target_file)
        .ok_or_else(|| WhackError::TargetNotFound(target_file.to_owned()))?
        .clone();
    let target_res = target.resources();

    // Space needed by everything else below the manipulated cert: the
    // other objects of every chain CA (the next chain RC is *ours* to
    // reissue, so its needs are represented by the deeper levels
    // directly).
    let mut forbidden = ResourceSet::empty();
    for (i, ca) in chain.iter().enumerate() {
        let next_key = chain.get(i + 1).map(|c| c.subject_key);
        for cert in &ca.child_certs {
            if Some(cert.data().subject_key) == next_key {
                continue; // the chain RC itself
            }
            forbidden = forbidden.union(&cert.data().resources);
        }
        for roa in &ca.roas {
            if i == chain.len() - 1 && roa.file_name() == target_file {
                continue; // the target
            }
            forbidden = forbidden.union(&roa.resources());
        }
    }

    let free = target_res.difference(&forbidden);
    let (carved, damaged_space) = if !free.is_empty() {
        // Zero-collateral carve: the smallest candidate inside the free
        // space.
        let carve = carve_candidates(&free)
            .into_iter()
            .min_by_key(|s| s.size())
            .expect("free space non-empty");
        (carve, ResourceSet::empty())
    } else {
        // Make-before-break: pick the carve unit damaging the fewest
        // sibling objects.
        let best = carve_candidates(&target_res)
            .into_iter()
            .min_by_key(|s| {
                let damaged: usize = chain
                    .iter()
                    .map(|ca| {
                        let (roas, certs) = ca.overlapping(s);
                        // Exclude target and chain RCs from the count.
                        let roas = roas.iter().filter(|r| r.file_name() != target_file).count();
                        roas + certs.len()
                    })
                    .sum();
                (damaged, s.size())
            })
            .expect("target resources non-empty");
        (best.clone(), best)
    };

    let mut steps = Vec::new();
    let mut reissued = 0usize;

    // Make: repair everything the carve damages, bottom level first is
    // not required (objects are independent once reissued by us), but
    // deterministic order helps tests.
    for (i, ca) in chain.iter().enumerate() {
        let next_key = chain.get(i + 1).map(|c| c.subject_key);
        let (roas, certs) = ca.overlapping(&damaged_space);
        for roa in roas {
            if i == chain.len() - 1 && roa.file_name() == target_file {
                continue;
            }
            steps.push(WhackStep::ReissueRoaAsOwn {
                asn: roa.asn(),
                prefixes: roa.data().prefixes.clone(),
            });
            reissued += 1;
        }
        for cert in certs {
            if Some(cert.data().subject_key) == next_key {
                continue; // handled as an intermediate below
            }
            steps.push(WhackStep::ReissueCertAsOwn {
                handle: cert.data().subject.clone(),
                subject_key: cert.data().subject_key,
                resources: cert.data().resources.clone(),
                sia: cert.data().sia.clone(),
            });
            reissued += 1;
        }
    }

    // Intermediate chain CAs (everything past the direct child) must be
    // reissued as our own children, minus the carved space.
    for ca in &chain[1..] {
        steps.push(WhackStep::ReissueCertAsOwn {
            handle: ca.handle.clone(),
            subject_key: ca.subject_key,
            resources: ca.resources.difference(&carved),
            sia: ca.sia.clone(),
        });
        reissued += 1;
    }

    // Break: overwrite the direct child's certificate.
    steps.push(WhackStep::OverwriteChildCert {
        handle: chain[0].handle.clone(),
        subject_key: chain[0].subject_key,
        new_resources: chain[0].resources.difference(&carved),
        sia: chain[0].sia.clone(),
    });

    Ok(WhackPlan { target: target.to_string(), carved, steps, reissued, collateral: Vec::new() })
}

impl WhackPlan {
    /// Executes the plan against the manipulator's CA. Returns a
    /// human-readable action log. The manipulator must republish its
    /// snapshot afterwards for the whack to reach relying parties.
    pub fn execute(
        &self,
        manipulator: &mut CertAuthority,
        now: Moment,
    ) -> Result<Vec<String>, IssueError> {
        let mut log = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            match step {
                WhackStep::OverwriteChildCert { handle, subject_key, new_resources, sia } => {
                    manipulator.issue_cert(
                        handle,
                        *subject_key,
                        new_resources.clone(),
                        sia.clone(),
                        now,
                    )?;
                    log.push(format!("overwrote RC of {handle} with {new_resources}"));
                }
                WhackStep::ReissueCertAsOwn { handle, subject_key, resources, sia } => {
                    manipulator.issue_cert(
                        handle,
                        *subject_key,
                        resources.clone(),
                        sia.clone(),
                        now,
                    )?;
                    log.push(format!("reissued RC of {handle} as own child"));
                }
                WhackStep::ReissueRoaAsOwn { asn, prefixes } => {
                    manipulator.issue_roa(*asn, prefixes.clone(), now)?;
                    log.push(format!("reissued ROA for {asn} as own"));
                }
            }
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipres::Prefix;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn rs(s: &str) -> ResourceSet {
        ResourceSet::from_prefix_strs(s)
    }

    #[test]
    fn carve_candidates_narrow_to_slash24() {
        let cands = carve_candidates(&rs("63.174.16.0/20"));
        assert!(cands.contains(&rs("63.174.16.0/24")));
        assert!(cands.contains(&rs("63.174.31.0/24")));
        for c in &cands {
            assert_eq!(c.size(), 256);
        }
    }

    #[test]
    fn carve_candidates_keep_fine_tiles() {
        let cands = carve_candidates(&rs("10.0.0.0/26"));
        assert_eq!(cands, vec![rs("10.0.0.0/26")]);
    }

    #[test]
    fn carve_candidates_v6_tiles_whole() {
        let space = ResourceSet::from_prefix(p("2001:db8::/32"));
        let cands = carve_candidates(&space);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0], space);
    }

    #[test]
    fn empty_chain_rejected() {
        assert_eq!(plan_whack(&[], "x.roa").unwrap_err(), WhackError::EmptyChain);
    }
}
