//! Decoder robustness: repositories are untrusted byte stores and the
//! network corrupts frames, so every decoder must be total — any input
//! either decodes or returns an error, never panics, and decoded values
//! re-encode canonically.

use ipres::{Asn, AsnSet, ResourceSet};
use proptest::prelude::*;
use rpki_objects::{
    CertData, Crl, CrlData, Decode, Encode, Manifest, ManifestData, ManifestEntry, Moment, RepoUri,
    ResourceCert, Roa, RoaData, RoaPrefix, RpkiObject, Span, Validity,
};
use rpkisim_crypto::{sha256, KeyPair};

fn valid_object() -> RpkiObject {
    let ca = KeyPair::from_seed("robustness-ca");
    let ee = KeyPair::from_seed("robustness-ee");
    let roa = Roa::issue(
        RoaData {
            asn: Asn(64500),
            prefixes: vec![
                RoaPrefix::up_to("10.0.0.0/16".parse().unwrap(), 24),
                RoaPrefix::exact("2001:db8::/32".parse().unwrap()),
            ],
        },
        5,
        Validity::starting(Moment(0), Span::days(30)),
        &ca,
        &ee,
    );
    let _ = CertData {
        serial: 0,
        subject: String::new(),
        subject_key: ca.public(),
        resources: ResourceSet::empty(),
        as_resources: AsnSet::empty(),
        validity: Validity::starting(Moment(0), Span(1)),
        issuer_key: ca.id(),
        sia: RepoUri::new("h", &[]),
        crl_dp: None,
    };
    RpkiObject::Roa(roa)
}

/// An arbitrary *valid* object of any family — certificate, ROA, CRL,
/// or manifest — with seeded contents. Everything the generators below
/// assert about these objects holds for every signer output the
/// workspace can produce.
fn arb_valid_object() -> impl Strategy<Value = RpkiObject> {
    (
        0u8..4,
        any::<u64>(),
        0u64..1_000_000_000,
        proptest::collection::vec((any::<u64>(), any::<u8>()), 1..8),
    )
        .prop_map(|(family, seed, t, items)| {
            let ca = KeyPair::from_seed(&format!("arb-ca-{}", seed % 13));
            let validity = Validity::starting(Moment(t), Span::days(1 + (seed % 3650)));
            match family {
                0 => {
                    let child = KeyPair::from_seed(&format!("arb-child-{}", seed % 7));
                    RpkiObject::Cert(ResourceCert::sign(
                        CertData {
                            serial: seed,
                            subject: format!("subject-{}", seed % 97),
                            subject_key: child.public(),
                            resources: ResourceSet::from_prefix_strs("10.0.0.0/8"),
                            as_resources: AsnSet::empty(),
                            validity,
                            issuer_key: ca.id(),
                            sia: RepoUri::new("host.example", &["repo", "sub"]),
                            crl_dp: (seed % 2 == 0)
                                .then(|| RepoUri::new("host.example", &["repo"])),
                        },
                        &ca,
                    ))
                }
                1 => {
                    let ee = KeyPair::from_seed(&format!("arb-ee-{}", seed % 7));
                    let prefixes = items
                        .iter()
                        .map(|(v, m)| {
                            let p = format!("10.{}.{}.0/24", v % 256, (v >> 8) % 256)
                                .parse()
                                .expect("literal prefix");
                            if m % 2 == 0 {
                                RoaPrefix::exact(p)
                            } else {
                                RoaPrefix::up_to(p, 24 + (m % 9))
                            }
                        })
                        .collect();
                    RpkiObject::Roa(Roa::issue(
                        RoaData { asn: Asn((seed % 65_536) as u32), prefixes },
                        seed,
                        validity,
                        &ca,
                        &ee,
                    ))
                }
                2 => {
                    let mut revoked: Vec<u64> = items.iter().map(|(v, _)| *v).collect();
                    revoked.sort_unstable();
                    revoked.dedup();
                    RpkiObject::Crl(Crl::sign(
                        CrlData {
                            issuer_key: ca.id(),
                            number: seed,
                            this_update: Moment(t),
                            next_update: Moment(t) + Span::days(7),
                            revoked,
                        },
                        &ca,
                    ))
                }
                _ => {
                    let entries = items
                        .iter()
                        .enumerate()
                        .map(|(i, (v, _))| ManifestEntry {
                            name: format!("file-{i}-{}.roa", v % 100),
                            hash: sha256(&v.to_be_bytes()),
                        })
                        .collect();
                    RpkiObject::Manifest(Manifest::sign(
                        ManifestData {
                            issuer_key: ca.id(),
                            number: seed,
                            this_update: Moment(t),
                            next_update: Moment(t) + Span::days(7),
                            entries,
                        },
                        &ca,
                    ))
                }
            }
        })
}

proptest! {
    /// Every valid encoding of every object family round-trips
    /// byte-identically: decode inverts encode, and re-encoding the
    /// decoded value reproduces the original bytes exactly.
    #[test]
    fn valid_encodings_round_trip_byte_identically(obj in arb_valid_object()) {
        let bytes = obj.to_bytes();
        let decoded = RpkiObject::from_bytes(&bytes).expect("valid object decodes");
        prop_assert_eq!(&decoded, &obj);
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    /// Bit-flips of *any* family's valid encoding never panic any
    /// decoder (the narrow `valid_object` flip test below additionally
    /// checks aliasing on a fixed ROA).
    #[test]
    fn bitflips_of_any_family_never_panic(
        obj in arb_valid_object(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = obj.to_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let _ = RpkiObject::from_bytes(&bytes);
        let _ = ResourceCert::from_bytes(&bytes);
        let _ = Roa::from_bytes(&bytes);
        let _ = Crl::from_bytes(&bytes);
        let _ = Manifest::from_bytes(&bytes);
    }
}

proptest! {
    /// Arbitrary bytes never panic any decoder.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = RpkiObject::from_bytes(&bytes);
        let _ = ResourceCert::from_bytes(&bytes);
        let _ = Roa::from_bytes(&bytes);
        let _ = Crl::from_bytes(&bytes);
        let _ = Manifest::from_bytes(&bytes);
        let _ = RepoUri::from_bytes(&bytes);
    }

    /// Single-byte corruptions of a valid object either fail to decode
    /// or decode to a *different* value (no silent aliasing), and when
    /// they decode, re-encoding is canonical (round-trip stable).
    #[test]
    fn bitflips_never_alias(pos in 0usize..usize::MAX, bit in 0u8..8) {
        let obj = valid_object();
        let bytes = obj.to_bytes();
        let pos = pos % bytes.len();
        let mut mutated = bytes.clone();
        mutated[pos] ^= 1 << bit;
        match RpkiObject::from_bytes(&mutated) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert_ne!(&decoded, &obj, "corruption at byte {} aliased", pos);
                // Canonical re-encode.
                let re = decoded.to_bytes();
                let re2 = RpkiObject::from_bytes(&re).expect("canonical bytes decode");
                prop_assert_eq!(decoded, re2);
            }
        }
    }

    /// Truncations never panic and never decode successfully (a prefix
    /// of a canonical encoding is never itself canonical, because the
    /// outer value must consume all input).
    #[test]
    fn truncations_fail_cleanly(cut in 0usize..usize::MAX) {
        let obj = valid_object();
        let bytes = obj.to_bytes();
        let cut = cut % bytes.len(); // strictly shorter
        prop_assert!(RpkiObject::from_bytes(&bytes[..cut]).is_err());
    }

    /// Appending garbage to a canonical encoding is always rejected
    /// (trailing bytes are an error, which is what lets signatures be
    /// computed over exact byte strings).
    #[test]
    fn trailing_garbage_rejected(extra in proptest::collection::vec(any::<u8>(), 1..16)) {
        let obj = valid_object();
        let mut bytes = obj.to_bytes();
        bytes.extend_from_slice(&extra);
        prop_assert!(RpkiObject::from_bytes(&bytes).is_err());
    }
}
