//! Decoder robustness: repositories are untrusted byte stores and the
//! network corrupts frames, so every decoder must be total — any input
//! either decodes or returns an error, never panics, and decoded values
//! re-encode canonically.

use proptest::prelude::*;
use rpki_objects::{
    Crl, Decode, Encode, Manifest, Moment, RepoUri, ResourceCert, Roa, RpkiObject, Span,
};

fn valid_object() -> RpkiObject {
    use ipres::{Asn, AsnSet, ResourceSet};
    use rpki_objects::{CertData, RoaData, RoaPrefix, Validity};
    use rpkisim_crypto::KeyPair;

    let ca = KeyPair::from_seed("robustness-ca");
    let ee = KeyPair::from_seed("robustness-ee");
    let roa = Roa::issue(
        RoaData {
            asn: Asn(64500),
            prefixes: vec![
                RoaPrefix::up_to("10.0.0.0/16".parse().unwrap(), 24),
                RoaPrefix::exact("2001:db8::/32".parse().unwrap()),
            ],
        },
        5,
        Validity::starting(Moment(0), Span::days(30)),
        &ca,
        &ee,
    );
    let _ = CertData {
        serial: 0,
        subject: String::new(),
        subject_key: ca.public(),
        resources: ResourceSet::empty(),
        as_resources: AsnSet::empty(),
        validity: Validity::starting(Moment(0), Span(1)),
        issuer_key: ca.id(),
        sia: RepoUri::new("h", &[]),
        crl_dp: None,
    };
    RpkiObject::Roa(roa)
}

proptest! {
    /// Arbitrary bytes never panic any decoder.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = RpkiObject::from_bytes(&bytes);
        let _ = ResourceCert::from_bytes(&bytes);
        let _ = Roa::from_bytes(&bytes);
        let _ = Crl::from_bytes(&bytes);
        let _ = Manifest::from_bytes(&bytes);
        let _ = RepoUri::from_bytes(&bytes);
    }

    /// Single-byte corruptions of a valid object either fail to decode
    /// or decode to a *different* value (no silent aliasing), and when
    /// they decode, re-encoding is canonical (round-trip stable).
    #[test]
    fn bitflips_never_alias(pos in 0usize..usize::MAX, bit in 0u8..8) {
        let obj = valid_object();
        let bytes = obj.to_bytes();
        let pos = pos % bytes.len();
        let mut mutated = bytes.clone();
        mutated[pos] ^= 1 << bit;
        match RpkiObject::from_bytes(&mutated) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert_ne!(&decoded, &obj, "corruption at byte {} aliased", pos);
                // Canonical re-encode.
                let re = decoded.to_bytes();
                let re2 = RpkiObject::from_bytes(&re).expect("canonical bytes decode");
                prop_assert_eq!(decoded, re2);
            }
        }
    }

    /// Truncations never panic and never decode successfully (a prefix
    /// of a canonical encoding is never itself canonical, because the
    /// outer value must consume all input).
    #[test]
    fn truncations_fail_cleanly(cut in 0usize..usize::MAX) {
        let obj = valid_object();
        let bytes = obj.to_bytes();
        let cut = cut % bytes.len(); // strictly shorter
        prop_assert!(RpkiObject::from_bytes(&bytes[..cut]).is_err());
    }

    /// Appending garbage to a canonical encoding is always rejected
    /// (trailing bytes are an error, which is what lets signatures be
    /// computed over exact byte strings).
    #[test]
    fn trailing_garbage_rejected(extra in proptest::collection::vec(any::<u8>(), 1..16)) {
        let obj = valid_object();
        let mut bytes = obj.to_bytes();
        bytes.extend_from_slice(&extra);
        prop_assert!(RpkiObject::from_bytes(&bytes).is_err());
    }
}
