//! Simulated wall-clock time.
//!
//! RPKI objects carry validity windows; ROA expiry and delayed renewal
//! are one of the paper's triggers for Side Effect 6 ("the renewal of an
//! expiring ROA could be delayed, accidentally or maliciously"). The
//! whole workspace shares this simple second-granular clock type; the
//! discrete-event simulator advances a `Moment` deterministically.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::codec::{Decode, DecodeError, Encode, Reader};

/// An instant of simulated time, in seconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Moment(pub u64);

/// A span of simulated time, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Span(pub u64);

impl Span {
    /// `n` seconds.
    pub const fn seconds(n: u64) -> Self {
        Span(n)
    }

    /// `n` hours.
    pub const fn hours(n: u64) -> Self {
        Span(n * 3600)
    }

    /// `n` days.
    pub const fn days(n: u64) -> Self {
        Span(n * 86_400)
    }
}

impl Moment {
    /// The simulation epoch.
    pub const EPOCH: Moment = Moment(0);

    /// Seconds since the epoch.
    #[inline]
    pub const fn secs(self) -> u64 {
        self.0
    }
}

impl Add<Span> for Moment {
    type Output = Moment;

    fn add(self, rhs: Span) -> Moment {
        Moment(self.0 + rhs.0)
    }
}

impl Sub<Span> for Moment {
    type Output = Moment;

    fn sub(self, rhs: Span) -> Moment {
        Moment(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Moment> for Moment {
    type Output = Span;

    fn sub(self, rhs: Moment) -> Span {
        Span(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Moment {
    /// Renders as `d+hh:mm:ss` of simulated time.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.0 / 86_400;
        let rem = self.0 % 86_400;
        write!(f, "{}+{:02}:{:02}:{:02}", days, rem / 3600, (rem % 3600) / 60, rem % 60)
    }
}

/// An inclusive validity window `[not_before, not_after]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Validity {
    /// First instant at which the object is valid.
    pub not_before: Moment,
    /// Last instant at which the object is valid.
    pub not_after: Moment,
}

impl Validity {
    /// Builds a window.
    ///
    /// # Panics
    ///
    /// Panics if `not_before > not_after`.
    pub fn new(not_before: Moment, not_after: Moment) -> Self {
        assert!(not_before <= not_after, "inverted validity window");
        Validity { not_before, not_after }
    }

    /// A window starting at `from` and lasting `span`.
    pub fn starting(from: Moment, span: Span) -> Self {
        Validity::new(from, from + span)
    }

    /// Whether `at` falls inside the window.
    pub fn contains(&self, at: Moment) -> bool {
        self.not_before <= at && at <= self.not_after
    }

    /// Whether the window has expired by `at`.
    pub fn expired_at(&self, at: Moment) -> bool {
        at > self.not_after
    }

    /// Whether `other` lies entirely within `self` (issuers should not
    /// outlive their issued objects).
    pub fn encloses(&self, other: &Validity) -> bool {
        self.not_before <= other.not_before && other.not_after <= self.not_after
    }
}

impl Encode for Moment {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for Moment {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Moment(r.u64()?))
    }
}

impl Encode for Validity {
    fn encode(&self, out: &mut Vec<u8>) {
        self.not_before.encode(out);
        self.not_after.encode(out);
    }
}

impl Decode for Validity {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let not_before = Moment::decode(r)?;
        let not_after = Moment::decode(r)?;
        if not_before > not_after {
            return Err(DecodeError::Invalid("inverted validity window"));
        }
        Ok(Validity { not_before, not_after })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Moment(100) + Span::hours(1);
        assert_eq!(t, Moment(3700));
        assert_eq!(t - Moment(100), Span(3600));
        assert_eq!(Moment(10) - Span(20), Moment(0)); // saturates
        assert_eq!(Span::days(2), Span(172_800));
    }

    #[test]
    fn validity_contains() {
        let v = Validity::starting(Moment(10), Span(5));
        assert!(!v.contains(Moment(9)));
        assert!(v.contains(Moment(10)));
        assert!(v.contains(Moment(15)));
        assert!(!v.contains(Moment(16)));
        assert!(v.expired_at(Moment(16)));
        assert!(!v.expired_at(Moment(15)));
    }

    #[test]
    fn validity_enclosure() {
        let outer = Validity::new(Moment(0), Moment(100));
        let inner = Validity::new(Moment(10), Moment(90));
        assert!(outer.encloses(&inner));
        assert!(!inner.encloses(&outer));
        assert!(outer.encloses(&outer));
    }

    #[test]
    fn codec_round_trip() {
        let v = Validity::new(Moment(7), Moment(8));
        assert_eq!(Validity::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn codec_rejects_inverted_window() {
        let mut bytes = Vec::new();
        Moment(9).encode(&mut bytes);
        Moment(3).encode(&mut bytes);
        assert_eq!(
            Validity::from_bytes(&bytes),
            Err(DecodeError::Invalid("inverted validity window"))
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(Moment(0).to_string(), "0+00:00:00");
        assert_eq!((Moment(0) + Span::days(3) + Span(3723)).to_string(), "3+01:02:03");
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn constructor_rejects_inverted_window() {
        let _ = Validity::new(Moment(2), Moment(1));
    }
}
