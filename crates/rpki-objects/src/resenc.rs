//! [`Encode`]/[`Decode`] implementations for the resource and crypto
//! primitives defined in sibling crates.
//!
//! These live here (not in `ipres`/`rpkisim-crypto`) because the wire
//! format is an `rpki-objects` concern; the primitive crates stay
//! codec-agnostic.

use ipres::{Addr, AddrRange, Asn, AsnSet, Family, Prefix, ResourceSet};
use rpkisim_crypto::{Digest, KeyId, PublicKey, Signature};

use crate::codec::{Decode, DecodeError, Encode, Reader};

impl Encode for Family {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Family::V4 => 4,
            Family::V6 => 6,
        });
    }
}

impl Decode for Family {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            4 => Ok(Family::V4),
            6 => Ok(Family::V6),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl Encode for Addr {
    fn encode(&self, out: &mut Vec<u8>) {
        self.family().encode(out);
        self.value().encode(out);
    }
}

impl Decode for Addr {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let family = Family::decode(r)?;
        let value = r.u128()?;
        if value > family.max_value() {
            return Err(DecodeError::Invalid("address value exceeds family width"));
        }
        Ok(Addr::new(family, value))
    }
}

impl Encode for Prefix {
    fn encode(&self, out: &mut Vec<u8>) {
        self.addr().encode(out);
        out.push(self.len());
    }
}

impl Decode for Prefix {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let addr = Addr::decode(r)?;
        let len = r.u8()?;
        if len > addr.family().bits() {
            return Err(DecodeError::Invalid("prefix length exceeds family bits"));
        }
        let p = Prefix::new(addr, len);
        if p.addr() != addr {
            // Canonical form requires zeroed host bits; a mismatch means
            // the bytes were not produced by our encoder.
            return Err(DecodeError::Invalid("prefix host bits not zero"));
        }
        Ok(p)
    }
}

impl Encode for AddrRange {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lo().encode(out);
        self.hi().encode(out);
    }
}

impl Decode for AddrRange {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let lo = Addr::decode(r)?;
        let hi = Addr::decode(r)?;
        if lo.family() != hi.family() || lo > hi {
            return Err(DecodeError::Invalid("malformed address range"));
        }
        Ok(AddrRange::new(lo, hi))
    }
}

impl Encode for ResourceSet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ranges().to_vec().encode(out);
    }
}

impl Decode for ResourceSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let ranges = Vec::<AddrRange>::decode(r)?;
        let set = ResourceSet::from_ranges(ranges.iter().copied());
        // Canonicality check: re-encoding must give the same runs, so
        // signatures over resource sets are unambiguous.
        if set.ranges() != ranges.as_slice() {
            return Err(DecodeError::Invalid("resource set not in canonical form"));
        }
        Ok(set)
    }
}

impl Encode for Asn {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for Asn {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Asn(r.u32()?))
    }
}

impl Encode for AsnSet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.members().to_vec().encode(out);
    }
}

impl Decode for AsnSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let members = Vec::<Asn>::decode(r)?;
        let set = AsnSet::from_iter_normalised(members.iter().copied());
        if set.members() != members.as_slice() {
            return Err(DecodeError::Invalid("ASN set not in canonical form"));
        }
        Ok(set)
    }
}

impl Encode for Digest {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // `take(32)` returned exactly 32 bytes, so the conversion can
        // only fail on truncated input, never by panicking.
        let raw = r.take(32)?;
        Ok(Digest(raw.try_into().map_err(|_| DecodeError::Truncated)?))
    }
}

impl Encode for KeyId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for KeyId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(KeyId(Digest::decode(r)?))
    }
}

impl Encode for PublicKey {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id().encode(out);
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PublicKey::from_id(KeyId::decode(r)?))
    }
}

impl Encode for Signature {
    fn encode(&self, out: &mut Vec<u8>) {
        let (key, tag) = self.to_parts();
        key.encode(out);
        tag.encode(out);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let key = KeyId::decode(r)?;
        let tag = Digest::decode(r)?;
        Ok(Signature::from_parts(key, tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpkisim_crypto::KeyPair;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip("63.174.16.0".parse::<Addr>().unwrap());
        round_trip("2001:db8::1".parse::<Addr>().unwrap());
        round_trip("63.174.16.0/20".parse::<Prefix>().unwrap());
        round_trip(AddrRange::new(
            "63.174.25.0".parse().unwrap(),
            "63.174.31.255".parse().unwrap(),
        ));
        round_trip(ResourceSet::from_prefix_strs("63.160.0.0/12, 208.0.0.0/11"));
        round_trip(Asn(1239));
        round_trip([Asn(1), Asn(7)].into_iter().collect::<AsnSet>());
    }

    #[test]
    fn crypto_round_trip() {
        let kp = KeyPair::from_seed("codec");
        round_trip(kp.id());
        round_trip(kp.public());
        round_trip(kp.sign(b"message"));
    }

    #[test]
    fn noncanonical_prefix_rejected() {
        // Encode a /8 whose host bits are set: 10.1.0.0/8.
        let mut bytes = Vec::new();
        "10.1.0.0".parse::<Addr>().unwrap().encode(&mut bytes);
        bytes.push(8);
        assert!(matches!(Prefix::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn noncanonical_resource_set_rejected() {
        // Two abutting runs that a canonical encoder would have merged.
        let mut bytes = Vec::new();
        vec![
            AddrRange::new("10.0.0.0".parse().unwrap(), "10.0.0.127".parse().unwrap()),
            AddrRange::new("10.0.0.128".parse().unwrap(), "10.0.0.255".parse().unwrap()),
        ]
        .encode(&mut bytes);
        assert!(matches!(ResourceSet::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn oversized_prefix_len_rejected() {
        let mut bytes = Vec::new();
        "10.0.0.0".parse::<Addr>().unwrap().encode(&mut bytes);
        bytes.push(33);
        assert!(matches!(Prefix::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn inverted_range_rejected() {
        let mut bytes = Vec::new();
        "10.0.0.9".parse::<Addr>().unwrap().encode(&mut bytes);
        "10.0.0.3".parse::<Addr>().unwrap().encode(&mut bytes);
        assert!(matches!(AddrRange::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
    }
}
