//! Resource certificates (RCs) and end-entity (EE) certificates.
//!
//! An RC binds a key to an *arbitrary set* of IP (and AS) resources —
//! the "fine-grained resource allocation" design decision whose side
//! effect (targeted whacking, Section 3.1) this workspace reproduces. An
//! authority may issue RCs for any subset of its own resources; chain
//! validation in `rpki-rp` enforces that containment hop by hop.
//!
//! EE certificates are the one-shot keys that sign ROAs and manifests
//! (the paper's footnote 3). They carry the resources the signed object
//! needs, and are themselves signed by the issuing CA.

use std::fmt;

use ipres::{AsnSet, ResourceSet};
use rpkisim_crypto::{KeyId, KeyPair, PublicKey, Signature, SignatureError};
use serde::{Deserialize, Serialize};

use crate::codec::{Decode, DecodeError, Encode, Reader, Writer};
use crate::time::Validity;
use crate::uri::RepoUri;

/// The to-be-signed content of a resource certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertData {
    /// Issuer-assigned serial number, unique per issuer.
    pub serial: u64,
    /// Human-readable subject handle, e.g. `"Sprint"`. Used for
    /// reporting; trust derives from keys, never from this string.
    pub subject: String,
    /// The subject's public key.
    pub subject_key: PublicKey,
    /// IP resources allocated to the subject.
    pub resources: ResourceSet,
    /// AS resources allocated to the subject (RFC 3779 completeness;
    /// empty in most scenarios).
    pub as_resources: AsnSet,
    /// Validity window.
    pub validity: Validity,
    /// The issuing key (equals `subject_key.id()` for a trust anchor).
    pub issuer_key: KeyId,
    /// Subject Information Access: the directory where the *subject*
    /// publishes objects it issues.
    pub sia: RepoUri,
    /// CRL Distribution Point: where the *issuer* publishes the CRL
    /// governing this certificate. `None` only for trust anchors.
    pub crl_dp: Option<RepoUri>,
}

impl Encode for CertData {
    fn encode(&self, out: &mut Vec<u8>) {
        self.serial.encode(out);
        Writer::string(out, &self.subject);
        self.subject_key.encode(out);
        self.resources.encode(out);
        self.as_resources.encode(out);
        self.validity.encode(out);
        self.issuer_key.encode(out);
        self.sia.encode(out);
        self.crl_dp.encode(out);
    }
}

impl Decode for CertData {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(CertData {
            serial: r.u64()?,
            subject: r.string()?,
            subject_key: PublicKey::decode(r)?,
            resources: ResourceSet::decode(r)?,
            as_resources: AsnSet::decode(r)?,
            validity: Validity::decode(r)?,
            issuer_key: KeyId::decode(r)?,
            sia: RepoUri::decode(r)?,
            crl_dp: Option::<RepoUri>::decode(r)?,
        })
    }
}

/// A signed resource certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceCert {
    data: CertData,
    signature: Signature,
}

impl ResourceCert {
    /// Signs `data` with the issuer's key pair.
    ///
    /// # Panics
    ///
    /// Panics if `data.issuer_key` does not match `issuer`'s key —
    /// signing on behalf of someone else is a fixture bug, not a
    /// simulated attack (attacks *hold* the issuer key).
    pub fn sign(data: CertData, issuer: &KeyPair) -> Self {
        assert_eq!(data.issuer_key, issuer.id(), "issuer key mismatch in CertData");
        let signature = issuer.sign(&data.to_bytes());
        ResourceCert { data, signature }
    }

    /// The to-be-signed content.
    pub fn data(&self) -> &CertData {
        &self.data
    }

    /// The signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The subject's key id (RFC 6487 names published certs by it).
    pub fn subject_key_id(&self) -> KeyId {
        self.data.subject_key.id()
    }

    /// Whether this is a self-signed (trust anchor) certificate.
    pub fn is_self_signed(&self) -> bool {
        self.data.issuer_key == self.data.subject_key.id()
    }

    /// Verifies the signature under `issuer_key`.
    pub fn verify(&self, issuer_key: &PublicKey) -> Result<(), SignatureError> {
        issuer_key.verify(&self.data.to_bytes(), &self.signature)
    }

    /// Canonical file name at the issuer's publication point:
    /// `<subject-key-id>.cer`. Reissuing a certificate for the same
    /// subject key *overwrites* the old one — the "objects can be
    /// overwritten" design decision behind Side Effect 2.
    pub fn file_name(&self) -> String {
        format!("{}.cer", self.subject_key_id().short())
    }
}

impl Encode for ResourceCert {
    fn encode(&self, out: &mut Vec<u8>) {
        self.data.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for ResourceCert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ResourceCert { data: CertData::decode(r)?, signature: Signature::decode(r)? })
    }
}

impl fmt::Display for ResourceCert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RC[{} serial={} key={} res={}]",
            self.data.subject,
            self.data.serial,
            self.subject_key_id().short(),
            self.data.resources
        )
    }
}

/// The to-be-signed content of an end-entity certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EeCertData {
    /// Issuer-assigned serial, drawn from the same space as RC serials
    /// (so one CRL covers both).
    pub serial: u64,
    /// The one-time-use EE key.
    pub subject_key: PublicKey,
    /// The resources the signed object may speak for.
    pub resources: ResourceSet,
    /// Validity window (the signed object inherits it).
    pub validity: Validity,
    /// The issuing CA's key.
    pub issuer_key: KeyId,
}

impl Encode for EeCertData {
    fn encode(&self, out: &mut Vec<u8>) {
        self.serial.encode(out);
        self.subject_key.encode(out);
        self.resources.encode(out);
        self.validity.encode(out);
        self.issuer_key.encode(out);
    }
}

impl Decode for EeCertData {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EeCertData {
            serial: r.u64()?,
            subject_key: PublicKey::decode(r)?,
            resources: ResourceSet::decode(r)?,
            validity: Validity::decode(r)?,
            issuer_key: KeyId::decode(r)?,
        })
    }
}

/// A signed end-entity certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EeCert {
    data: EeCertData,
    signature: Signature,
}

impl EeCert {
    /// Signs `data` with the issuing CA's key pair.
    ///
    /// # Panics
    ///
    /// Panics on issuer key mismatch (fixture bug).
    pub fn sign(data: EeCertData, issuer: &KeyPair) -> Self {
        assert_eq!(data.issuer_key, issuer.id(), "issuer key mismatch in EeCertData");
        let signature = issuer.sign(&data.to_bytes());
        EeCert { data, signature }
    }

    /// The to-be-signed content.
    pub fn data(&self) -> &EeCertData {
        &self.data
    }

    /// Verifies the CA's signature under `issuer_key`.
    pub fn verify(&self, issuer_key: &PublicKey) -> Result<(), SignatureError> {
        issuer_key.verify(&self.data.to_bytes(), &self.signature)
    }
}

impl Encode for EeCert {
    fn encode(&self, out: &mut Vec<u8>) {
        self.data.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for EeCert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EeCert { data: EeCertData::decode(r)?, signature: Signature::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Moment, Span};
    use ipres::Asn;

    fn sample_data(issuer: &KeyPair, subject: &KeyPair) -> CertData {
        CertData {
            serial: 7,
            subject: "Sprint".to_owned(),
            subject_key: subject.public(),
            resources: ResourceSet::from_prefix_strs("63.160.0.0/12, 208.0.0.0/11"),
            as_resources: [Asn(1239)].into_iter().collect(),
            validity: Validity::starting(Moment(0), Span::days(365)),
            issuer_key: issuer.id(),
            sia: RepoUri::new("rpki.sprint.example", &["repo"]),
            crl_dp: Some(RepoUri::new("rpki.arin.example", &["repo", "arin.crl"])),
        }
    }

    #[test]
    fn sign_verify_round_trip() {
        let arin = KeyPair::from_seed("arin");
        let sprint = KeyPair::from_seed("sprint");
        let cert = ResourceCert::sign(sample_data(&arin, &sprint), &arin);
        assert_eq!(cert.verify(&arin.public()), Ok(()));
        assert!(cert.verify(&sprint.public()).is_err());
        assert!(!cert.is_self_signed());
    }

    #[test]
    fn self_signed_trust_anchor() {
        let iana = KeyPair::from_seed("iana");
        let mut data = sample_data(&iana, &iana);
        data.subject = "IANA".to_owned();
        data.crl_dp = None;
        let ta = ResourceCert::sign(data, &iana);
        assert!(ta.is_self_signed());
        assert_eq!(ta.verify(&iana.public()), Ok(()));
    }

    #[test]
    fn codec_round_trip() {
        let arin = KeyPair::from_seed("arin");
        let sprint = KeyPair::from_seed("sprint");
        let cert = ResourceCert::sign(sample_data(&arin, &sprint), &arin);
        let decoded = ResourceCert::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(decoded, cert);
        // Decoded certs still verify (the signature covers CertData bytes).
        assert_eq!(decoded.verify(&arin.public()), Ok(()));
    }

    #[test]
    fn tampered_bytes_fail_verification() {
        let arin = KeyPair::from_seed("arin");
        let sprint = KeyPair::from_seed("sprint");
        let cert = ResourceCert::sign(sample_data(&arin, &sprint), &arin);
        let mut bytes = cert.to_bytes();
        // Flip a bit inside the serial (offset 7: low byte of serial).
        bytes[7] ^= 1;
        match ResourceCert::from_bytes(&bytes) {
            Ok(tampered) => {
                assert!(tampered.verify(&arin.public()).is_err());
            }
            Err(_) => { /* structural break is also detection */ }
        }
    }

    #[test]
    fn file_name_follows_subject_key() {
        let arin = KeyPair::from_seed("arin");
        let sprint = KeyPair::from_seed("sprint");
        let cert = ResourceCert::sign(sample_data(&arin, &sprint), &arin);
        assert_eq!(cert.file_name(), format!("{}.cer", sprint.id().short()));
        // A reissued cert for the same subject key keeps the same name.
        let mut data2 = sample_data(&arin, &sprint);
        data2.serial = 8;
        data2.resources = ResourceSet::from_prefix_strs("63.160.0.0/12");
        let cert2 = ResourceCert::sign(data2, &arin);
        assert_eq!(cert.file_name(), cert2.file_name());
    }

    #[test]
    fn ee_cert_round_trip() {
        let sprint = KeyPair::from_seed("sprint");
        let ee = KeyPair::from_seed("ee-1");
        let data = EeCertData {
            serial: 21,
            subject_key: ee.public(),
            resources: ResourceSet::from_prefix_strs("63.174.16.0/20"),
            validity: Validity::starting(Moment(0), Span::days(90)),
            issuer_key: sprint.id(),
        };
        let cert = EeCert::sign(data, &sprint);
        assert_eq!(cert.verify(&sprint.public()), Ok(()));
        let decoded = EeCert::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(decoded, cert);
    }

    #[test]
    #[should_panic(expected = "issuer key mismatch")]
    fn signing_with_wrong_key_panics() {
        let arin = KeyPair::from_seed("arin");
        let sprint = KeyPair::from_seed("sprint");
        let ripe = KeyPair::from_seed("ripe");
        let _ = ResourceCert::sign(sample_data(&arin, &sprint), &ripe);
    }
}
