//! Certificate revocation lists (RFC 5280/6487-shaped).
//!
//! Revocation is the *transparent* whacking mechanism: a CRL is a
//! signed, public list of revoked serials, so relying parties (and the
//! monitoring schemes in `rpki-attacks`) can observe abusive
//! revocations. The paper's Side Effect 2 is precisely that the RPKI
//! also admits *stealthier* alternatives (deletion, overwriting) that
//! bypass this audit trail.

use std::fmt;

use rpkisim_crypto::{KeyId, KeyPair, PublicKey, Signature, SignatureError};
use serde::{Deserialize, Serialize};

use crate::codec::{Decode, DecodeError, Encode, Reader};
use crate::time::Moment;

/// The to-be-signed CRL content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrlData {
    /// The issuing CA's key.
    pub issuer_key: KeyId,
    /// Monotonically increasing CRL number.
    pub number: u64,
    /// When this CRL was produced.
    pub this_update: Moment,
    /// When the next CRL is due; a relying party treats a CRL past this
    /// moment as stale.
    pub next_update: Moment,
    /// Revoked serial numbers (sorted, deduplicated).
    pub revoked: Vec<u64>,
}

impl Encode for CrlData {
    fn encode(&self, out: &mut Vec<u8>) {
        self.issuer_key.encode(out);
        self.number.encode(out);
        self.this_update.encode(out);
        self.next_update.encode(out);
        self.revoked.encode(out);
    }
}

impl Decode for CrlData {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let data = CrlData {
            issuer_key: KeyId::decode(r)?,
            number: r.u64()?,
            this_update: Moment::decode(r)?,
            next_update: Moment::decode(r)?,
            revoked: Vec::<u64>::decode(r)?,
        };
        if data.this_update > data.next_update {
            return Err(DecodeError::Invalid("CRL update window inverted"));
        }
        if data.revoked.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DecodeError::Invalid("CRL serials not sorted-unique"));
        }
        Ok(data)
    }
}

/// A signed CRL.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crl {
    data: CrlData,
    signature: Signature,
}

impl Crl {
    /// Signs a CRL. Serials are sorted and deduplicated to canonical
    /// form before signing.
    ///
    /// # Panics
    ///
    /// Panics on issuer key mismatch or inverted update window.
    pub fn sign(mut data: CrlData, issuer: &KeyPair) -> Self {
        assert_eq!(data.issuer_key, issuer.id(), "issuer key mismatch in CrlData");
        assert!(data.this_update <= data.next_update, "CRL update window inverted");
        data.revoked.sort_unstable();
        data.revoked.dedup();
        let signature = issuer.sign(&data.to_bytes());
        Crl { data, signature }
    }

    /// The to-be-signed content.
    pub fn data(&self) -> &CrlData {
        &self.data
    }

    /// Whether `serial` is revoked by this CRL.
    pub fn is_revoked(&self, serial: u64) -> bool {
        self.data.revoked.binary_search(&serial).is_ok()
    }

    /// Whether the CRL is stale at `now` (past its `next_update`).
    pub fn is_stale_at(&self, now: Moment) -> bool {
        now > self.data.next_update
    }

    /// Verifies the signature under `issuer_key`.
    pub fn verify(&self, issuer_key: &PublicKey) -> Result<(), SignatureError> {
        issuer_key.verify(&self.data.to_bytes(), &self.signature)
    }

    /// Canonical file name: `<issuer-key-id>.crl`.
    pub fn file_name(&self) -> String {
        format!("{}.crl", self.data.issuer_key.short())
    }
}

impl Encode for Crl {
    fn encode(&self, out: &mut Vec<u8>) {
        self.data.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for Crl {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Crl { data: CrlData::decode(r)?, signature: Signature::decode(r)? })
    }
}

impl fmt::Display for Crl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CRL[{} #{} revoked={:?}]",
            self.data.issuer_key.short(),
            self.data.number,
            self.data.revoked
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(issuer: &KeyPair) -> Crl {
        Crl::sign(
            CrlData {
                issuer_key: issuer.id(),
                number: 3,
                this_update: Moment(100),
                next_update: Moment(100 + 86_400),
                revoked: vec![9, 4, 9, 1],
            },
            issuer,
        )
    }

    #[test]
    fn sign_canonicalises_and_verifies() {
        let ca = KeyPair::from_seed("crl-ca");
        let crl = sample(&ca);
        assert_eq!(crl.data().revoked, vec![1, 4, 9]);
        assert_eq!(crl.verify(&ca.public()), Ok(()));
        assert!(crl.is_revoked(4));
        assert!(!crl.is_revoked(2));
    }

    #[test]
    fn staleness() {
        let ca = KeyPair::from_seed("crl-ca");
        let crl = sample(&ca);
        assert!(!crl.is_stale_at(Moment(100 + 86_400)));
        assert!(crl.is_stale_at(Moment(101 + 86_400)));
    }

    #[test]
    fn codec_round_trip() {
        let ca = KeyPair::from_seed("crl-ca");
        let crl = sample(&ca);
        let decoded = Crl::from_bytes(&crl.to_bytes()).unwrap();
        assert_eq!(decoded, crl);
        assert_eq!(decoded.verify(&ca.public()), Ok(()));
    }

    #[test]
    fn decode_rejects_unsorted_serials() {
        let ca = KeyPair::from_seed("crl-ca");
        let crl = sample(&ca);
        let mut bytes = crl.to_bytes();
        // The serial list is the last CrlData field before the
        // signature; swap the first two serials (each 8 bytes, after a
        // 4-byte count). Locate from the end: signature is 64 bytes.
        let sig_start = bytes.len() - 64;
        let serials_start = sig_start - 3 * 8;
        bytes.swap(serials_start + 7, serials_start + 15);
        assert!(Crl::from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_crl_is_valid() {
        let ca = KeyPair::from_seed("crl-ca");
        let crl = Crl::sign(
            CrlData {
                issuer_key: ca.id(),
                number: 1,
                this_update: Moment(0),
                next_update: Moment(10),
                revoked: vec![],
            },
            &ca,
        );
        assert_eq!(crl.verify(&ca.public()), Ok(()));
        assert!(!crl.is_revoked(0));
    }
}
