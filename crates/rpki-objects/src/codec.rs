//! Canonical binary encoding.
//!
//! Repositories store *bytes*; relying parties decode and verify them.
//! Keeping a real wire format (rather than passing Rust structs around)
//! is what lets the simulator corrupt objects in transit byte-for-byte
//! (Side Effects 6–7) and lets manifests commit to file hashes exactly
//! as RFC 6486 does.
//!
//! The format is a minimal deterministic TLV-free layout: fixed-width
//! big-endian integers, length-prefixed byte strings, `u32`-counted
//! sequences, one-byte option tags. Every encodable type has a single
//! canonical byte representation, so `encode(decode(b)) == b` for valid
//! `b` and signatures/digests are well-defined.

use std::fmt;

/// Serialises a value into canonical bytes.
pub trait Encode {
    /// Appends this value's canonical encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: this value's canonical encoding as a fresh vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Deserialises a value from canonical bytes.
pub trait Decode: Sized {
    /// Reads this value from the front of `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Convenience: decodes a value that must consume all of `bytes`.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(DecodeError::TrailingBytes(r.remaining()));
        }
        Ok(v)
    }
}

/// Error decoding canonical bytes. Corruption injected by the fault
/// model usually surfaces here or as a signature failure downstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    Truncated,
    /// A tag or discriminant byte held an impossible value.
    BadTag(u8),
    /// A length prefix exceeded sane bounds or remaining input.
    BadLength(u64),
    /// A string field was not UTF-8.
    BadUtf8,
    /// A domain invariant failed (e.g. prefix length > family bits).
    Invalid(&'static str),
    /// Extra bytes followed a complete value.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("truncated input"),
            DecodeError::BadTag(t) => write!(f, "bad tag byte {t:#04x}"),
            DecodeError::BadLength(n) => write!(f, "implausible length {n}"),
            DecodeError::BadUtf8 => f.write_str("invalid UTF-8 in string field"),
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Hard ceiling on any single length prefix (bytes or element count).
///
/// No legitimate object in this model comes near 16 MiB; a prefix
/// above it is adversarial regardless of how much input follows, and
/// rejecting it *before* any `take`/allocation keeps oversized-length
/// corpus cases from turning into memory pressure.
pub const MAX_LEN: usize = 16 * 1024 * 1024;

/// A cursor over input bytes.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all input was consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Takes exactly `N` bytes as a fixed-size array.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        // The slice is exactly N long by construction (`take` returned
        // Ok), so the conversion cannot fail.
        self.take(N)?.try_into().map_err(|_| DecodeError::Truncated)
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    /// Reads a big-endian u128.
    pub fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_be_bytes(self.array()?))
    }

    /// Checks a decoded length prefix for plausibility *before* any
    /// bytes are taken or buffers sized from it: it must fit both the
    /// remaining input and the global [`MAX_LEN`] ceiling.
    fn plausible_len(&self, len: u32) -> Result<usize, DecodeError> {
        let len = len as usize;
        if len > self.remaining() || len > MAX_LEN {
            return Err(DecodeError::BadLength(len as u64));
        }
        Ok(len)
    }

    /// Reads a u32-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()?;
        let len = self.plausible_len(len)?;
        self.take(len)
    }

    /// Reads a u32-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads a u32 element count for a sequence, sanity-bounded by the
    /// remaining input (each element needs ≥ 1 byte) and [`MAX_LEN`].
    pub fn seq_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()?;
        self.plausible_len(n)
    }
}

/// A writer of canonical bytes (plain helpers over `Vec<u8>`).
pub struct Writer;

impl Writer {
    /// Writes a u32-length-prefixed byte string.
    pub fn bytes(out: &mut Vec<u8>, data: &[u8]) {
        out.extend_from_slice(&(data.len() as u32).to_be_bytes());
        out.extend_from_slice(data);
    }

    /// Writes a u32-length-prefixed UTF-8 string.
    pub fn string(out: &mut Vec<u8>, s: &str) {
        Self::bytes(out, s.as_bytes());
    }
}

impl Encode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Encode for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl Encode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl Encode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl Encode for u128 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        Writer::string(out, self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u8()
    }
}

impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u16()
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u32()
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u64()
    }
}

impl Decode for u128 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u128()
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.string()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_be_bytes());
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.seq_len()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_round_trips() {
        let mut out = Vec::new();
        0xabu8.encode(&mut out);
        0x1234u16.encode(&mut out);
        0xdead_beefu32.encode(&mut out);
        0x0123_4567_89ab_cdefu64.encode(&mut out);
        (u128::MAX - 1).encode(&mut out);
        let mut r = Reader::new(&out);
        assert_eq!(u8::decode(&mut r).unwrap(), 0xab);
        assert_eq!(u16::decode(&mut r).unwrap(), 0x1234);
        assert_eq!(u32::decode(&mut r).unwrap(), 0xdead_beef);
        assert_eq!(u64::decode(&mut r).unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(u128::decode(&mut r).unwrap(), u128::MAX - 1);
        assert!(r.is_empty());
    }

    #[test]
    fn string_round_trip() {
        let s = "rsync://rpki.sprint.example/repo".to_owned();
        let bytes = s.to_bytes();
        assert_eq!(String::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn vec_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_bytes(&v.to_bytes()).unwrap(), v);
        let empty: Vec<u64> = Vec::new();
        assert_eq!(Vec::<u64>::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn option_round_trip() {
        let some = Some(42u64);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_bytes(&some.to_bytes()).unwrap(), some);
        assert_eq!(Option::<u64>::from_bytes(&none.to_bytes()).unwrap(), none);
    }

    #[test]
    fn truncation_detected() {
        let bytes = 0x1234_5678u32.to_bytes();
        assert_eq!(u64::from_bytes(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 7u8.to_bytes();
        bytes.push(0);
        assert_eq!(u8::from_bytes(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn bad_option_tag_detected() {
        assert_eq!(Option::<u8>::from_bytes(&[9, 0]), Err(DecodeError::BadTag(9)));
    }

    #[test]
    fn oversized_length_detected() {
        // A length prefix claiming more bytes than exist.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(String::from_bytes(&bytes), Err(DecodeError::BadLength(_))));
        assert!(matches!(Vec::<u8>::from_bytes(&bytes), Err(DecodeError::BadLength(_))));
    }

    #[test]
    fn bad_utf8_detected() {
        let mut bytes = Vec::new();
        Writer::bytes(&mut bytes, &[0xff, 0xfe]);
        assert_eq!(String::from_bytes(&bytes), Err(DecodeError::BadUtf8));
    }
}
