//! rsync-style repository URIs.
//!
//! RFC 6481 stores RPKI objects at publication points named by rsync
//! URIs. The *location* of an object matters enormously in the flipped
//! threat model: objects live in directories **controlled by their
//! issuer** (not their subject), which is what makes stealthy revocation
//! (Side Effect 2) and the repository-inside-its-own-ROA circularity
//! (Side Effect 7) possible. A [`RepoUri`] names a repository host
//! (module) and a path below it.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::codec::{Decode, DecodeError, Encode, Reader, Writer};

/// An rsync-style URI: `rsync://<host>/<path...>`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RepoUri {
    /// The repository host, e.g. `rpki.sprint.example`. Repositories are
    /// registered in the network simulator under this name; whether the
    /// host is *reachable* depends on BGP (Section 6 of the paper).
    host: String,
    /// Path components below the host, e.g. `["repo", "a1b2c3.roa"]`.
    path: Vec<String>,
}

/// Error parsing a [`RepoUri`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UriParseError(String);

impl fmt::Display for UriParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rsync URI: {:?}", self.0)
    }
}

impl std::error::Error for UriParseError {}

impl RepoUri {
    /// Builds a URI from a host and path components.
    ///
    /// # Panics
    ///
    /// Panics if the host or any component is empty or contains `/`
    /// (programmer error in fixture code).
    pub fn new(host: &str, path: &[&str]) -> Self {
        assert!(!host.is_empty() && !host.contains('/'), "bad URI host {host:?}");
        for c in path {
            assert!(!c.is_empty() && !c.contains('/'), "bad URI path component {c:?}");
        }
        RepoUri { host: host.to_owned(), path: path.iter().map(|s| (*s).to_owned()).collect() }
    }

    /// The repository host.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The path components.
    pub fn path(&self) -> &[String] {
        &self.path
    }

    /// The final path component (the object's file name), if any.
    pub fn file_name(&self) -> Option<&str> {
        self.path.last().map(String::as_str)
    }

    /// A new URI with `component` appended.
    pub fn join(&self, component: &str) -> RepoUri {
        assert!(
            !component.is_empty() && !component.contains('/'),
            "bad URI path component {component:?}"
        );
        let mut path = self.path.clone();
        path.push(component.to_owned());
        RepoUri { host: self.host.clone(), path }
    }

    /// Whether `self` is a directory prefix of `other` (same host, path
    /// is a proper or improper prefix).
    pub fn contains(&self, other: &RepoUri) -> bool {
        self.host == other.host
            && self.path.len() <= other.path.len()
            && self.path.iter().zip(&other.path).all(|(a, b)| a == b)
    }
}

impl fmt::Display for RepoUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rsync://{}", self.host)?;
        for c in &self.path {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for RepoUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RepoUri({self})")
    }
}

impl FromStr for RepoUri {
    type Err = UriParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || UriParseError(s.to_owned());
        let rest = s.strip_prefix("rsync://").ok_or_else(err)?;
        let mut parts = rest.split('/');
        let host = parts.next().filter(|h| !h.is_empty()).ok_or_else(err)?;
        let path: Vec<String> = parts.map(str::to_owned).collect();
        if path.iter().any(String::is_empty) {
            return Err(err());
        }
        Ok(RepoUri { host: host.to_owned(), path })
    }
}

impl Encode for RepoUri {
    fn encode(&self, out: &mut Vec<u8>) {
        Writer::string(out, &self.host);
        self.path.encode(out);
    }
}

impl Decode for RepoUri {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let host = r.string()?;
        let path = Vec::<String>::decode(r)?;
        if host.is_empty() || host.contains('/') {
            return Err(DecodeError::Invalid("bad URI host"));
        }
        if path.iter().any(|c| c.is_empty() || c.contains('/')) {
            return Err(DecodeError::Invalid("bad URI path component"));
        }
        Ok(RepoUri { host, path })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let u: RepoUri = "rsync://rpki.sprint.example/repo/x.roa".parse().unwrap();
        assert_eq!(u.host(), "rpki.sprint.example");
        assert_eq!(u.file_name(), Some("x.roa"));
        assert_eq!(u.to_string(), "rsync://rpki.sprint.example/repo/x.roa");
    }

    #[test]
    fn parse_host_only() {
        let u: RepoUri = "rsync://h".parse().unwrap();
        assert_eq!(u.path(), &[] as &[String]);
        assert_eq!(u.file_name(), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("http://x/y".parse::<RepoUri>().is_err());
        assert!("rsync://".parse::<RepoUri>().is_err());
        assert!("rsync://h//double".parse::<RepoUri>().is_err());
    }

    #[test]
    fn join_and_contains() {
        let dir = RepoUri::new("h", &["repo"]);
        let file = dir.join("a.cer");
        assert_eq!(file.to_string(), "rsync://h/repo/a.cer");
        assert!(dir.contains(&file));
        assert!(dir.contains(&dir));
        assert!(!file.contains(&dir));
        assert!(!RepoUri::new("other", &["repo"]).contains(&file));
    }

    #[test]
    fn codec_round_trip() {
        let u = RepoUri::new("rpki.arin.example", &["repo", "sprint", "rc.cer"]);
        assert_eq!(RepoUri::from_bytes(&u.to_bytes()).unwrap(), u);
    }

    #[test]
    fn codec_rejects_bad_components() {
        let mut bytes = Vec::new();
        Writer::string(&mut bytes, "host");
        vec!["ok".to_owned(), "bad/slash".to_owned()].encode(&mut bytes);
        assert!(matches!(RepoUri::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
    }

    #[test]
    #[should_panic(expected = "bad URI path component")]
    fn join_rejects_slash() {
        let _ = RepoUri::new("h", &[]).join("a/b");
    }
}
