//! Route Origin Authorizations (RFC 6482-shaped).
//!
//! A ROA authorises one AS to originate a prefix — and, via the
//! `maxLength` field, its subprefixes up to a bound. The paper's
//! Figure 2 shows Sprint issuing `(63.160.64.0/20-24, AS1239)`: AS1239
//! may originate the /20 and anything down to /24 inside it.
//!
//! A ROA is signed by a one-time-use EE key whose certificate the CA
//! signs (footnote 3 of the paper); both layers are modelled so that
//! chain validation, revocation-by-serial, and resource containment all
//! behave as in production.

use std::fmt;

use ipres::{Asn, Prefix, ResourceSet};
use rpkisim_crypto::{KeyPair, PublicKey, Signature, SignatureError};
use serde::{Deserialize, Serialize};

use crate::cert::{EeCert, EeCertData};
use crate::codec::{Decode, DecodeError, Encode, Reader};
use crate::time::Validity;

/// One authorised prefix inside a ROA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoaPrefix {
    /// The authorised prefix.
    pub prefix: Prefix,
    /// Maximum length of subprefixes the origin may announce. `None`
    /// means "exactly the prefix" (effective max = prefix length).
    pub max_len: Option<u8>,
}

impl RoaPrefix {
    /// A ROA prefix with no subprefix allowance.
    pub fn exact(prefix: Prefix) -> Self {
        RoaPrefix { prefix, max_len: None }
    }

    /// A ROA prefix allowing subprefixes up to `max_len`.
    ///
    /// # Panics
    ///
    /// Panics if `max_len` is shorter than the prefix or longer than the
    /// family width.
    pub fn up_to(prefix: Prefix, max_len: u8) -> Self {
        assert!(
            max_len >= prefix.len() && max_len <= prefix.family().bits(),
            "maxLength {max_len} out of range for {prefix}"
        );
        RoaPrefix { prefix, max_len: Some(max_len) }
    }

    /// The effective maximum length.
    pub fn effective_max_len(&self) -> u8 {
        self.max_len.unwrap_or_else(|| self.prefix.len())
    }

    /// RFC 6811 *match*: this entry matches a route for `prefix` if the
    /// entry's prefix covers it and the route is no longer than the
    /// effective max length. (Origin AS is checked by the caller.)
    pub fn matches_prefix(&self, prefix: Prefix) -> bool {
        self.prefix.covers(prefix) && prefix.len() <= self.effective_max_len()
    }

    /// RFC 6811 *cover*: the entry's prefix covers the route's prefix,
    /// regardless of max length or origin.
    pub fn covers_prefix(&self, prefix: Prefix) -> bool {
        self.prefix.covers(prefix)
    }
}

impl fmt::Display for RoaPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max_len {
            Some(m) => write!(f, "{}-{}", self.prefix, m),
            None => write!(f, "{}", self.prefix),
        }
    }
}

impl Encode for RoaPrefix {
    fn encode(&self, out: &mut Vec<u8>) {
        self.prefix.encode(out);
        self.max_len.encode(out);
    }
}

impl Decode for RoaPrefix {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let prefix = Prefix::decode(r)?;
        let max_len = Option::<u8>::decode(r)?;
        if let Some(m) = max_len {
            if m < prefix.len() || m > prefix.family().bits() {
                return Err(DecodeError::Invalid("ROA maxLength out of range"));
            }
        }
        Ok(RoaPrefix { prefix, max_len })
    }
}

/// The to-be-signed ROA content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoaData {
    /// The AS authorised to originate.
    pub asn: Asn,
    /// The authorised prefixes.
    pub prefixes: Vec<RoaPrefix>,
}

impl Encode for RoaData {
    fn encode(&self, out: &mut Vec<u8>) {
        self.asn.encode(out);
        self.prefixes.encode(out);
    }
}

impl Decode for RoaData {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RoaData { asn: Asn::decode(r)?, prefixes: Vec::<RoaPrefix>::decode(r)? })
    }
}

/// A complete signed ROA: EE certificate + content + EE signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Roa {
    ee: EeCert,
    data: RoaData,
    signature: Signature,
}

/// Why a ROA failed its self-contained checks (chain checks live in
/// `rpki-rp`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoaError {
    /// The CA's signature on the EE certificate failed.
    EeSignature(SignatureError),
    /// The EE key's signature over the ROA content failed.
    ContentSignature(SignatureError),
    /// A ROA prefix is not covered by the EE certificate's resources.
    PrefixOutsideEe(Prefix),
}

impl fmt::Display for RoaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoaError::EeSignature(e) => write!(f, "EE certificate signature: {e}"),
            RoaError::ContentSignature(e) => write!(f, "ROA content signature: {e}"),
            RoaError::PrefixOutsideEe(p) => write!(f, "ROA prefix {p} outside EE resources"),
        }
    }
}

impl std::error::Error for RoaError {}

impl Roa {
    /// Issues a ROA: mints the EE certificate with exactly the resources
    /// the ROA needs, then signs the content with the EE key.
    ///
    /// `ee_key` must be freshly generated per ROA (one-time use); the CA
    /// engine enforces that.
    pub fn issue(
        data: RoaData,
        serial: u64,
        validity: Validity,
        issuer: &KeyPair,
        ee_key: &KeyPair,
    ) -> Self {
        let resources = ResourceSet::from_prefixes(data.prefixes.iter().map(|rp| rp.prefix));
        let ee = EeCert::sign(
            EeCertData {
                serial,
                subject_key: ee_key.public(),
                resources,
                validity,
                issuer_key: issuer.id(),
            },
            issuer,
        );
        let signature = ee_key.sign(&data.to_bytes());
        Roa { ee, data, signature }
    }

    /// The embedded EE certificate.
    pub fn ee(&self) -> &EeCert {
        &self.ee
    }

    /// The ROA content.
    pub fn data(&self) -> &RoaData {
        &self.data
    }

    /// The authorised origin AS.
    pub fn asn(&self) -> Asn {
        self.data.asn
    }

    /// The validity window (inherited from the EE certificate).
    pub fn validity(&self) -> Validity {
        self.ee.data().validity
    }

    /// The EE serial (what a CRL revokes).
    pub fn serial(&self) -> u64 {
        self.ee.data().serial
    }

    /// The union of the ROA's prefixes as a resource set.
    pub fn resources(&self) -> ResourceSet {
        ResourceSet::from_prefixes(self.data.prefixes.iter().map(|rp| rp.prefix))
    }

    /// Self-contained verification against the issuing CA's public key:
    /// EE cert signature, content signature, and prefix-in-EE
    /// containment. Chain and revocation checks are the relying party's
    /// job.
    pub fn verify(&self, issuer_key: &PublicKey) -> Result<(), RoaError> {
        self.ee.verify(issuer_key).map_err(RoaError::EeSignature)?;
        self.ee
            .data()
            .subject_key
            .verify(&self.data.to_bytes(), &self.signature)
            .map_err(RoaError::ContentSignature)?;
        for rp in &self.data.prefixes {
            if !self.ee.data().resources.contains_prefix(rp.prefix) {
                return Err(RoaError::PrefixOutsideEe(rp.prefix));
            }
        }
        Ok(())
    }

    /// Canonical file name at the issuer's publication point:
    /// `<ee-key-id>.roa`.
    pub fn file_name(&self) -> String {
        format!("{}.roa", self.ee.data().subject_key.id().short())
    }
}

impl Encode for Roa {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ee.encode(out);
        self.data.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for Roa {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Roa {
            ee: EeCert::decode(r)?,
            data: RoaData::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

impl fmt::Display for Roa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefixes: Vec<String> = self.data.prefixes.iter().map(|p| p.to_string()).collect();
        write!(f, "ROA[({}, {})]", prefixes.join(" "), self.data.asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Moment, Span};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn issue_sample() -> (KeyPair, Roa) {
        let sprint = KeyPair::from_seed("sprint");
        let ee = KeyPair::from_seed("ee-roa-1");
        let roa = Roa::issue(
            RoaData { asn: Asn(1239), prefixes: vec![RoaPrefix::up_to(p("63.160.64.0/20"), 24)] },
            100,
            Validity::starting(Moment(0), Span::days(90)),
            &sprint,
            &ee,
        );
        (sprint, roa)
    }

    #[test]
    fn issue_and_verify() {
        let (sprint, roa) = issue_sample();
        assert_eq!(roa.verify(&sprint.public()), Ok(()));
        assert_eq!(roa.asn(), Asn(1239));
        assert_eq!(roa.serial(), 100);
    }

    #[test]
    fn verify_rejects_wrong_issuer() {
        let (_, roa) = issue_sample();
        let other = KeyPair::from_seed("not-sprint");
        assert!(matches!(roa.verify(&other.public()), Err(RoaError::EeSignature(_))));
    }

    #[test]
    fn codec_round_trip_preserves_verifiability() {
        let (sprint, roa) = issue_sample();
        let decoded = Roa::from_bytes(&roa.to_bytes()).unwrap();
        assert_eq!(decoded, roa);
        assert_eq!(decoded.verify(&sprint.public()), Ok(()));
    }

    #[test]
    fn corrupted_bytes_detected() {
        let (sprint, roa) = issue_sample();
        let bytes = roa.to_bytes();
        // Corrupt every byte position in turn; each corruption must be
        // caught structurally or cryptographically.
        for i in (0..bytes.len()).step_by(13) {
            let mut b = bytes.clone();
            b[i] ^= 0xff;
            if let Ok(r) = Roa::from_bytes(&b) {
                assert!(r.verify(&sprint.public()).is_err(), "byte {i} corruption slipped through");
            }
        }
    }

    #[test]
    fn match_and_cover_semantics() {
        // The paper's (63.160.64.0/20-24, AS1239) example.
        let rp = RoaPrefix::up_to(p("63.160.64.0/20"), 24);
        assert!(rp.matches_prefix(p("63.160.64.0/20")));
        assert!(rp.matches_prefix(p("63.160.65.0/24")));
        assert!(!rp.matches_prefix(p("63.160.64.0/25"))); // too long
        assert!(rp.covers_prefix(p("63.160.64.0/25"))); // but covered
        assert!(!rp.matches_prefix(p("63.160.0.0/12"))); // not covered
        assert!(!rp.covers_prefix(p("63.160.0.0/12")));
        // Exact entries authorise only the prefix itself.
        let exact = RoaPrefix::exact(p("63.174.16.0/22"));
        assert_eq!(exact.effective_max_len(), 22);
        assert!(exact.matches_prefix(p("63.174.16.0/22")));
        assert!(!exact.matches_prefix(p("63.174.16.0/23")));
        assert!(exact.covers_prefix(p("63.174.16.0/23")));
    }

    #[test]
    fn roa_prefix_display() {
        assert_eq!(RoaPrefix::up_to(p("63.160.64.0/20"), 24).to_string(), "63.160.64.0/20-24");
        assert_eq!(RoaPrefix::exact(p("63.174.16.0/22")).to_string(), "63.174.16.0/22");
    }

    #[test]
    fn decode_rejects_bad_max_len() {
        let rp = RoaPrefix::up_to(p("10.0.0.0/24"), 28);
        let mut bytes = rp.to_bytes();
        // The maxLength byte is the final one; set it below prefix len.
        *bytes.last_mut().unwrap() = 8;
        assert!(matches!(RoaPrefix::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn resources_union_all_prefixes() {
        let sprint = KeyPair::from_seed("sprint");
        let ee = KeyPair::from_seed("ee-roa-2");
        let roa = Roa::issue(
            RoaData {
                asn: Asn(7341),
                prefixes: vec![
                    RoaPrefix::exact(p("63.17.16.0/22")),
                    RoaPrefix::exact(p("63.17.20.0/22")),
                ],
            },
            7,
            Validity::starting(Moment(0), Span::days(30)),
            &sprint,
            &ee,
        );
        assert_eq!(roa.resources(), ResourceSet::from_prefix_strs("63.17.16.0/21"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn up_to_rejects_short_max() {
        let _ = RoaPrefix::up_to(p("10.0.0.0/24"), 20);
    }
}
