//! Manifests (RFC 6486-shaped).
//!
//! A manifest enumerates every object a CA currently publishes, with
//! hashes. It is the relying party's tool for *detecting missing or
//! corrupted objects* — which matters enormously here because, per Side
//! Effect 6, a missing ROA does not downgrade a route to "unknown" but
//! can flip it to "invalid". RFC 6486 deliberately leaves the response
//! to a manifest mismatch to local policy ([2, Sect 6.5] in the paper);
//! the relying party crate implements several choices.
//!
//! Like ROAs, production manifests are signed with one-time EE
//! certificates; the simulator signs them directly with the CA key — a
//! shortcut that loses nothing the paper analyses (the manifest's EE
//! cert never carries resources that matter).

use std::fmt;

use rpkisim_crypto::{sha256, Digest, KeyId, KeyPair, PublicKey, Signature, SignatureError};
use serde::{Deserialize, Serialize};

use crate::codec::{Decode, DecodeError, Encode, Reader, Writer};
use crate::time::Moment;

/// One manifest entry: a published file and its hash.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// File name within the CA's publication directory.
    pub name: String,
    /// SHA-256 of the file's bytes.
    pub hash: Digest,
}

impl Encode for ManifestEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        Writer::string(out, &self.name);
        self.hash.encode(out);
    }
}

impl Decode for ManifestEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ManifestEntry { name: r.string()?, hash: Digest::decode(r)? })
    }
}

/// The to-be-signed manifest content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestData {
    /// The issuing CA's key.
    pub issuer_key: KeyId,
    /// Monotonically increasing manifest number.
    pub number: u64,
    /// When this manifest was produced.
    pub this_update: Moment,
    /// When the next manifest is due.
    pub next_update: Moment,
    /// Entries sorted by file name (canonical form).
    pub entries: Vec<ManifestEntry>,
}

impl Encode for ManifestData {
    fn encode(&self, out: &mut Vec<u8>) {
        self.issuer_key.encode(out);
        self.number.encode(out);
        self.this_update.encode(out);
        self.next_update.encode(out);
        self.entries.encode(out);
    }
}

impl Decode for ManifestData {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let data = ManifestData {
            issuer_key: KeyId::decode(r)?,
            number: r.u64()?,
            this_update: Moment::decode(r)?,
            next_update: Moment::decode(r)?,
            entries: Vec::<ManifestEntry>::decode(r)?,
        };
        if data.this_update > data.next_update {
            return Err(DecodeError::Invalid("manifest update window inverted"));
        }
        if data.entries.windows(2).any(|w| w[0].name >= w[1].name) {
            return Err(DecodeError::Invalid("manifest entries not sorted-unique"));
        }
        Ok(data)
    }
}

/// A signed manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    data: ManifestData,
    signature: Signature,
}

impl Manifest {
    /// Signs a manifest, sorting entries into canonical order first.
    ///
    /// # Panics
    ///
    /// Panics on issuer key mismatch, inverted window, or duplicate
    /// file names (a CA never publishes two files with one name).
    pub fn sign(mut data: ManifestData, issuer: &KeyPair) -> Self {
        assert_eq!(data.issuer_key, issuer.id(), "issuer key mismatch in ManifestData");
        assert!(data.this_update <= data.next_update, "manifest update window inverted");
        data.entries.sort_by(|a, b| a.name.cmp(&b.name));
        assert!(
            data.entries.windows(2).all(|w| w[0].name != w[1].name),
            "duplicate file name in manifest"
        );
        let signature = issuer.sign(&data.to_bytes());
        Manifest { data, signature }
    }

    /// Convenience: build an entry for a file's bytes.
    pub fn entry_for(name: &str, bytes: &[u8]) -> ManifestEntry {
        ManifestEntry { name: name.to_owned(), hash: sha256(bytes) }
    }

    /// The to-be-signed content.
    pub fn data(&self) -> &ManifestData {
        &self.data
    }

    /// The hash this manifest commits to for `name`, if listed.
    pub fn hash_of(&self, name: &str) -> Option<Digest> {
        self.data
            .entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| self.data.entries[i].hash)
    }

    /// The listed file names, sorted.
    pub fn file_names(&self) -> impl Iterator<Item = &str> {
        self.data.entries.iter().map(|e| e.name.as_str())
    }

    /// Whether the manifest is stale at `now`.
    pub fn is_stale_at(&self, now: Moment) -> bool {
        now > self.data.next_update
    }

    /// Verifies the signature under `issuer_key`.
    pub fn verify(&self, issuer_key: &PublicKey) -> Result<(), SignatureError> {
        issuer_key.verify(&self.data.to_bytes(), &self.signature)
    }

    /// Canonical file name: `<issuer-key-id>.mft`.
    pub fn file_name(&self) -> String {
        format!("{}.mft", self.data.issuer_key.short())
    }
}

impl Encode for Manifest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.data.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for Manifest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Manifest { data: ManifestData::decode(r)?, signature: Signature::decode(r)? })
    }
}

impl fmt::Display for Manifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MFT[{} #{} files={}]",
            self.data.issuer_key.short(),
            self.data.number,
            self.data.entries.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(issuer: &KeyPair) -> Manifest {
        Manifest::sign(
            ManifestData {
                issuer_key: issuer.id(),
                number: 5,
                this_update: Moment(50),
                next_update: Moment(50 + 86_400),
                entries: vec![
                    Manifest::entry_for("zz.roa", b"roa bytes"),
                    Manifest::entry_for("aa.cer", b"cert bytes"),
                ],
            },
            issuer,
        )
    }

    #[test]
    fn sign_sorts_and_verifies() {
        let ca = KeyPair::from_seed("mft-ca");
        let mft = sample(&ca);
        let names: Vec<&str> = mft.file_names().collect();
        assert_eq!(names, vec!["aa.cer", "zz.roa"]);
        assert_eq!(mft.verify(&ca.public()), Ok(()));
    }

    #[test]
    fn hash_lookup_detects_corruption() {
        let ca = KeyPair::from_seed("mft-ca");
        let mft = sample(&ca);
        assert_eq!(mft.hash_of("zz.roa"), Some(sha256(b"roa bytes")));
        assert_ne!(mft.hash_of("zz.roa"), Some(sha256(b"roa bytez")));
        assert_eq!(mft.hash_of("missing.roa"), None);
    }

    #[test]
    fn codec_round_trip() {
        let ca = KeyPair::from_seed("mft-ca");
        let mft = sample(&ca);
        let decoded = Manifest::from_bytes(&mft.to_bytes()).unwrap();
        assert_eq!(decoded, mft);
        assert_eq!(decoded.verify(&ca.public()), Ok(()));
    }

    #[test]
    fn staleness() {
        let ca = KeyPair::from_seed("mft-ca");
        let mft = sample(&ca);
        assert!(!mft.is_stale_at(Moment(50 + 86_400)));
        assert!(mft.is_stale_at(Moment(51 + 86_400)));
    }

    #[test]
    #[should_panic(expected = "duplicate file name")]
    fn duplicate_names_rejected() {
        let ca = KeyPair::from_seed("mft-ca");
        let _ = Manifest::sign(
            ManifestData {
                issuer_key: ca.id(),
                number: 1,
                this_update: Moment(0),
                next_update: Moment(1),
                entries: vec![
                    Manifest::entry_for("a.roa", b"x"),
                    Manifest::entry_for("a.roa", b"y"),
                ],
            },
            &ca,
        );
    }

    #[test]
    fn empty_manifest_is_valid() {
        let ca = KeyPair::from_seed("mft-ca");
        let mft = Manifest::sign(
            ManifestData {
                issuer_key: ca.id(),
                number: 1,
                this_update: Moment(0),
                next_update: Moment(1),
                entries: vec![],
            },
            &ca,
        );
        assert_eq!(mft.verify(&ca.public()), Ok(()));
        assert_eq!(mft.file_names().count(), 0);
    }
}
