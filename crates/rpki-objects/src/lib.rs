//! The RPKI object model for the `rpki-risk` workspace.
//!
//! Everything an RPKI authority can publish, in the shape the relevant
//! RFCs give it (simplified where the paper's footnotes say the detail
//! does not matter — each simplification is documented at its site):
//!
//! - [`ResourceCert`] — resource certificates binding arbitrary IP/AS
//!   resource sets to keys (RFC 6487 + RFC 3779 semantics).
//! - [`Roa`] — route origin authorizations with `maxLength`, signed via
//!   embedded one-time [`EeCert`]s (RFC 6482).
//! - [`Crl`] — certificate revocation lists (RFC 5280 profile).
//! - [`Manifest`] — per-CA publication manifests with file hashes
//!   (RFC 6486).
//! - [`RpkiObject`] — the tagged wire union repositories store.
//! - [`TrustAnchorLocator`] — the relying party's pinned root.
//!
//! Plus the substrate they share: a canonical binary [`codec`],
//! simulated [`time`], and rsync-style [`uri`]s.
//!
//! All objects are immutable values: a CA "overwrites" an object by
//! publishing a different value under the same file name — which is
//! exactly the design decision (persistent names, out-of-band delivery,
//! issuer-controlled directories) whose side effects the paper studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod codec;
pub mod crl;
pub mod manifest;
pub mod object;
mod resenc;
pub mod roa;
pub mod time;
pub mod uri;

pub use cert::{CertData, EeCert, EeCertData, ResourceCert};
pub use codec::{Decode, DecodeError, Encode, Reader, Writer};
pub use crl::{Crl, CrlData};
pub use manifest::{Manifest, ManifestData, ManifestEntry};
pub use object::{RpkiObject, TrustAnchorLocator};
pub use roa::{Roa, RoaData, RoaError, RoaPrefix};
pub use time::{Moment, Span, Validity};
pub use uri::{RepoUri, UriParseError};
