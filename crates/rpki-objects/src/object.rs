//! The tagged union of publishable RPKI objects, and trust anchor
//! locators.
//!
//! Repositories store raw bytes keyed by file name; [`RpkiObject`]
//! provides the type-tagged wire form so a relying party can decode
//! whatever it fetched. A [`TrustAnchorLocator`] is the out-of-band
//! bootstrap a relying party is configured with: where the self-signed
//! root certificate lives and what key it must carry.

use std::fmt;

use rpkisim_crypto::{sha256, Digest, PublicKey};
use serde::{Deserialize, Serialize};

use crate::cert::ResourceCert;
use crate::codec::{Decode, DecodeError, Encode, Reader};
use crate::crl::Crl;
use crate::manifest::Manifest;
use crate::roa::Roa;
use crate::uri::RepoUri;

/// Any object that can appear at a publication point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RpkiObject {
    /// A resource certificate (CA certificate).
    Cert(ResourceCert),
    /// A route origin authorization.
    Roa(Roa),
    /// A certificate revocation list.
    Crl(Crl),
    /// A manifest.
    Manifest(Manifest),
}

const TAG_CERT: u8 = 1;
const TAG_ROA: u8 = 2;
const TAG_CRL: u8 = 3;
const TAG_MFT: u8 = 4;

impl RpkiObject {
    /// The object's canonical file name at its publication point.
    pub fn file_name(&self) -> String {
        match self {
            RpkiObject::Cert(c) => c.file_name(),
            RpkiObject::Roa(r) => r.file_name(),
            RpkiObject::Crl(c) => c.file_name(),
            RpkiObject::Manifest(m) => m.file_name(),
        }
    }

    /// A short kind label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            RpkiObject::Cert(_) => "cer",
            RpkiObject::Roa(_) => "roa",
            RpkiObject::Crl(_) => "crl",
            RpkiObject::Manifest(_) => "mft",
        }
    }

    /// SHA-256 of the canonical bytes (what manifests commit to).
    pub fn digest(&self) -> Digest {
        sha256(&self.to_bytes())
    }
}

impl Encode for RpkiObject {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RpkiObject::Cert(c) => {
                out.push(TAG_CERT);
                c.encode(out);
            }
            RpkiObject::Roa(r) => {
                out.push(TAG_ROA);
                r.encode(out);
            }
            RpkiObject::Crl(c) => {
                out.push(TAG_CRL);
                c.encode(out);
            }
            RpkiObject::Manifest(m) => {
                out.push(TAG_MFT);
                m.encode(out);
            }
        }
    }
}

impl Decode for RpkiObject {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            TAG_CERT => Ok(RpkiObject::Cert(ResourceCert::decode(r)?)),
            TAG_ROA => Ok(RpkiObject::Roa(Roa::decode(r)?)),
            TAG_CRL => Ok(RpkiObject::Crl(Crl::decode(r)?)),
            TAG_MFT => Ok(RpkiObject::Manifest(Manifest::decode(r)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl fmt::Display for RpkiObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpkiObject::Cert(c) => c.fmt(f),
            RpkiObject::Roa(r) => r.fmt(f),
            RpkiObject::Crl(c) => c.fmt(f),
            RpkiObject::Manifest(m) => m.fmt(f),
        }
    }
}

/// A trust anchor locator: the relying party's out-of-band root of
/// trust (RFC 7730-shaped). It pins the *key*, so a repository cannot
/// swap in a different root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustAnchorLocator {
    /// Where the self-signed root certificate is published.
    pub uri: RepoUri,
    /// The root key the fetched certificate must carry.
    pub key: PublicKey,
}

impl TrustAnchorLocator {
    /// A TAL for a given root certificate location and key.
    pub fn new(uri: RepoUri, key: PublicKey) -> Self {
        TrustAnchorLocator { uri, key }
    }

    /// Checks a fetched certificate against this TAL: self-signed, key
    /// matches, signature verifies.
    pub fn accepts(&self, cert: &ResourceCert) -> bool {
        cert.is_self_signed()
            && cert.data().subject_key == self.key
            && cert.verify(&self.key).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertData;
    use crate::crl::CrlData;
    use crate::manifest::ManifestData;
    use crate::roa::{RoaData, RoaPrefix};
    use crate::time::{Moment, Span, Validity};
    use ipres::{Asn, AsnSet, ResourceSet};
    use rpkisim_crypto::KeyPair;

    fn sample_cert() -> (KeyPair, ResourceCert) {
        let iana = KeyPair::from_seed("obj-iana");
        let cert = ResourceCert::sign(
            CertData {
                serial: 1,
                subject: "IANA".to_owned(),
                subject_key: iana.public(),
                resources: ResourceSet::from_prefix_strs("0.0.0.0/0"),
                as_resources: AsnSet::empty(),
                validity: Validity::starting(Moment(0), Span::days(3650)),
                issuer_key: iana.id(),
                sia: RepoUri::new("rpki.iana.example", &["repo"]),
                crl_dp: None,
            },
            &iana,
        );
        (iana, cert)
    }

    #[test]
    fn tagged_round_trip_all_kinds() {
        let (iana, cert) = sample_cert();
        let ee = KeyPair::from_seed("obj-ee");
        let roa = Roa::issue(
            RoaData {
                asn: Asn(1),
                prefixes: vec![RoaPrefix::exact("10.0.0.0/8".parse().unwrap())],
            },
            2,
            Validity::starting(Moment(0), Span::days(30)),
            &iana,
            &ee,
        );
        let crl = Crl::sign(
            CrlData {
                issuer_key: iana.id(),
                number: 1,
                this_update: Moment(0),
                next_update: Moment(10),
                revoked: vec![],
            },
            &iana,
        );
        let mft = Manifest::sign(
            ManifestData {
                issuer_key: iana.id(),
                number: 1,
                this_update: Moment(0),
                next_update: Moment(10),
                entries: vec![],
            },
            &iana,
        );
        for obj in [
            RpkiObject::Cert(cert),
            RpkiObject::Roa(roa),
            RpkiObject::Crl(crl),
            RpkiObject::Manifest(mft),
        ] {
            let decoded = RpkiObject::from_bytes(&obj.to_bytes()).unwrap();
            assert_eq!(decoded, obj);
            assert_eq!(decoded.file_name(), obj.file_name());
            assert_eq!(decoded.digest(), obj.digest());
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(RpkiObject::from_bytes(&[0x7f]), Err(DecodeError::BadTag(0x7f)));
    }

    #[test]
    fn digest_changes_with_content() {
        let (_, cert) = sample_cert();
        let obj = RpkiObject::Cert(cert);
        let mut bytes = obj.to_bytes();
        let d1 = sha256(&bytes);
        bytes[10] ^= 1;
        assert_ne!(sha256(&bytes), d1);
    }

    #[test]
    fn tal_accepts_only_matching_root() {
        let (iana, cert) = sample_cert();
        let tal = TrustAnchorLocator::new(
            RepoUri::new("rpki.iana.example", &["repo", "root.cer"]),
            iana.public(),
        );
        assert!(tal.accepts(&cert));
        // A different self-signed root is rejected by key pinning.
        let evil = KeyPair::from_seed("obj-evil");
        let evil_cert = ResourceCert::sign(
            CertData {
                serial: 1,
                subject: "IANA".to_owned(), // name spoofing is useless
                subject_key: evil.public(),
                resources: ResourceSet::from_prefix_strs("0.0.0.0/0"),
                as_resources: AsnSet::empty(),
                validity: Validity::starting(Moment(0), Span::days(3650)),
                issuer_key: evil.id(),
                sia: RepoUri::new("rpki.iana.example", &["repo"]),
                crl_dp: None,
            },
            &evil,
        );
        assert!(!tal.accepts(&evil_cert));
    }

    #[test]
    fn tal_rejects_non_self_signed() {
        let (iana, _) = sample_cert();
        let child = KeyPair::from_seed("obj-child");
        let cert = ResourceCert::sign(
            CertData {
                serial: 2,
                subject: "Child".to_owned(),
                subject_key: child.public(),
                resources: ResourceSet::from_prefix_strs("10.0.0.0/8"),
                as_resources: AsnSet::empty(),
                validity: Validity::starting(Moment(0), Span::days(365)),
                issuer_key: iana.id(),
                sia: RepoUri::new("rpki.child.example", &["repo"]),
                crl_dp: Some(RepoUri::new("rpki.iana.example", &["repo", "x.crl"])),
            },
            &iana,
        );
        let tal = TrustAnchorLocator::new(
            RepoUri::new("rpki.child.example", &["repo", "x.cer"]),
            child.public(),
        );
        assert!(!tal.accepts(&cert));
    }
}
