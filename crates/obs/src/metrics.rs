//! Counters, gauges, and bounded histograms, all integer-valued.
//!
//! Metrics live in `BTreeMap`s keyed by name so that every export walks
//! them in lexicographic order — a requirement of the byte-identical
//! replay contract. Histograms use fixed bucket bounds supplied at
//! registration (or the default exponential bounds), so two registries
//! built from the same event stream are structurally equal and can be
//! merged without resampling.

use std::collections::BTreeMap;

use crate::event::push_json_str;

/// Default exponential histogram bounds (upper-inclusive bucket edges),
/// suitable for sim-time durations in seconds and for small counts.
pub const DEFAULT_BOUNDS: &[u64] = &[1, 2, 5, 10, 30, 60, 120, 300, 600, 1800, 3600, 7200];

/// A fixed-bound histogram of `u64` observations.
///
/// The histogram has `bounds.len() + 1` buckets: one per upper-inclusive
/// bound plus an overflow bucket. Alongside the buckets it tracks the
/// exact count, sum, min, and max, so summary statistics need no
/// bucket interpolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Upper-inclusive bucket bounds, strictly increasing.
    bounds: Vec<u64>,
    /// Observation counts per bucket; last entry is the overflow bucket.
    counts: Vec<u64>,
    /// Total number of observations.
    count: u64,
    /// Sum of all observed values.
    sum: u64,
    /// Smallest observed value, if any observation was made.
    min: Option<u64>,
    /// Largest observed value, if any observation was made.
    max: Option<u64>,
}

impl Histogram {
    /// Creates an empty histogram with the given upper-inclusive bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// Creates an empty histogram with [`DEFAULT_BOUNDS`].
    pub fn new() -> Self {
        Histogram::with_bounds(DEFAULT_BOUNDS)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => i,
            None => self.bounds.len(),
        };
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` if the histogram is empty.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest observation, or `None` if the histogram is empty.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Integer mean of the observations, or `None` if empty.
    pub fn mean(&self) -> Option<u64> {
        self.sum.checked_div(self.count)
    }

    /// The bucket bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ — merging across bound sets
    /// would require resampling and break replay equality.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "cannot merge histograms with different bounds");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// All three namespaces are independent `BTreeMap`s, so exports and
/// merges walk names in lexicographic order regardless of insertion
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge to `value`.
    pub fn gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into the named histogram, creating it with
    /// [`DEFAULT_BOUNDS`] on first use.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// Records `value` into the named histogram, creating it with the
    /// given bounds on first use.
    ///
    /// # Panics
    /// Panics if the histogram already exists with different bounds.
    pub fn observe_with_bounds(&mut self, name: &str, value: u64, bounds: &[u64]) {
        let hist = self
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds));
        assert_eq!(
            hist.bounds(),
            bounds,
            "histogram {name:?} already registered with different bounds"
        );
        hist.observe(value);
    }

    /// Reads a counter, returning 0 when it was never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge, if it was ever set.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in lexicographic name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in lexicographic name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in lexicographic name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the other registry's value (last-writer-wins), histograms merge
    /// bucket-wise.
    ///
    /// # Panics
    /// Panics if a shared histogram name has different bounds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
    }

    /// Encodes the registry as one deterministic JSON object with
    /// `counters`, `gauges`, and `histograms` sections, names in
    /// lexicographic order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(":{\"count\":");
            out.push_str(&hist.count().to_string());
            out.push_str(",\"sum\":");
            out.push_str(&hist.sum().to_string());
            out.push_str(",\"min\":");
            match hist.min() {
                Some(v) => out.push_str(&v.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"max\":");
            match hist.max() {
                Some(v) => out.push_str(&v.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"buckets\":[");
            for (j, c) in hist.bucket_counts().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_upper_inclusive_with_overflow() {
        let mut h = Histogram::with_bounds(&[10, 100]);
        h.observe(0);
        h.observe(10); // upper-inclusive: lands in the first bucket
        h.observe(11);
        h.observe(100);
        h.observe(101); // overflow
        assert_eq!(h.bucket_counts(), &[2, 2, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 222);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(101));
        assert_eq!(h.mean(), Some(44));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::with_bounds(&[10, 10]);
    }

    #[test]
    fn histogram_merge_adds_bucketwise_and_tracks_extremes() {
        let mut a = Histogram::with_bounds(&[5, 50]);
        let mut b = Histogram::with_bounds(&[5, 50]);
        a.observe(3);
        a.observe(60);
        b.observe(7);
        a.merge(&b);
        assert_eq!(a.bucket_counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(3));
        assert_eq!(a.max(), Some(60));
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::with_bounds(&[5]);
        let b = Histogram::with_bounds(&[6]);
        a.merge(&b);
    }

    #[test]
    fn registry_merge_adds_counters_overwrites_gauges_merges_histograms() {
        let mut a = MetricsRegistry::new();
        a.count("net.sent", 4);
        a.gauge("bgp.worklist_peak", 9);
        a.observe_with_bounds("repo.attempt_secs", 40, &[30, 60]);

        let mut b = MetricsRegistry::new();
        b.count("net.sent", 2);
        b.count("net.dropped", 1);
        b.gauge("bgp.worklist_peak", 12);
        b.observe_with_bounds("repo.attempt_secs", 90, &[30, 60]);

        a.merge(&b);
        assert_eq!(a.counter("net.sent"), 6);
        assert_eq!(a.counter("net.dropped"), 1);
        assert_eq!(a.gauge_value("bgp.worklist_peak"), Some(12));
        let h = a.histogram("repo.attempt_secs").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts(), &[0, 1, 1]);
    }

    #[test]
    fn registry_json_is_sorted_and_stable() {
        let mut r = MetricsRegistry::new();
        r.count("z.late", 1);
        r.count("a.early", 2);
        r.gauge("mid", -3);
        r.observe_with_bounds("h", 2, &[1, 4]);
        let json = r.to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a.early\":2,\"z.late\":1},\"gauges\":{\"mid\":-3},\
             \"histograms\":{\"h\":{\"count\":1,\"sum\":2,\"min\":2,\"max\":2,\
             \"buckets\":[0,1,0]}}}"
        );
        assert_eq!(json, r.clone().to_json());
    }
}
