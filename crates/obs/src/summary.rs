//! The summary renderer the bench binaries report through.
//!
//! A [`Summary`] is an ordered document of titled sections: free-form
//! notes, key/value blocks, and fixed-width [`SummaryTable`]s. Binaries
//! build one per experiment and render it once, so every experiment's
//! stdout has the same shape and golden outputs can be diffed line by
//! line. A summary can also fold in a [`MetricsRegistry`] snapshot,
//! rendering counters/gauges/histograms as a key/value section in
//! lexicographic order.

use std::fmt::Display;

use crate::metrics::MetricsRegistry;

/// A minimal fixed-width table, column-aligned on render.
#[derive(Debug, Clone, Default)]
pub struct SummaryTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl SummaryTable {
    /// A table with the given column headers.
    pub fn new<S: Display>(header: &[S]) -> Self {
        SummaryTable { header: header.iter().map(|h| h.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row<S: Display>(&mut self, cells: &[S]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with two-space column gutters and a rule
    /// under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

#[derive(Debug, Clone)]
enum Section {
    Note(String),
    KeyVals { title: String, pairs: Vec<(String, String)> },
    Table { title: String, table: SummaryTable },
}

/// An ordered, titled report document for one experiment run.
#[derive(Debug, Clone)]
pub struct Summary {
    title: String,
    sections: Vec<Section>,
}

impl Summary {
    /// Starts a summary with a top-level title.
    pub fn new(title: &str) -> Self {
        Summary { title: title.to_string(), sections: Vec::new() }
    }

    /// Appends a free-form note paragraph.
    pub fn note(&mut self, text: &str) -> &mut Self {
        self.sections.push(Section::Note(text.to_string()));
        self
    }

    /// Appends a titled key/value block; pairs render in given order.
    pub fn key_vals<K: Display, V: Display>(&mut self, title: &str, pairs: &[(K, V)]) -> &mut Self {
        self.sections.push(Section::KeyVals {
            title: title.to_string(),
            pairs: pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        });
        self
    }

    /// Appends a titled table section.
    pub fn table(&mut self, title: &str, table: SummaryTable) -> &mut Self {
        self.sections.push(Section::Table { title: title.to_string(), table });
        self
    }

    /// Appends the non-empty parts of a metrics registry as key/value
    /// sections (`counters`, `gauges`, `histograms`), names in
    /// lexicographic order. Histograms render as
    /// `count/sum/min/max/mean`.
    pub fn metrics(&mut self, registry: &MetricsRegistry) -> &mut Self {
        let counters: Vec<(String, String)> =
            registry.counters().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        if !counters.is_empty() {
            self.key_vals("counters", &counters);
        }
        let gauges: Vec<(String, String)> =
            registry.gauges().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        if !gauges.is_empty() {
            self.key_vals("gauges", &gauges);
        }
        let histograms: Vec<(String, String)> = registry
            .histograms()
            .map(|(k, h)| {
                (
                    k.to_string(),
                    format!(
                        "count={} sum={} min={} max={} mean={}",
                        h.count(),
                        h.sum(),
                        h.min().map_or_else(|| "-".into(), |v| v.to_string()),
                        h.max().map_or_else(|| "-".into(), |v| v.to_string()),
                        h.mean().map_or_else(|| "-".into(), |v| v.to_string()),
                    ),
                )
            })
            .collect();
        if !histograms.is_empty() {
            self.key_vals("histograms", &histograms);
        }
        self
    }

    /// Renders the whole document deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for section in &self.sections {
            out.push('\n');
            match section {
                Section::Note(text) => {
                    out.push_str(text);
                    out.push('\n');
                }
                Section::KeyVals { title, pairs } => {
                    out.push_str(&format!("-- {title} --\n"));
                    let width = pairs.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
                    for (k, v) in pairs {
                        out.push_str(&format!("{k:<width$}  {v}\n"));
                    }
                }
                Section::Table { title, table } => {
                    out.push_str(&format!("-- {title} --\n"));
                    out.push_str(&table.render());
                }
            }
        }
        out
    }

    /// Prints the rendered document to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = SummaryTable::new(&["name", "n"]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("alpha  1"));
        assert!(lines[3].starts_with("b      22"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_checks_row_width() {
        let mut t = SummaryTable::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn summary_renders_sections_in_order() {
        let mut registry = MetricsRegistry::new();
        registry.count("net.sent", 3);
        let mut table = SummaryTable::new(&["k"]);
        table.row(&["v"]);
        let mut summary = Summary::new("demo");
        summary
            .note("a note")
            .key_vals("params", &[("seed", 2013u64)])
            .table("rows", table)
            .metrics(&registry);
        let out = summary.render();
        assert_eq!(
            out,
            "== demo ==\n\na note\n\n-- params --\nseed  2013\n\n\
             -- rows --\nk\n-\nv\n\n-- counters --\nnet.sent  3\n"
        );
    }

    #[test]
    fn empty_metrics_add_no_sections() {
        let mut summary = Summary::new("t");
        summary.metrics(&MetricsRegistry::new());
        assert_eq!(summary.render(), "== t ==\n");
    }
}
