//! Structured trace events and their deterministic JSON encoding.
//!
//! An event is a point on the simulated timeline: *when* (sim-time
//! seconds), *where* (layer), *what* (kind), plus a small set of typed
//! fields. Field order is the order the instrumentation recorded them
//! in, and the encoder preserves it, so the JSONL form of a trace is a
//! pure function of the recorded data — no map iteration, no locale,
//! no float formatting.

/// A typed field value attached to a [`TraceEvent`].
///
/// Only integers, booleans, and strings are representable: floats are
/// deliberately excluded from the trace so encodings can never differ
/// across platforms or formatting modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer (counts, sizes, sim-time seconds).
    U64(u64),
    /// A signed integer (deltas, gauge levels).
    I64(i64),
    /// A short machine-readable string (host names, outcome labels).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

/// One structured event on the simulated timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time the event occurred at, in seconds.
    pub at: u64,
    /// Recorder-assigned sequence number; the total-order tie-break
    /// for events sharing a sim-time instant.
    pub seq: u64,
    /// The emitting layer (`"net"`, `"repo"`, `"rp"`, `"bgp"`,
    /// `"monitor"`, `"campaign"`, ...).
    pub layer: &'static str,
    /// The event kind within the layer (`"deliver"`, `"attempt"`, ...).
    pub kind: &'static str,
    /// Typed payload fields, in recording order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// Encodes the event as one JSON object on a single line.
    ///
    /// The fixed key order is `at`, `seq`, `layer`, `kind`, then the
    /// payload fields in recording order. Equal events encode to equal
    /// bytes.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        out.push_str("{\"at\":");
        out.push_str(&self.at.to_string());
        out.push_str(",\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"layer\":");
        push_json_str(&mut out, self.layer);
        out.push_str(",\"kind\":");
        push_json_str(&mut out, self.kind);
        for (key, value) in &self.fields {
            out.push(',');
            push_json_str(&mut out, key);
            out.push(':');
            match value {
                FieldValue::U64(v) => out.push_str(&v.to_string()),
                FieldValue::I64(v) => out.push_str(&v.to_string()),
                FieldValue::Str(v) => push_json_str(&mut out, v),
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }
}

/// Appends `s` to `out` as a JSON string literal with the minimal
/// escape set (`"`, `\`, control characters as `\u00XX`).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_fixed_key_order_and_payload_order() {
        let ev = TraceEvent {
            at: 1800,
            seq: 7,
            layer: "repo",
            kind: "attempt",
            fields: vec![
                ("host", FieldValue::Str("rpki.arin.example".into())),
                ("attempt", FieldValue::U64(2)),
                ("complete", FieldValue::Bool(false)),
                ("delta", FieldValue::I64(-3)),
            ],
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"at\":1800,\"seq\":7,\"layer\":\"repo\",\"kind\":\"attempt\",\
             \"host\":\"rpki.arin.example\",\"attempt\":2,\"complete\":false,\"delta\":-3}"
        );
    }

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
