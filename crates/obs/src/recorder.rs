//! The [`Recorder`] handle: the single entry point instrumented code
//! talks to.
//!
//! A recorder is either *live* (backed by shared interior state) or
//! *disabled* (a `None` handle). Every recording method branches once
//! on that option; the disabled arm allocates nothing and returns
//! immediately, which is what keeps instrumentation affordable in hot
//! paths like the network step loop. Cloning a live recorder clones an
//! `Rc`, so every layer can hold its own handle onto one shared trace.

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::{FieldValue, TraceEvent};
use crate::metrics::MetricsRegistry;

#[derive(Debug, Default)]
struct Inner {
    events: Vec<TraceEvent>,
    metrics: MetricsRegistry,
    next_seq: u64,
    next_span: u64,
    open_spans: Vec<(u64, &'static str, &'static str, u64)>,
}

/// A cheap, cloneable handle onto a shared deterministic trace.
///
/// Obtain a live one with [`Recorder::new`] and a no-op one with
/// [`Recorder::disabled`]. All methods are safe to call on either.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Rc<RefCell<Inner>>>,
}

/// Token returned by [`Recorder::span_start`] and consumed by
/// [`Recorder::span_end`]. A token from a disabled recorder is inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken(Option<u64>);

impl Recorder {
    /// Creates a live recorder with an empty trace and registry.
    pub fn new() -> Self {
        Recorder { inner: Some(Rc::new(RefCell::new(Inner::default()))) }
    }

    /// Creates a disabled recorder: every call is a single-branch no-op.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts building an event at sim-time `at` for `layer`/`kind`.
    ///
    /// The builder is inert when the recorder is disabled; call
    /// [`EventBuilder::emit`] to append the event to the trace.
    pub fn event(&self, at: u64, layer: &'static str, kind: &'static str) -> EventBuilder<'_> {
        EventBuilder {
            recorder: self,
            draft: self.inner.as_ref().map(|_| TraceEvent {
                at,
                seq: 0,
                layer,
                kind,
                fields: Vec::new(),
            }),
        }
    }

    /// Adds `delta` to the named counter.
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().metrics.count(name, delta);
        }
    }

    /// Sets the named gauge.
    pub fn gauge(&self, name: &str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().metrics.gauge(name, value);
        }
    }

    /// Records one observation into the named histogram (default bounds).
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().metrics.observe(name, value);
        }
    }

    /// Opens a span-style phase timer at sim-time `at`.
    ///
    /// Spans are closed explicitly with [`Recorder::span_end`] — there
    /// is no drop-based timing, because only the caller knows the
    /// simulated clock. Opening a span emits a `span_begin` event.
    pub fn span_start(&self, at: u64, layer: &'static str, name: &'static str) -> SpanToken {
        match &self.inner {
            None => SpanToken(None),
            Some(inner) => {
                let id = {
                    let mut inner = inner.borrow_mut();
                    let id = inner.next_span;
                    inner.next_span += 1;
                    inner.open_spans.push((id, layer, name, at));
                    id
                };
                self.event(at, layer, "span_begin").str("span", name).u64("span_id", id).emit();
                SpanToken(Some(id))
            }
        }
    }

    /// Closes a span at sim-time `at`, emitting a `span_end` event and
    /// recording the sim-time duration into the histogram
    /// `span.<layer>.<name>`.
    ///
    /// Tokens from disabled recorders (and unknown tokens) are ignored.
    pub fn span_end(&self, at: u64, token: SpanToken) {
        let (Some(inner), Some(id)) = (&self.inner, token.0) else {
            return;
        };
        let found = {
            let mut inner = inner.borrow_mut();
            match inner.open_spans.iter().position(|(sid, ..)| *sid == id) {
                Some(idx) => Some(inner.open_spans.remove(idx)),
                None => None,
            }
        };
        if let Some((_, layer, name, started_at)) = found {
            let duration = at.saturating_sub(started_at);
            self.event(at, layer, "span_end")
                .str("span", name)
                .u64("span_id", id)
                .u64("duration", duration)
                .emit();
            if let Some(inner) = &self.inner {
                inner.borrow_mut().metrics.observe(&format!("span.{layer}.{name}"), duration);
            }
        }
    }

    /// Number of events recorded so far (0 when disabled).
    pub fn event_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| inner.borrow().events.len())
    }

    /// Returns a snapshot clone of the recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| inner.borrow().events.clone())
    }

    /// Returns a snapshot clone of the metrics registry.
    pub fn metrics(&self) -> MetricsRegistry {
        self.inner
            .as_ref()
            .map_or_else(MetricsRegistry::new, |inner| inner.borrow().metrics.clone())
    }

    /// Renders the full trace as JSONL: one event per line, trailing
    /// newline after each, byte-identical across replays of a seed.
    pub fn trace_jsonl(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let inner = inner.borrow();
        let mut out = String::with_capacity(inner.events.len() * 96);
        for ev in &inner.events {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }

    fn push_event(&self, mut event: TraceEvent) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            event.seq = inner.next_seq;
            inner.next_seq += 1;
            inner.events.push(event);
        }
    }
}

/// Builder returned by [`Recorder::event`]; chain typed field setters
/// and finish with [`EventBuilder::emit`].
///
/// When the recorder is disabled every setter is a no-op and `emit`
/// does nothing.
#[must_use = "an event builder does nothing until .emit() is called"]
#[derive(Debug)]
pub struct EventBuilder<'r> {
    recorder: &'r Recorder,
    draft: Option<TraceEvent>,
}

impl EventBuilder<'_> {
    /// Attaches an unsigned integer field.
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        if let Some(draft) = &mut self.draft {
            draft.fields.push((key, FieldValue::U64(value)));
        }
        self
    }

    /// Attaches a signed integer field.
    pub fn i64(mut self, key: &'static str, value: i64) -> Self {
        if let Some(draft) = &mut self.draft {
            draft.fields.push((key, FieldValue::I64(value)));
        }
        self
    }

    /// Attaches a string field.
    pub fn str(mut self, key: &'static str, value: &str) -> Self {
        if let Some(draft) = &mut self.draft {
            draft.fields.push((key, FieldValue::Str(value.to_string())));
        }
        self
    }

    /// Attaches a boolean field.
    pub fn bool(mut self, key: &'static str, value: bool) -> Self {
        if let Some(draft) = &mut self.draft {
            draft.fields.push((key, FieldValue::Bool(value)));
        }
        self
    }

    /// Appends the event to the trace (no-op when disabled).
    pub fn emit(self) {
        if let Some(draft) = self.draft {
            self.recorder.push_event(draft);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        rec.event(5, "net", "deliver").u64("bytes", 10).emit();
        rec.count("net.sent", 1);
        rec.observe("lat", 3);
        let token = rec.span_start(0, "rp", "validate");
        rec.span_end(9, token);
        assert!(!rec.is_enabled());
        assert_eq!(rec.event_count(), 0);
        assert!(rec.metrics().is_empty());
        assert_eq!(rec.trace_jsonl(), "");
    }

    #[test]
    fn clones_share_one_trace_with_monotonic_seq() {
        let rec = Recorder::new();
        let other = rec.clone();
        rec.event(1, "net", "send").emit();
        other.event(1, "net", "deliver").emit();
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].kind, "deliver");
    }

    #[test]
    fn spans_emit_paired_events_and_a_duration_histogram() {
        let rec = Recorder::new();
        let token = rec.span_start(100, "rp", "validate");
        rec.span_end(160, token);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "span_begin");
        assert_eq!(events[1].kind, "span_end");
        assert!(events[1].fields.contains(&("duration", FieldValue::U64(60))));
        let metrics = rec.metrics();
        let hist = metrics.histogram("span.rp.validate").unwrap();
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 60);
    }

    #[test]
    fn trace_jsonl_is_one_line_per_event() {
        let rec = Recorder::new();
        rec.event(1, "a", "x").emit();
        rec.event(2, "b", "y").u64("n", 3).emit();
        let jsonl = rec.trace_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"at\":1,\"seq\":0,\"layer\":\"a\",\"kind\":\"x\"}");
        assert_eq!(lines[1], "{\"at\":2,\"seq\":1,\"layer\":\"b\",\"kind\":\"y\",\"n\":3}");
    }
}
