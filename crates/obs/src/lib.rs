//! `rpki-obs` — deterministic, sans-IO observability for the workspace.
//!
//! The paper's open problem is *detection*: monitoring schemes that
//! deter RPKI manipulations by noticing suspiciously reissued objects,
//! and telling abuse from routine churn (Side Effect 2). Both are
//! observability problems over the simulator's event stream — and a
//! simulator whose layers cannot be observed cannot be made fast or
//! resilient at scale either. This crate is the one instrumentation
//! substrate every other crate reports through:
//!
//! - a **structured event log** ([`TraceEvent`]) keyed by simulated
//!   time — never the wall clock — with a per-recorder sequence number
//!   as the total-order tie-break, so two runs of the same seed emit
//!   **byte-identical** traces;
//! - a **metrics registry** ([`MetricsRegistry`]) of counters, gauges,
//!   and bounded [`Histogram`]s, all integer-valued and mergeable;
//! - **span timers** ([`Recorder::span_start`] / [`Recorder::span_end`])
//!   measuring phases on the simulated clock;
//! - a **JSONL exporter** ([`Recorder::trace_jsonl`]) and a
//!   **summary-table renderer** ([`Summary`]) shared by the bench
//!   binaries, so every experiment reports through one pipeline and CI
//!   can diff golden traces.
//!
//! # Determinism contract
//!
//! Everything recorded is an integer, a boolean, or a string computed
//! from simulation state. No wall-clock reads, no map-order iteration
//! (all registries are `BTreeMap`s), no floats in the trace. The JSONL
//! encoding writes fields in their recorded order with a fixed escape
//! set, so equal traces are equal *bytes* — the property the
//! golden-trace tests pin.
//!
//! # Zero cost when disabled
//!
//! A [`Recorder`] is a handle that is either live or
//! [`Recorder::disabled`]. Every recording call starts with one branch
//! on the handle; the disabled path allocates nothing, formats nothing,
//! and touches no shared state. Instrumented code takes a `Recorder` by
//! value (cloning is one `Rc` bump) and never checks "am I enabled"
//! itself. The `bench_propagation` harness asserts the disabled-mode
//! overhead stays under 5% in release builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod summary;

pub use event::{FieldValue, TraceEvent};
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{EventBuilder, Recorder, SpanToken};
pub use summary::{Summary, SummaryTable};
