//! Seeded fault campaigns: the `ablation_resilience` harness.
//!
//! A *campaign* is a deterministic schedule of repository faults —
//! corruption bursts, flapping partitions, takedowns, Stalloris-style
//! slow serves and RRDP pins, stealthy withdrawals — played against the
//! model world while five relying-party configurations validate on a
//! fixed cadence:
//!
//! 1. **bare** — one sync per directory, no timeouts (the RP the paper
//!    assumes);
//! 2. **retrying** — deadlines, exponential backoff, digest-checked
//!    retries ([`SyncPolicy`]);
//! 3. **retrying + stale cache** — plus last-good snapshot fallback and
//!    circuit breaking ([`ResilientState`]);
//! 4. **suspenders** — plus the hold-down fail-safe
//!    ([`SuspendersState`]) over the validated VRPs;
//! 5. **rrdp** — the resilient stack fetching over RRDP
//!    ([`RrdpSource`](rpki_rp::RrdpSource), verified mode) with the
//!    rsync path as its downgrade target.
//!
//! Each tier runs in its *own* freshly seeded world, so tiers never
//! contaminate each other's fault dice; determinism is per
//! `(campaign, seed, tier)`. All metrics are integers, so serialized
//! outcomes are byte-identical across runs of the same seed — the
//! property `tests/resilience_campaign.rs` pins.
//!
//! The interesting separations the standard campaigns expose:
//!
//! - transport faults (corruption, partitions, takedowns) separate the
//!   first three tiers: retries repair lossy rounds, the stale cache
//!   bridges rounds where even retries fail;
//! - a **slow serve** separates *boundedness* from availability: the
//!   bare RP hangs until the stalled bytes arrive (counted available,
//!   hours late), the retrying RP times out and loses the round — only
//!   the stale cache gets both bounded time and availability;
//! - a **withdrawal** separates the stale cache from Suspenders: a
//!   complete sync that simply lacks a file updates the snapshot, so
//!   only the hold-down layer bridges authority-side removals.

use std::collections::BTreeSet;

use ipres::Prefix;
use netsim::NodeId;
use rpki_attacks::{CorpusKind, StarvePlan};
use rpki_ca::{ChurnConfig, ChurnEngine};
use rpki_objects::{Moment, RoaPrefix, Span};
use rpki_obs::Recorder;
use rpki_repo::{Freshness, RrdpClientState, SyncPolicy};
use rpki_rp::fabric::{pump_until, RtrEndpoint};
use rpki_rp::{
    MergePolicy, Relay, ResilienceConfig, ResilientState, Route, RouteValidity, RtrFabric,
    RtrRouter, SchedulePlan, SchedulerState, ShardPlan, SlurmFile, UnsafeVrpPolicy, ValidationRun,
    ValidationState, Vrp, VrpCache, VrpUpdate,
};
use serde::Serialize;

use crate::fixtures::{asn, ModelRpki};
use crate::suspenders::{SuspendersConfig, SuspendersState};
use crate::validate::ValidationOptions;

/// Seconds between validation rounds (a 30-minute RP cadence; short
/// enough that a full campaign stays inside every manifest's one-day
/// validity window, so no republishing perturbs the schedule).
pub const ROUND_SECS: u64 = 1800;

/// One kind of repository fault a window can impose.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultKind {
    /// Probabilistic corruption of every repository→RP frame.
    CorruptionBurst {
        /// Per-message corruption probability.
        prob: f64,
    },
    /// A hard partition between the RP and the repository.
    Partition,
    /// A partition present on every other round of the window.
    Flapping,
    /// The repository host is down entirely.
    Takedown,
    /// Stalloris: the repository serves, but `extra` seconds late.
    Stall {
        /// Added one-way delay on repository→RP frames.
        extra: u64,
    },
    /// Schedule gaming ([`rpki_attacks::starve`]): the repository
    /// itself holds every response for `extra` seconds before
    /// answering. Unlike [`Stall`](FaultKind::Stall) — a transport
    /// fault armed per RP pair — this is the authority's own serve
    /// latency, seen identically by every client, and tuned *under*
    /// the per-attempt deadline so nothing ever fails: the slow host
    /// just burns a budgeted fetch scheduler's time budget and starves
    /// the publication points behind it in the walk order.
    SlowServe {
        /// Seconds the repository sits on each response.
        extra: u64,
    },
    /// The authority stealthily withdraws Continental's covering `/20`
    /// ROA (file deleted, manifest regenerated — no revocation) for the
    /// window, then reissues it. An authority-side fault: transport
    /// defenses must *not* bridge it; Suspenders must.
    Withdraw,
    /// Stalloris stale-data pinning: at the window's first round the
    /// host freezes its RRDP feed at the then-current state and replays
    /// it (notification, snapshot, deltas) until the window closes.
    /// Writes landing during the window — including a concurrent
    /// [`Withdraw`](FaultKind::Withdraw) — stay hidden from RRDP while
    /// rsync serves the truth. Only RRDP-preferring tiers are affected;
    /// a verified RRDP client detects the pin and downgrades.
    RrdpPin,
    /// The host refuses RRDP outright for the window (every request
    /// answered NotFound), forcing RRDP-preferring clients through the
    /// rsync downgrade path each round.
    RrdpWithhold,
    /// The authority publishes one adversarial corpus case
    /// ([`rpki_attacks::corpus`]) at the window's first round — signed
    /// with its own key, written through the publication log — and
    /// heals it with a fresh honest snapshot when the window closes.
    /// Tests pin that every tier survives this without panicking and
    /// that campaign metrics stay byte-identical across replays.
    AdversarialPublish {
        /// Which corpus family to publish.
        kind: CorpusKind,
    },
    /// A hard partition of the RTR feed path (relay ↔ every router):
    /// the relying parties stay perfectly synchronised while *routers*
    /// go deaf — the hop the repository fault kinds cannot reach. Only
    /// [`run_campaign_rtr`] interprets this; repository-only runners
    /// treat it as a no-op. The window's `host` is a label, not a
    /// repository lookup.
    RtrPartition,
    /// The RTR feed path serves, but `extra` seconds late (Stalloris
    /// moved one hop down): frames stalled past the per-round pump
    /// budget never arrive, the session times out, and routers act on
    /// yesterday's VRPs. Only [`run_campaign_rtr`] interprets this.
    RtrStall {
        /// Added one-way delay on relay→router frames.
        extra: u64,
    },
}

impl FaultKind {
    /// Whether this fault targets the RTR feed path rather than a
    /// repository host (so `FaultWindow::host` is a label, not a
    /// lookup).
    pub fn is_rtr(self) -> bool {
        matches!(self, FaultKind::RtrPartition | FaultKind::RtrStall { .. })
    }
}

/// A fault applied to one repository host over a round interval
/// (inclusive on both ends; rounds are numbered from 1).
#[derive(Debug, Clone, Serialize)]
pub struct FaultWindow {
    /// The repository host the fault targets.
    pub host: String,
    /// What goes wrong.
    pub kind: FaultKind,
    /// First affected round.
    pub from: usize,
    /// Last affected round.
    pub to: usize,
}

impl FaultWindow {
    fn active(&self, round: usize) -> bool {
        self.from <= round && round <= self.to
    }
}

/// A named, fully deterministic fault schedule.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignSpec {
    /// Campaign name (stable; used in reports).
    pub name: String,
    /// Number of validation rounds after the warm-up.
    pub rounds: usize,
    /// The fault windows in force.
    pub windows: Vec<FaultWindow>,
    /// The unsafe-VRP policy every tier validates under (default
    /// [`UnsafeVrpPolicy::Accept`], matching deployed practice).
    pub unsafe_vrps: UnsafeVrpPolicy,
    /// Background CA churn applied to the world every round *before*
    /// that round's faults. `None` keeps repositories quiet between
    /// faults — the behaviour of every earlier campaign. The engine is
    /// seeded with the campaign seed, so per-tier worlds churn through
    /// byte-identical schedules and tiers stay comparable. Use
    /// [`ChurnConfig::renew_only`] for campaigns whose assertions
    /// depend on a fixed VRP population.
    pub churn: Option<ChurnConfig>,
}

impl CampaignSpec {
    /// The same campaign under a different unsafe-VRP policy.
    pub fn with_unsafe_policy(mut self, policy: UnsafeVrpPolicy) -> Self {
        self.unsafe_vrps = policy;
        self
    }

    /// The same campaign with background CA churn at the given rates.
    pub fn with_churn(mut self, churn: ChurnConfig) -> Self {
        self.churn = Some(churn);
        self
    }
}

/// The relying-party configurations the ablation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RpTier {
    /// One bare sync per directory; no timeouts, no cache.
    Bare,
    /// Retries with deadlines and backoff, but no cache fallback.
    Retrying,
    /// Retries plus last-good snapshot fallback and circuit breaking.
    RetryingStale,
    /// The full stack plus the Suspenders hold-down over VRPs.
    Suspenders,
    /// The resilient stack fetching over RRDP (verified: every sync is
    /// cross-checked against an rsync digest probe) with the rsync
    /// retry path as its downgrade target.
    Rrdp,
}

impl RpTier {
    /// All tiers, weakest first.
    pub const ALL: [RpTier; 5] =
        [RpTier::Bare, RpTier::Retrying, RpTier::RetryingStale, RpTier::Suspenders, RpTier::Rrdp];

    /// A short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RpTier::Bare => "bare",
            RpTier::Retrying => "retrying",
            RpTier::RetryingStale => "retrying+stale",
            RpTier::Suspenders => "suspenders",
            RpTier::Rrdp => "rrdp",
        }
    }
}

/// What one tier saw in one round. All counts are integers so that the
/// serialized campaign outcome is byte-identical across replays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RoundMetrics {
    /// Round number (1-based; the warm-up round is not recorded).
    pub round: usize,
    /// VRPs in the tier's effective cache.
    pub vrps: usize,
    /// Legitimate announcements classified valid.
    pub valid: usize,
    /// Legitimate announcements classified invalid (flips from the
    /// all-valid healthy baseline).
    pub invalid: usize,
    /// Legitimate announcements classified unknown (flips from the
    /// all-valid healthy baseline).
    pub unknown: usize,
    /// Publication points served from a stale snapshot this round.
    pub stale_dirs: usize,
    /// RRDP→rsync downgrades this round (always 0 for non-RRDP tiers).
    pub rrdp_downgrades: usize,
    /// VRPs flagged unsafe this round (overlapping a rejected CA's
    /// resources; always 0 under [`UnsafeVrpPolicy::Accept`]).
    pub unsafe_vrps: usize,
    /// CAs the walk rejected this round.
    pub rejected_cas: usize,
}

/// Campaign-wide sums for one tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TierTotals {
    /// Σ `vrps` over rounds — the VRP-availability integral.
    pub vrp_round_sum: usize,
    /// The worst single round's VRP count.
    pub min_vrps: usize,
    /// Σ `valid` over rounds.
    pub valid_round_sum: usize,
    /// Σ `invalid`: announcement-rounds flipped valid→invalid.
    pub invalid_flips: usize,
    /// Σ `unknown`: announcement-rounds flipped valid→unknown.
    pub unknown_flips: usize,
    /// Σ `stale_dirs`: directory-rounds bridged by the snapshot cache.
    pub stale_dir_rounds: usize,
    /// Σ `rrdp_downgrades`: RRDP→rsync fallbacks across the campaign.
    pub rrdp_downgrades: usize,
    /// Σ `unsafe_vrps`: unsafe VRP-rounds across the campaign.
    pub unsafe_vrp_rounds: usize,
    /// Σ `rejected_cas`: rejected CA-rounds across the campaign.
    pub rejected_ca_rounds: usize,
}

/// One tier's full trace through a campaign.
#[derive(Debug, Clone, Serialize)]
pub struct TierOutcome {
    /// Which configuration this is.
    pub tier: RpTier,
    /// Per-round metrics, in round order.
    pub rounds: Vec<RoundMetrics>,
    /// Campaign-wide sums.
    pub totals: TierTotals,
}

/// The result of running one campaign at one seed across all tiers.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignOutcome {
    /// The campaign's name.
    pub name: String,
    /// The network seed used.
    pub seed: u64,
    /// Rounds per tier.
    pub rounds: usize,
    /// One trace per tier, in [`RpTier::ALL`] order.
    pub tiers: Vec<TierOutcome>,
}

impl CampaignOutcome {
    /// The trace of `tier`.
    pub fn tier(&self, tier: RpTier) -> &TierOutcome {
        self.tiers.iter().find(|t| t.tier == tier).expect("all tiers present")
    }
}

/// Cross-RP divergence in one shared-world round: how far the tiers'
/// validated VRP sets drifted apart. All integers, so serialized
/// outcomes replay byte-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DivergenceMetrics {
    /// Round number (1-based).
    pub round: usize,
    /// Distinct validated VRP sets across the tiers (1 = full
    /// agreement; up to one per tier under asymmetric faults).
    pub distinct_vrp_sets: usize,
    /// Σ over tier pairs of the symmetric-difference size of their
    /// validated VRP sets.
    pub pairwise_diff_sum: usize,
    /// The single largest pairwise symmetric difference.
    pub max_pairwise_diff: usize,
}

/// Wire load one repository host served across a shared-world campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HostLoad {
    /// The repository host.
    pub host: String,
    /// Publication-point directories that served at least one frame.
    pub dirs: usize,
    /// Response frames served.
    pub frames: u64,
    /// Encoded response bytes served.
    pub bytes: u64,
}

/// The result of running one campaign with every tier validating
/// against *one* shared repository world.
#[derive(Debug, Clone, Serialize)]
pub struct SharedCampaignOutcome {
    /// The campaign's name.
    pub name: String,
    /// The network seed used.
    pub seed: u64,
    /// Rounds per tier.
    pub rounds: usize,
    /// One trace per tier, in [`RpTier::ALL`] order.
    pub tiers: Vec<TierOutcome>,
    /// Per-round cross-tier divergence.
    pub divergence: Vec<DivergenceMetrics>,
    /// Per-host server-side load over the campaign rounds (warm-up
    /// excluded), in host order.
    pub load: Vec<HostLoad>,
}

impl SharedCampaignOutcome {
    /// The trace of `tier`.
    pub fn tier(&self, tier: RpTier) -> &TierOutcome {
        self.tiers.iter().find(|t| t.tier == tier).expect("all tiers present")
    }
}

/// Shape of the RTR fabric a [`run_campaign_rtr`] run attaches to the
/// shared world: a relay merging the five tier feeds, re-serving a
/// population of routers.
#[derive(Debug, Clone, Copy)]
pub struct RtrConfig {
    /// Routers behind the relay.
    pub routers: usize,
    /// Per-serial delta-history depth on every cache (tier fabrics and
    /// the relay's downstream target).
    pub max_history: usize,
    /// How the relay merges the five tier feeds.
    pub policy: MergePolicy,
    /// Seconds of simulated time each of the round's two RTR pump
    /// windows may consume. Frames stalled past the budget never
    /// arrive: the session times out (the pair is flushed) and the
    /// router stays stale until a later round reaches it.
    pub pump_budget: u64,
}

impl Default for RtrConfig {
    fn default() -> Self {
        RtrConfig { routers: 8, max_history: 16, policy: MergePolicy::Union, pump_budget: 300 }
    }
}

/// What the router population saw in one round. All integers, so the
/// serialized outcome replays byte-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RtrRoundMetrics {
    /// Round number (1-based).
    pub round: usize,
    /// The relay's downstream serial after this round's republish.
    pub relay_serial: u32,
    /// Routers whose serial equals the relay's.
    pub synced_routers: usize,
    /// Routers lagging the relay (behind by ≥1 serial, or never
    /// synced at all).
    pub stale_routers: usize,
    /// The largest serial lag among routers that have synced at least
    /// once (RFC 1982 distance).
    pub max_serial_lag: u32,
    /// Σ over routers of the symmetric difference between the router's
    /// VRP set and the perfect-transport truth at the round's moment.
    pub truth_distance_sum: usize,
    /// The single worst router's distance from truth.
    pub max_truth_distance: usize,
    /// Symmetric difference between the relay's merged (SLURM-applied)
    /// set and the truth — divergence the *relying-party* path
    /// contributed, before the router hop adds its own lag.
    pub relay_truth_distance: usize,
}

/// The result of running one campaign with the RTR fabric attached.
#[derive(Debug, Clone, Serialize)]
pub struct RtrCampaignOutcome {
    /// The campaign's name.
    pub name: String,
    /// The network seed used.
    pub seed: u64,
    /// Rounds per tier.
    pub rounds: usize,
    /// Routers behind the relay.
    pub routers: usize,
    /// One validation trace per tier, in [`RpTier::ALL`] order.
    pub tiers: Vec<TierOutcome>,
    /// Per-round router-population staleness and divergence.
    pub rtr: Vec<RtrRoundMetrics>,
}

impl RtrCampaignOutcome {
    /// The trace of `tier`.
    pub fn tier(&self, tier: RpTier) -> &TierOutcome {
        self.tiers.iter().find(|t| t.tier == tier).expect("all tiers present")
    }
}

/// The retry policy every non-bare tier uses.
pub fn campaign_policy() -> SyncPolicy {
    SyncPolicy::default()
}

/// The resilience knobs the stale-cache tiers use: snapshots may bridge
/// up to six hours (12 rounds); three dead sessions open the circuit
/// for one round.
pub fn campaign_resilience() -> ResilienceConfig {
    ResilienceConfig { max_stale: 6 * 3600, failure_threshold: 3, cooldown: ROUND_SECS }
}

/// Runs `spec` at `seed` across all five tiers. Each tier revalidates
/// incrementally against a persistent [`ValidationState`] (full-fetch
/// mode, so the network sees exactly the traffic a cold walk would);
/// [`run_campaign_cold`] is the reference without the cache, and the
/// two are byte-identical by construction.
pub fn run_campaign(spec: &CampaignSpec, seed: u64) -> CampaignOutcome {
    run_campaign_traced(spec, seed, &Recorder::disabled())
}

/// Runs `spec` at `seed` across all five tiers with cold full walks
/// every round — the oracle the incremental engine's output is tested
/// against.
pub fn run_campaign_cold(spec: &CampaignSpec, seed: u64) -> CampaignOutcome {
    let tiers = RpTier::ALL
        .iter()
        .map(|&tier| run_tier(spec, seed, tier, &Recorder::disabled(), false))
        .collect();
    CampaignOutcome { name: spec.name.clone(), seed, rounds: spec.rounds, tiers }
}

/// Runs `spec` at `seed` across all five tiers, reporting through
/// `recorder`: each tier's world gets the recorder installed (so the
/// whole netsim/repo/rp/suspenders event stream lands in one trace)
/// and every round emits a `campaign/round` event plus the campaign
/// counters that the hand-rolled [`TierTotals`] integers mirror.
pub fn run_campaign_traced(spec: &CampaignSpec, seed: u64, recorder: &Recorder) -> CampaignOutcome {
    let tiers =
        RpTier::ALL.iter().map(|&tier| run_tier(spec, seed, tier, recorder, true)).collect();
    CampaignOutcome { name: spec.name.clone(), seed, rounds: spec.rounds, tiers }
}

/// Runs `spec` at `seed` with all five tiers validating against **one**
/// shared repository world — the planet-scale deployment shape, where
/// thousands of relying parties hammer the same publication points —
/// instead of the per-tier clones [`run_campaign`] uses to isolate
/// fault dice. Each tier gets its own relying-party network node and
/// its own persistent caches; every walk runs under `plan`'s sharded
/// scheduler when given (output is byte-identical either way). The
/// outcome adds per-round cross-tier VRP divergence and the server-side
/// load ledger each host accumulated over the campaign rounds.
///
/// Note the shared world is *not* metric-identical to the per-tier
/// worlds: probabilistic faults draw from one shared dice stream, so a
/// corruption burst that eats tier A's frame spares tier B's. That
/// asymmetry is the point — it is what the divergence metrics measure.
pub fn run_campaign_shared(
    spec: &CampaignSpec,
    seed: u64,
    plan: Option<ShardPlan>,
    recorder: &Recorder,
) -> SharedCampaignOutcome {
    struct TierState {
        tier: RpTier,
        rp: NodeId,
        validation: ValidationState,
        resilient: ResilientState,
        suspenders: SuspendersState,
        rrdp: RrdpClientState,
        prev_downgrades: u64,
        rounds: Vec<RoundMetrics>,
    }

    let mut w = ModelRpki::build_seeded(seed);
    w.net.set_recorder(recorder.clone());
    let policy = campaign_policy();
    let mut tiers: Vec<TierState> = RpTier::ALL
        .iter()
        .map(|&tier| TierState {
            tier,
            rp: w.net.add_node(&format!("rp-{}", tier.label())),
            validation: ValidationState::full(),
            resilient: ResilientState::new(campaign_resilience()),
            suspenders: SuspendersState::new(SuspendersConfig { hold_down: Span::days(1) }),
            rrdp: RrdpClientState::new(),
            prev_downgrades: 0,
            rounds: Vec::with_capacity(spec.rounds),
        })
        .collect();
    let rp_nodes: Vec<NodeId> = tiers.iter().map(|t| t.rp).collect();
    let mut engaged: BTreeSet<usize> = BTreeSet::new();

    // Warm-up: one faultless validation per tier against the healthy
    // shared world.
    for t in &mut tiers {
        w.rp_node = t.rp;
        let moment = Moment(w.net.now());
        validate_tier(
            &mut w,
            t.tier,
            moment,
            policy,
            &mut t.resilient,
            &mut t.suspenders,
            &mut t.rrdp,
            Some(&mut t.validation),
            plan,
            spec.unsafe_vrps,
        );
        t.prev_downgrades = t.rrdp.stats().downgrades;
    }
    // The load ledger measures the campaign proper, not the warm-up.
    for repo in w.repos.iter() {
        repo.reset_served_load();
    }

    // One engine for the one shared world: every tier syncs the same
    // churned serials.
    let mut churn = spec.churn.map(|cfg| ChurnEngine::new(seed, cfg));

    let mut divergence = Vec::with_capacity(spec.rounds);
    for round in 1..=spec.rounds {
        w.net.advance_to(round as u64 * ROUND_SECS);
        if let Some(engine) = churn.as_mut() {
            w.run_churn(engine, Moment(w.net.now()));
        }
        apply_faults_to(&mut w, spec, round, &mut engaged, &rp_nodes);

        let mut vrp_sets: Vec<BTreeSet<Vrp>> = Vec::with_capacity(tiers.len());
        for t in &mut tiers {
            w.rp_node = t.rp;
            let moment = Moment(w.net.now());
            let run = validate_tier(
                &mut w,
                t.tier,
                moment,
                policy,
                &mut t.resilient,
                &mut t.suspenders,
                &mut t.rrdp,
                Some(&mut t.validation),
                plan,
                spec.unsafe_vrps,
            );
            let m = round_metrics(
                &w,
                t.tier,
                round,
                &run,
                &t.suspenders,
                &t.rrdp,
                &mut t.prev_downgrades,
            );
            emit_round(recorder, spec, t.tier, moment.0, &m);
            t.rounds.push(m);
            vrp_sets.push(run.vrps.iter().copied().collect());
        }

        let mut d = DivergenceMetrics { round, ..DivergenceMetrics::default() };
        for (i, a) in vrp_sets.iter().enumerate() {
            if !vrp_sets[..i].contains(a) {
                d.distinct_vrp_sets += 1;
            }
            for b in &vrp_sets[..i] {
                let diff = a.symmetric_difference(b).count();
                d.pairwise_diff_sum += diff;
                d.max_pairwise_diff = d.max_pairwise_diff.max(diff);
            }
        }
        if recorder.is_enabled() {
            recorder.observe("campaign.distinct_vrp_sets", d.distinct_vrp_sets as u64);
            recorder
                .event(w.net.now(), "campaign", "divergence")
                .str("campaign", &spec.name)
                .u64("round", round as u64)
                .u64("distinct_vrp_sets", d.distinct_vrp_sets as u64)
                .u64("pairwise_diff_sum", d.pairwise_diff_sum as u64)
                .u64("max_pairwise_diff", d.max_pairwise_diff as u64)
                .emit();
        }
        divergence.push(d);
    }

    let mut load: Vec<HostLoad> = w
        .repos
        .iter()
        .map(|repo| {
            let total = repo.served_total();
            HostLoad {
                host: repo.host().to_owned(),
                dirs: repo.served_load().len(),
                frames: total.frames,
                bytes: total.bytes,
            }
        })
        .collect();
    load.sort_by(|a, b| a.host.cmp(&b.host));
    if recorder.is_enabled() {
        for h in &load {
            recorder
                .event(w.net.now(), "campaign", "host_load")
                .str("campaign", &spec.name)
                .str("host", &h.host)
                .u64("dirs", h.dirs as u64)
                .u64("frames", h.frames)
                .u64("bytes", h.bytes)
                .emit();
        }
    }

    let tiers = tiers
        .into_iter()
        .map(|t| TierOutcome { tier: t.tier, totals: tier_totals(&t.rounds), rounds: t.rounds })
        .collect();
    SharedCampaignOutcome {
        name: spec.name.clone(),
        seed,
        rounds: spec.rounds,
        tiers,
        divergence,
        load,
    }
}

/// Runs `spec` at `seed` with the five tiers validating a **shared**
/// world *and* feeding an RTR fabric: each tier publishes its validated
/// VRPs into its own framed RTR cache, an rtrtr-style relay merges the
/// five feeds under `rtr.policy` (SLURM exceptions via `slurm`), and
/// `rtr.routers` routers sync from the relay over netsim — so the
/// repository fault kinds *and* the RTR fault kinds
/// ([`FaultKind::RtrPartition`], [`FaultKind::RtrStall`]) land on one
/// deterministic timeline.
///
/// Each round: faults are armed, every tier validates (the RTR queue is
/// empty while repository syncs drive the network), every tier fabric
/// publishes its snapshot, the relay polls its feeds and republishes
/// the merge, every router polls, and two bounded pump windows
/// (`rtr.pump_budget` each) carry the frames. Frames still in flight
/// after the second window are flushed — the session-timeout model —
/// so a stalled RTR path yields visibly stale routers instead of a
/// silently extended round.
pub fn run_campaign_rtr(
    spec: &CampaignSpec,
    seed: u64,
    rtr: RtrConfig,
    slurm: &SlurmFile,
    recorder: &Recorder,
) -> RtrCampaignOutcome {
    struct TierState {
        tier: RpTier,
        rp: NodeId,
        validation: ValidationState,
        resilient: ResilientState,
        suspenders: SuspendersState,
        rrdp: RrdpClientState,
        prev_downgrades: u64,
        rounds: Vec<RoundMetrics>,
    }

    let mut w = ModelRpki::build_seeded(seed);
    w.net.set_recorder(recorder.clone());
    let policy = campaign_policy();
    let mut tiers: Vec<TierState> = RpTier::ALL
        .iter()
        .map(|&tier| TierState {
            tier,
            rp: w.net.add_node(&format!("rp-{}", tier.label())),
            validation: ValidationState::full(),
            resilient: ResilientState::new(campaign_resilience()),
            suspenders: SuspendersState::new(SuspendersConfig { hold_down: Span::days(1) }),
            rrdp: RrdpClientState::new(),
            prev_downgrades: 0,
            rounds: Vec::with_capacity(spec.rounds),
        })
        .collect();
    let rp_nodes: Vec<NodeId> = tiers.iter().map(|t| t.rp).collect();

    // The RTR side: one framed cache per tier, a relay merging all
    // five, and the router population behind the relay.
    let relay_node = w.net.add_node("rtr-relay");
    let mut fabrics: Vec<RtrFabric> = tiers
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut f = RtrFabric::new(t.rp, (i + 1) as u16, rtr.max_history);
            f.attach(relay_node);
            f
        })
        .collect();
    let mut relay = Relay::new(relay_node, rtr.policy, slurm.clone(), 100, rtr.max_history);
    for t in &tiers {
        relay.add_feed(t.rp);
    }
    let router_nodes: Vec<NodeId> =
        (0..rtr.routers).map(|i| w.net.add_node(&format!("router-{i}"))).collect();
    let mut routers: Vec<RtrRouter> = router_nodes
        .iter()
        .map(|&node| {
            relay.attach(node);
            RtrRouter::new(node, relay_node)
        })
        .collect();
    let mut engaged: BTreeSet<usize> = BTreeSet::new();

    // One full faultless cycle: validate, publish, merge, sync — so
    // round 1 starts from converged routers.
    let mut warm_feeds: Vec<Vec<Vrp>> = Vec::with_capacity(tiers.len());
    for t in &mut tiers {
        w.rp_node = t.rp;
        let moment = Moment(w.net.now());
        let run = validate_tier(
            &mut w,
            t.tier,
            moment,
            policy,
            &mut t.resilient,
            &mut t.suspenders,
            &mut t.rrdp,
            Some(&mut t.validation),
            None,
            spec.unsafe_vrps,
        );
        t.prev_downgrades = t.rrdp.stats().downgrades;
        warm_feeds.push(tier_feed(t.tier, &run, &t.suspenders));
    }
    for (f, feed) in fabrics.iter_mut().zip(&warm_feeds) {
        f.publish(&mut w.net, VrpUpdate::snapshot(feed.iter().copied()));
    }
    relay.poll_feeds(&mut w.net);
    pump_rtr(&mut w.net, rtr.pump_budget, &mut fabrics, &mut relay, &mut routers);
    relay.republish(&mut w.net);
    for r in &mut routers {
        r.poll(&mut w.net);
    }
    pump_rtr(&mut w.net, rtr.pump_budget, &mut fabrics, &mut relay, &mut routers);
    flush_rtr(&mut w.net, &rp_nodes, relay_node, &router_nodes);

    let mut churn = spec.churn.map(|cfg| ChurnEngine::new(seed, cfg));

    let mut rtr_rounds: Vec<RtrRoundMetrics> = Vec::with_capacity(spec.rounds);
    for round in 1..=spec.rounds {
        w.net.advance_to(round as u64 * ROUND_SECS);
        if let Some(engine) = churn.as_mut() {
            w.run_churn(engine, Moment(w.net.now()));
        }
        apply_faults_to(&mut w, spec, round, &mut engaged, &rp_nodes);
        apply_rtr_faults(&mut w.net, spec, round, relay_node, &router_nodes);

        // Validate every tier first (the RTR queue is empty, so the
        // repository sync drivers own the network), then publish.
        let mut feeds: Vec<Vec<Vrp>> = Vec::with_capacity(tiers.len());
        for t in &mut tiers {
            w.rp_node = t.rp;
            let moment = Moment(w.net.now());
            let run = validate_tier(
                &mut w,
                t.tier,
                moment,
                policy,
                &mut t.resilient,
                &mut t.suspenders,
                &mut t.rrdp,
                Some(&mut t.validation),
                None,
                spec.unsafe_vrps,
            );
            let m = round_metrics(
                &w,
                t.tier,
                round,
                &run,
                &t.suspenders,
                &t.rrdp,
                &mut t.prev_downgrades,
            );
            emit_round(recorder, spec, t.tier, moment.0, &m);
            t.rounds.push(m);
            feeds.push(tier_feed(t.tier, &run, &t.suspenders));
        }
        for (f, feed) in fabrics.iter_mut().zip(&feeds) {
            f.publish(&mut w.net, VrpUpdate::snapshot(feed.iter().copied()));
        }
        relay.poll_feeds(&mut w.net);
        pump_rtr(&mut w.net, rtr.pump_budget, &mut fabrics, &mut relay, &mut routers);
        relay.republish(&mut w.net);
        for r in &mut routers {
            r.poll(&mut w.net);
        }
        pump_rtr(&mut w.net, rtr.pump_budget, &mut fabrics, &mut relay, &mut routers);
        // Session timeout: anything still in flight is dead air.
        flush_rtr(&mut w.net, &rp_nodes, relay_node, &router_nodes);

        // Truth: a perfect-transport walk of the repositories as they
        // stand now. Router divergence from it is the paper's bottom
        // line — what BGP actually acts on versus what the authorities
        // published.
        let truth: BTreeSet<Vrp> =
            w.validate_direct(Moment(w.net.now())).vrps.into_iter().collect();
        let relay_serial = relay.target().server().serial();
        let relay_session = relay.target().server().session();
        let mut m = RtrRoundMetrics { round, relay_serial, ..RtrRoundMetrics::default() };
        for r in &routers {
            // Ground truth from the router's own state machine — the
            // fabric's session table is optimistic under frame loss
            // (it records what was *served*, not what arrived).
            let client = r.client();
            if client.session() == Some(relay_session) {
                let lag = rpki_rp::serial_distance(client.serial(), relay_serial);
                if lag == 0 {
                    m.synced_routers += 1;
                } else {
                    m.stale_routers += 1;
                    m.max_serial_lag = m.max_serial_lag.max(lag);
                }
            } else {
                m.stale_routers += 1;
            }
            let dist = r.vrps().symmetric_difference(&truth).count();
            m.truth_distance_sum += dist;
            m.max_truth_distance = m.max_truth_distance.max(dist);
        }
        m.relay_truth_distance = relay.merged().symmetric_difference(&truth).count();
        if recorder.is_enabled() {
            recorder.count("rtr.stale_router_rounds", m.stale_routers as u64);
            recorder.observe("rtr.truth_distance", m.truth_distance_sum as u64);
            recorder
                .event(w.net.now(), "rtr", "round")
                .str("campaign", &spec.name)
                .u64("round", round as u64)
                .u64("relay_serial", u64::from(m.relay_serial))
                .u64("synced_routers", m.synced_routers as u64)
                .u64("stale_routers", m.stale_routers as u64)
                .u64("max_serial_lag", u64::from(m.max_serial_lag))
                .u64("truth_distance_sum", m.truth_distance_sum as u64)
                .u64("max_truth_distance", m.max_truth_distance as u64)
                .u64("relay_truth_distance", m.relay_truth_distance as u64)
                .emit();
        }
        rtr_rounds.push(m);
    }

    let tiers = tiers
        .into_iter()
        .map(|t| TierOutcome { tier: t.tier, totals: tier_totals(&t.rounds), rounds: t.rounds })
        .collect();
    RtrCampaignOutcome {
        name: spec.name.clone(),
        seed,
        rounds: spec.rounds,
        routers: rtr.routers,
        tiers,
        rtr: rtr_rounds,
    }
}

/// What a tier feeds its RTR cache: the Suspenders tier serves its
/// hold-down-protected effective set, every other tier serves the
/// validation run's VRPs — the same sets [`round_metrics`] classifies
/// against.
fn tier_feed(tier: RpTier, run: &ValidationRun, suspenders: &SuspendersState) -> Vec<Vrp> {
    if tier == RpTier::Suspenders {
        suspenders.effective_cache().vrps().to_vec()
    } else {
        run.vrps.clone()
    }
}

/// One bounded RTR pump window over all fabric endpoints.
fn pump_rtr(
    net: &mut netsim::Network,
    budget: u64,
    fabrics: &mut [RtrFabric],
    relay: &mut Relay,
    routers: &mut [RtrRouter],
) {
    let deadline = net.now() + budget;
    let mut endpoints: Vec<&mut dyn RtrEndpoint> =
        Vec::with_capacity(fabrics.len() + routers.len() + 1);
    for f in fabrics.iter_mut() {
        endpoints.push(f);
    }
    endpoints.push(relay);
    for r in routers.iter_mut() {
        endpoints.push(r);
    }
    pump_until(net, deadline, &mut endpoints);
}

/// Discards every RTR frame still in flight (tier→relay and
/// relay→router, both directions): the session-timeout model that
/// turns a stalled path into visible staleness.
fn flush_rtr(
    net: &mut netsim::Network,
    fabric_nodes: &[NodeId],
    relay_node: NodeId,
    router_nodes: &[NodeId],
) {
    for &f in fabric_nodes {
        net.flush_pair(f, relay_node);
    }
    for &r in router_nodes {
        net.flush_pair(relay_node, r);
    }
}

/// Clears, then re-arms, this round's RTR-path faults (relay ↔ every
/// router). Mirrors [`apply_faults_to`]'s clear-then-arm shape so
/// expired windows heal.
fn apply_rtr_faults(
    net: &mut netsim::Network,
    spec: &CampaignSpec,
    round: usize,
    relay_node: NodeId,
    router_nodes: &[NodeId],
) {
    for win in &spec.windows {
        for &r in router_nodes {
            match win.kind {
                FaultKind::RtrPartition => net.faults.heal(relay_node, r),
                FaultKind::RtrStall { .. } => net.faults.set_stall(relay_node, r, 0),
                _ => {}
            }
        }
    }
    for win in &spec.windows {
        if !win.active(round) {
            continue;
        }
        for &r in router_nodes {
            match win.kind {
                FaultKind::RtrPartition => net.faults.partition(relay_node, r),
                FaultKind::RtrStall { extra } => net.faults.set_stall(relay_node, r, extra),
                _ => {}
            }
        }
    }
}

/// The standard RTR campaign: the feed path stalls Stalloris-style
/// while the authority whacks the covering ROA behind it — relying
/// parties see the whack on time, routers act on the pre-whack VRPs
/// until the stall lifts.
pub fn rtr_campaign() -> CampaignSpec {
    CampaignSpec {
        name: "rtr-stale-routers".to_owned(),
        unsafe_vrps: UnsafeVrpPolicy::Accept,
        churn: None,
        rounds: 10,
        windows: vec![
            FaultWindow {
                host: "rtr".to_owned(),
                kind: FaultKind::RtrStall { extra: 3600 },
                from: 3,
                to: 5,
            },
            FaultWindow {
                host: "rpki.continental.example".to_owned(),
                kind: FaultKind::Withdraw,
                from: 4,
                to: 6,
            },
        ],
    }
}

fn run_tier(
    spec: &CampaignSpec,
    seed: u64,
    tier: RpTier,
    recorder: &Recorder,
    incremental: bool,
) -> TierOutcome {
    let mut w = ModelRpki::build_seeded(seed);
    w.net.set_recorder(recorder.clone());
    let policy = campaign_policy();
    // Full-fetch incremental revalidation: the memo cache persists
    // across the tier's rounds, so unchanged publication points replay
    // instead of re-verifying, without changing a byte of output.
    let mut validation_state = incremental.then(ValidationState::full);
    let mut resilient = ResilientState::new(campaign_resilience());
    // Hold-down of one day: longer than any campaign, so a held VRP
    // stays held until it recovers or the campaign ends.
    let mut suspenders = SuspendersState::new(SuspendersConfig { hold_down: Span::days(1) });
    // The RRDP tier's persistent per-directory session state: this is
    // what makes round N+1 a delta (or fast-path) sync of round N.
    let mut rrdp_state = RrdpClientState::new();
    // Indices of stateful windows (`Withdraw`, `RrdpPin`) currently
    // engaged, so activation/deactivation happens exactly once.
    let mut engaged: BTreeSet<usize> = BTreeSet::new();

    // Warm-up: one faultless validation so snapshots and the
    // suspenders baseline reflect the healthy world.
    let moment = Moment(w.net.now());
    validate_tier(
        &mut w,
        tier,
        moment,
        policy,
        &mut resilient,
        &mut suspenders,
        &mut rrdp_state,
        validation_state.as_mut(),
        None,
        spec.unsafe_vrps,
    );
    let mut prev_downgrades = rrdp_state.stats().downgrades;

    // Background churn: one engine per tier, all seeded alike, so the
    // five per-tier worlds advance through byte-identical schedules.
    let mut churn = spec.churn.map(|cfg| ChurnEngine::new(seed, cfg));

    let mut rounds = Vec::with_capacity(spec.rounds);
    for round in 1..=spec.rounds {
        // Stalled sessions may overrun the boundary; `advance_to` is
        // monotone, so pacing simply resumes once they drain.
        w.net.advance_to(round as u64 * ROUND_SECS);
        if let Some(engine) = churn.as_mut() {
            w.run_churn(engine, Moment(w.net.now()));
        }
        apply_faults(&mut w, spec, round, &mut engaged);

        let moment = Moment(w.net.now());
        let run = validate_tier(
            &mut w,
            tier,
            moment,
            policy,
            &mut resilient,
            &mut suspenders,
            &mut rrdp_state,
            validation_state.as_mut(),
            None,
            spec.unsafe_vrps,
        );

        let m =
            round_metrics(&w, tier, round, &run, &suspenders, &rrdp_state, &mut prev_downgrades);
        emit_round(recorder, spec, tier, moment.0, &m);
        rounds.push(m);
    }

    let totals = tier_totals(&rounds);
    if recorder.is_enabled() {
        recorder
            .event(w.net.now(), "campaign", "tier_totals")
            .str("campaign", &spec.name)
            .str("tier", tier.label())
            .u64("vrp_round_sum", totals.vrp_round_sum as u64)
            .u64("min_vrps", totals.min_vrps as u64)
            .u64("valid_round_sum", totals.valid_round_sum as u64)
            .u64("invalid_flips", totals.invalid_flips as u64)
            .u64("unknown_flips", totals.unknown_flips as u64)
            .u64("stale_dir_rounds", totals.stale_dir_rounds as u64)
            .u64("rrdp_downgrades", totals.rrdp_downgrades as u64)
            .u64("unsafe_vrp_rounds", totals.unsafe_vrp_rounds as u64)
            .u64("rejected_ca_rounds", totals.rejected_ca_rounds as u64)
            .emit();
    }
    TierOutcome { tier, rounds, totals }
}

/// Classifies the announcements against one tier's effective cache and
/// assembles its round metrics.
fn round_metrics(
    w: &ModelRpki,
    tier: RpTier,
    round: usize,
    run: &ValidationRun,
    suspenders: &SuspendersState,
    rrdp_state: &RrdpClientState,
    prev_downgrades: &mut u64,
) -> RoundMetrics {
    let (vrps, cache): (usize, VrpCache) = if tier == RpTier::Suspenders {
        (suspenders.len(), suspenders.effective_cache())
    } else {
        (run.vrps.len(), run.vrp_cache())
    };
    let mut m = RoundMetrics { round, vrps, ..RoundMetrics::default() };
    for ann in &w.announcements {
        match cache.classify(Route::new(ann.prefix, ann.origin)) {
            RouteValidity::Valid => m.valid += 1,
            RouteValidity::Invalid => m.invalid += 1,
            RouteValidity::Unknown => m.unknown += 1,
        }
    }
    m.stale_dirs =
        run.freshness.iter().filter(|(_, f)| matches!(f, Freshness::Stale { .. })).count();
    m.rrdp_downgrades = (rrdp_state.stats().downgrades - *prev_downgrades) as usize;
    *prev_downgrades = rrdp_state.stats().downgrades;
    m.unsafe_vrps = run.unsafe_vrps.len();
    m.rejected_cas = run.rejected_cas.len();
    m
}

fn emit_round(recorder: &Recorder, spec: &CampaignSpec, tier: RpTier, at: u64, m: &RoundMetrics) {
    if !recorder.is_enabled() {
        return;
    }
    recorder.count("campaign.rounds", 1);
    recorder.count("campaign.invalid_flips", m.invalid as u64);
    recorder.count("campaign.unknown_flips", m.unknown as u64);
    recorder.count("campaign.stale_dir_rounds", m.stale_dirs as u64);
    recorder.count("campaign.rrdp_downgrades", m.rrdp_downgrades as u64);
    recorder.observe("campaign.vrps_per_round", m.vrps as u64);
    recorder
        .event(at, "campaign", "round")
        .str("campaign", &spec.name)
        .str("tier", tier.label())
        .u64("round", m.round as u64)
        .u64("vrps", m.vrps as u64)
        .u64("valid", m.valid as u64)
        .u64("invalid", m.invalid as u64)
        .u64("unknown", m.unknown as u64)
        .u64("stale_dirs", m.stale_dirs as u64)
        .u64("rrdp_downgrades", m.rrdp_downgrades as u64)
        .u64("unsafe_vrps", m.unsafe_vrps as u64)
        .u64("rejected_cas", m.rejected_cas as u64)
        .emit();
}

fn tier_totals(rounds: &[RoundMetrics]) -> TierTotals {
    TierTotals {
        vrp_round_sum: rounds.iter().map(|m| m.vrps).sum(),
        min_vrps: rounds.iter().map(|m| m.vrps).min().unwrap_or(0),
        valid_round_sum: rounds.iter().map(|m| m.valid).sum(),
        invalid_flips: rounds.iter().map(|m| m.invalid).sum(),
        unknown_flips: rounds.iter().map(|m| m.unknown).sum(),
        stale_dir_rounds: rounds.iter().map(|m| m.stale_dirs).sum(),
        rrdp_downgrades: rounds.iter().map(|m| m.rrdp_downgrades).sum(),
        unsafe_vrp_rounds: rounds.iter().map(|m| m.unsafe_vrps).sum(),
        rejected_ca_rounds: rounds.iter().map(|m| m.rejected_cas).sum(),
    }
}

#[allow(clippy::too_many_arguments)]
fn validate_tier(
    w: &mut ModelRpki,
    tier: RpTier,
    moment: Moment,
    policy: SyncPolicy,
    resilient: &mut ResilientState,
    suspenders: &mut SuspendersState,
    rrdp: &mut RrdpClientState,
    incremental: Option<&mut ValidationState>,
    shards: Option<ShardPlan>,
    unsafe_vrps: UnsafeVrpPolicy,
) -> ValidationRun {
    let base = move |m| ValidationOptions::at(m).unsafe_vrps(unsafe_vrps);
    let opts = match tier {
        RpTier::Bare => base(moment),
        RpTier::Retrying => base(moment).retry(policy),
        RpTier::RetryingStale => base(moment).retry(policy).stale_cache(resilient),
        RpTier::Suspenders => {
            base(moment).retry(policy).stale_cache(resilient).suspenders(suspenders)
        }
        RpTier::Rrdp => base(moment).retry(policy).rrdp(rrdp).stale_cache(resilient),
    };
    let opts = match incremental {
        Some(state) => opts.incremental(state),
        None => opts,
    };
    let opts = match shards {
        Some(plan) => opts.sharded(plan),
        None => opts,
    };
    w.validate_with(opts)
}

/// Clears last round's transport faults, then arms this round's.
/// Stateful windows (`Withdraw`, `RrdpPin`) engage exactly once at the
/// window's first round via `engaged` — re-arming a pin every round
/// would re-capture the current state and defeat the point.
fn apply_faults(
    w: &mut ModelRpki,
    spec: &CampaignSpec,
    round: usize,
    engaged: &mut BTreeSet<usize>,
) {
    let rp = w.rp_node;
    apply_faults_to(w, spec, round, engaged, &[rp]);
}

/// [`apply_faults`] generalised to any set of relying-party nodes: the
/// pairwise transport faults (corruption, partition, stall) are armed
/// between the repository and *every* listed RP, as a shared world
/// requires; node- and authority-side faults are applied once.
fn apply_faults_to(
    w: &mut ModelRpki,
    spec: &CampaignSpec,
    round: usize,
    engaged: &mut BTreeSet<usize>,
    rps: &[NodeId],
) {
    // Clear every window's effect first so expired and flapping
    // windows heal; active ones are re-armed below.
    for win in &spec.windows {
        if win.kind.is_rtr() {
            continue; // handled by the RTR runner; `host` is a label
        }
        let node = w.repos.by_host(&win.host).expect("campaign host exists").node();
        for &rp in rps {
            match win.kind {
                FaultKind::CorruptionBurst { .. } => w.net.faults.set_corruption(node, rp, 0.0),
                FaultKind::Partition | FaultKind::Flapping => w.net.faults.heal(rp, node),
                FaultKind::Stall { .. } => w.net.faults.set_stall(node, rp, 0),
                _ => {}
            }
        }
        match win.kind {
            FaultKind::Takedown => w.net.faults.set_down(node, false),
            FaultKind::RrdpWithhold => {
                w.repos
                    .by_host_mut(&win.host)
                    .expect("campaign host exists")
                    .set_rrdp_offline(false);
            }
            FaultKind::SlowServe { .. } => {
                w.repos.by_host_mut(&win.host).expect("campaign host exists").set_serve_delay(0);
            }
            _ => {}
        }
    }

    for (i, win) in spec.windows.iter().enumerate() {
        if win.kind.is_rtr() {
            continue;
        }
        let node = w.repos.by_host(&win.host).expect("campaign host exists").node();
        let active = win.active(round);
        for &rp in rps {
            match win.kind {
                FaultKind::CorruptionBurst { prob } if active => {
                    w.net.faults.set_corruption(node, rp, prob);
                }
                FaultKind::Partition if active => w.net.faults.partition(rp, node),
                // Flapping: partitioned on the window's even offsets, so
                // it always starts severed and heals every other round.
                FaultKind::Flapping if active && (round - win.from).is_multiple_of(2) => {
                    w.net.faults.partition(rp, node);
                }
                FaultKind::Stall { extra } if active => w.net.faults.set_stall(node, rp, extra),
                _ => {}
            }
        }
        match win.kind {
            FaultKind::Takedown if active => w.net.faults.set_down(node, true),
            FaultKind::SlowServe { extra } if active => {
                w.repos
                    .by_host_mut(&win.host)
                    .expect("campaign host exists")
                    .set_serve_delay(extra);
            }
            FaultKind::RrdpWithhold if active => {
                w.repos
                    .by_host_mut(&win.host)
                    .expect("campaign host exists")
                    .set_rrdp_offline(true);
            }
            FaultKind::RrdpPin => {
                let repo = w.repos.by_host_mut(&win.host).expect("campaign host exists");
                if active && !engaged.contains(&i) {
                    repo.rrdp_pin();
                    engaged.insert(i);
                } else if !active && engaged.remove(&i) {
                    repo.rrdp_unpin();
                }
            }
            FaultKind::Withdraw => {
                let now = Moment(w.net.now());
                if active && !engaged.contains(&i) {
                    let file = w.covering_roa_file();
                    w.continental.withdraw(&file).expect("covering ROA present");
                    w.publish_all(now);
                    engaged.insert(i);
                } else if !active && engaged.remove(&i) {
                    let covering: Prefix = "63.174.16.0/20".parse().expect("literal");
                    w.continental
                        .issue_roa(asn::CONTINENTAL, vec![RoaPrefix::exact(covering)], now)
                        .expect("own space");
                    w.publish_all(now);
                }
            }
            FaultKind::AdversarialPublish { kind } => {
                let now = Moment(w.net.now());
                if active && !engaged.contains(&i) {
                    // Seeded by the window index so concurrent windows
                    // of one campaign draw distinct corpus streams;
                    // engage-once, like Withdraw, so re-running a round
                    // never re-mutates the repository.
                    w.poison_host(&win.host, kind, i as u64, now).expect("campaign host exists");
                    engaged.insert(i);
                } else if !active && engaged.remove(&i) {
                    // A fresh honest snapshot overwrites the poison and
                    // deletes stray corpus files.
                    w.publish_all(now);
                }
            }
            _ => {}
        }
    }
}

/// One round of a schedule-gaming run: what the scheduler did and how
/// stale the starved points got. All integers, so serialized outcomes
/// replay byte-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ScheduleRoundMetrics {
    /// Round number (1-based; the warm-up round is not recorded).
    pub round: usize,
    /// VRPs the scheduled RP validated this round.
    pub vrps: usize,
    /// Full fetches the scheduler delegated to the wire.
    pub fetched: u64,
    /// Points answered from schedule state at zero frames.
    pub not_due: u64,
    /// Due points deferred because the run budget was spent — the
    /// starvation the slow server manufactures.
    pub deferred: u64,
    /// Points skipped because their host was in scheduler backoff.
    pub backoff_skips: u64,
    /// Frames the run spent on delegated fetches.
    pub frames_used: u64,
    /// Simulated seconds the run spent inside delegated fetches (the
    /// budget the attacker burns).
    pub time_used: u64,
    /// Oldest `now - last_success` over points served stale this round.
    pub max_served_age: u64,
}

/// The result of one schedule-gaming campaign: a budgeted, scheduled,
/// RRDP-fetching relying party against a slow-serving authority.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ScheduleGamingOutcome {
    /// The campaign's name.
    pub name: String,
    /// The network seed used.
    pub seed: u64,
    /// Per-round metrics, in round order.
    pub rounds: Vec<ScheduleRoundMetrics>,
    /// Rounds in which at least one due point was budget-deferred.
    pub starved_rounds: usize,
    /// The worst single round's VRP count (the schedule snapshot
    /// should keep this at the healthy baseline — starvation costs
    /// freshness, not availability).
    pub min_vrps: usize,
    /// The largest `max_served_age` any round reached.
    pub worst_served_age: u64,
}

/// The schedule plan the gaming campaign's relying party runs under:
/// cadence clamps that keep every model point due each 30-minute
/// round, light jitter, and the scarce per-run time budget the
/// slow-serving authority games. One publication point served at the
/// [`StarvePlan::stalloris`] delay burns the whole budget.
pub fn gaming_schedule_plan() -> SchedulePlan {
    SchedulePlan {
        min_refresh: 600,
        // Below the round cadence, so a point fetched early in one
        // round is always due again by the next and the schedule stays
        // round-aligned instead of drifting onto every-other-round
        // beats.
        max_refresh: 1_200,
        jitter: 60,
        time_budget: Some(600),
        ..SchedulePlan::default()
    }
}

/// The schedule-gaming campaign: Sprint — second in the fixed
/// arin → sprint → etb → continental walk order — serves slowly for a
/// mid-campaign window ([`StarvePlan::stalloris`]), so the budgeted
/// scheduler reaches ETB and CONTINENTAL with nothing left to spend.
pub fn schedule_gaming_campaign() -> CampaignSpec {
    let plan = StarvePlan::stalloris("rpki.sprint.example");
    CampaignSpec {
        name: "schedule-gaming".to_owned(),
        unsafe_vrps: UnsafeVrpPolicy::Accept,
        churn: None,
        rounds: 12,
        windows: vec![FaultWindow {
            host: plan.host.clone(),
            kind: FaultKind::SlowServe { extra: plan.serve_delay },
            from: plan.from,
            to: plan.to,
        }],
    }
}

/// Runs `spec` at `seed` with a single scheduled relying party
/// (RRDP + retries under `plan`). Every round republishes the whole
/// world, so each publication point's content moves at the round
/// cadence and the scheduler must keep fetching — the run budget, not
/// quiescence, is what rations the wire. Per-round scheduler counters
/// come from [`SchedulerState::last_run`]; a `campaign/schedule_round`
/// event lands in `recorder` per round.
pub fn run_schedule_gaming(
    spec: &CampaignSpec,
    seed: u64,
    plan: SchedulePlan,
    recorder: &Recorder,
) -> ScheduleGamingOutcome {
    let mut w = ModelRpki::build_seeded(seed);
    w.net.set_recorder(recorder.clone());
    let policy = campaign_policy();
    let mut rrdp = RrdpClientState::new();
    let mut sched = SchedulerState::new();
    let mut engaged: BTreeSet<usize> = BTreeSet::new();
    let rp_nodes = [w.rp_node];

    // Warm-up: one faultless scheduled run, so every point has a
    // schedule entry and a snapshot before budgets start to bite
    // (first contacts are exempt from the budget by design).
    let moment = Moment(w.net.now());
    w.validate_with(
        ValidationOptions::at(moment).retry(policy).rrdp(&mut rrdp).scheduled(plan, &mut sched),
    );

    let mut rounds = Vec::with_capacity(spec.rounds);
    let mut starved_rounds = 0;
    let mut min_vrps = usize::MAX;
    let mut worst_served_age = 0;
    for round in 1..=spec.rounds {
        w.net.advance_to(round as u64 * ROUND_SECS);
        apply_faults_to(&mut w, spec, round, &mut engaged, &rp_nodes);
        w.publish_all(Moment(w.net.now()));
        let moment = Moment(w.net.now());
        let run = w.validate_with(
            ValidationOptions::at(moment).retry(policy).rrdp(&mut rrdp).scheduled(plan, &mut sched),
        );
        let rs = sched.last_run();
        if rs.deferred > 0 {
            starved_rounds += 1;
        }
        min_vrps = min_vrps.min(run.vrps.len());
        worst_served_age = worst_served_age.max(rs.max_served_age);
        if recorder.is_enabled() {
            recorder
                .event(w.net.now(), "campaign", "schedule_round")
                .u64("round", round as u64)
                .u64("fetched", rs.fetched)
                .u64("deferred", rs.deferred)
                .u64("time_used", rs.time_used)
                .u64("max_served_age", rs.max_served_age)
                .emit();
        }
        rounds.push(ScheduleRoundMetrics {
            round,
            vrps: run.vrps.len(),
            fetched: rs.fetched,
            not_due: rs.not_due,
            deferred: rs.deferred,
            backoff_skips: rs.backoff_skips,
            frames_used: rs.frames_used,
            time_used: rs.time_used,
            max_served_age: rs.max_served_age,
        });
    }
    ScheduleGamingOutcome {
        name: spec.name.clone(),
        seed,
        rounds,
        starved_rounds,
        min_vrps,
        worst_served_age,
    }
}

/// The standard campaign suite the `ablation_resilience` binary runs.
/// All target Continental — the paper's Section 6 repository — so the
/// five Continental VRPs are the ones at stake each time.
pub fn standard_campaigns() -> Vec<CampaignSpec> {
    let c = || "rpki.continental.example".to_owned();
    vec![
        CampaignSpec {
            name: "corruption-burst".to_owned(),
            unsafe_vrps: UnsafeVrpPolicy::Accept,
            churn: None,
            rounds: 12,
            windows: vec![FaultWindow {
                host: c(),
                kind: FaultKind::CorruptionBurst { prob: 0.4 },
                from: 3,
                to: 8,
            }],
        },
        CampaignSpec {
            name: "flapping-partition".to_owned(),
            unsafe_vrps: UnsafeVrpPolicy::Accept,
            churn: None,
            rounds: 12,
            windows: vec![FaultWindow { host: c(), kind: FaultKind::Flapping, from: 3, to: 10 }],
        },
        CampaignSpec {
            name: "takedown".to_owned(),
            unsafe_vrps: UnsafeVrpPolicy::Accept,
            churn: None,
            rounds: 12,
            windows: vec![FaultWindow { host: c(), kind: FaultKind::Takedown, from: 3, to: 8 }],
        },
        CampaignSpec {
            name: "slow-serve".to_owned(),
            unsafe_vrps: UnsafeVrpPolicy::Accept,
            churn: None,
            rounds: 10,
            windows: vec![FaultWindow {
                host: c(),
                kind: FaultKind::Stall { extra: 3600 },
                from: 3,
                to: 6,
            }],
        },
        CampaignSpec {
            // The Stalloris scenario: the RRDP feed freezes, then the
            // authority whacks the covering ROA behind the frozen view.
            // A trusting RRDP client never sees the whack; the verified
            // rrdp tier detects the pin each round and downgrades to
            // rsync for the truth.
            name: "stalloris-downgrade".to_owned(),
            unsafe_vrps: UnsafeVrpPolicy::Accept,
            churn: None,
            rounds: 12,
            windows: vec![
                FaultWindow { host: c(), kind: FaultKind::RrdpPin, from: 3, to: 8 },
                FaultWindow { host: c(), kind: FaultKind::Withdraw, from: 4, to: 6 },
            ],
        },
        CampaignSpec {
            name: "mixed".to_owned(),
            unsafe_vrps: UnsafeVrpPolicy::Accept,
            churn: None,
            rounds: 24,
            windows: vec![
                FaultWindow {
                    host: c(),
                    kind: FaultKind::CorruptionBurst { prob: 0.35 },
                    from: 3,
                    to: 7,
                },
                FaultWindow { host: c(), kind: FaultKind::Takedown, from: 10, to: 13 },
                FaultWindow { host: c(), kind: FaultKind::Withdraw, from: 16, to: 18 },
                FaultWindow { host: c(), kind: FaultKind::Stall { extra: 3600 }, from: 20, to: 22 },
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn takedown_spec() -> CampaignSpec {
        CampaignSpec {
            name: "t".to_owned(),
            unsafe_vrps: UnsafeVrpPolicy::Accept,
            churn: None,
            rounds: 6,
            windows: vec![FaultWindow {
                host: "rpki.continental.example".to_owned(),
                kind: FaultKind::Takedown,
                from: 2,
                to: 4,
            }],
        }
    }

    #[test]
    fn takedown_separates_stale_cache_from_the_rest() {
        let out = run_campaign(&takedown_spec(), 42);
        let bare = out.tier(RpTier::Bare).totals;
        let retrying = out.tier(RpTier::Retrying).totals;
        let stale = out.tier(RpTier::RetryingStale).totals;
        // A hard outage defeats retries — but the snapshot bridges it.
        assert_eq!(bare.vrp_round_sum, retrying.vrp_round_sum);
        assert!(stale.vrp_round_sum > retrying.vrp_round_sum, "{stale:?} vs {retrying:?}");
        assert_eq!(stale.min_vrps, 8);
        assert!(stale.stale_dir_rounds >= 3, "{stale:?}");
        // Outside the window everyone is whole again.
        assert_eq!(out.tier(RpTier::Bare).rounds.last().unwrap().vrps, 8);
    }

    #[test]
    fn withdraw_separates_suspenders_from_stale_cache() {
        let spec = CampaignSpec {
            name: "w".to_owned(),
            unsafe_vrps: UnsafeVrpPolicy::Accept,
            churn: None,
            rounds: 6,
            windows: vec![FaultWindow {
                host: "rpki.continental.example".to_owned(),
                kind: FaultKind::Withdraw,
                from: 2,
                to: 4,
            }],
        };
        let out = run_campaign(&spec, 42);
        let stale = out.tier(RpTier::RetryingStale).totals;
        let susp = out.tier(RpTier::Suspenders).totals;
        // The stale cache must NOT bridge an authority-side removal…
        assert!(stale.min_vrps < 8, "{stale:?}");
        assert_eq!(stale.stale_dir_rounds, 0, "{stale:?}");
        // …and the hold-down must.
        assert_eq!(susp.min_vrps, 8, "{susp:?}");
        assert_eq!(susp.unknown_flips, 0, "{susp:?}");
    }

    #[test]
    fn campaign_replay_is_identical() {
        let spec = takedown_spec();
        let a = serde_json::to_string(&run_campaign(&spec, 7)).unwrap();
        let b = serde_json::to_string(&run_campaign(&spec, 7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn churned_campaign_replays_identically_and_keeps_separations() {
        let spec = takedown_spec().with_churn(ChurnConfig::renew_only(400));
        let a = serde_json::to_string(&run_campaign(&spec, 7)).unwrap();
        let b = serde_json::to_string(&run_campaign(&spec, 7)).unwrap();
        assert_eq!(a, b, "churned campaigns replay byte-identical");
        // Renew-only churn keeps the VRP population fixed, so the
        // quiet campaign's separations survive under a live publication
        // workload: the stale cache still bridges the takedown, and the
        // RRDP tier absorbs the churn deltas without losing a VRP.
        let out = run_campaign(&spec, 42);
        assert_eq!(out.tier(RpTier::RetryingStale).totals.min_vrps, 8);
        assert_eq!(out.tier(RpTier::Rrdp).totals.min_vrps, 8);
        assert_eq!(out.tier(RpTier::Bare).rounds.last().unwrap().vrps, 8);
    }

    #[test]
    fn incremental_campaign_matches_cold_campaign() {
        let spec = takedown_spec();
        let warm = serde_json::to_string(&run_campaign(&spec, 7)).unwrap();
        let cold = serde_json::to_string(&run_campaign_cold(&spec, 7)).unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn rrdp_tier_matches_suspenders_free_stack_on_transport_faults() {
        // A takedown hits transports equally: the rrdp tier falls back
        // to rsync (which is down too) and then to its stale cache, so
        // its availability equals the retrying+stale tier's.
        let out = run_campaign(&takedown_spec(), 42);
        let stale = out.tier(RpTier::RetryingStale).totals;
        let rrdp = out.tier(RpTier::Rrdp).totals;
        assert_eq!(rrdp.vrp_round_sum, stale.vrp_round_sum, "{rrdp:?} vs {stale:?}");
        assert_eq!(rrdp.min_vrps, 8);
        assert!(rrdp.rrdp_downgrades >= 3, "each outage round downgrades: {rrdp:?}");
        assert_eq!(stale.rrdp_downgrades, 0, "non-RRDP tiers never downgrade");
    }

    #[test]
    fn stalloris_campaign_verified_tier_sees_through_the_pin() {
        let spec = standard_campaigns()
            .into_iter()
            .find(|s| s.name == "stalloris-downgrade")
            .expect("stalloris spec present");
        let out = run_campaign(&spec, 42);
        let rrdp = out.tier(RpTier::Rrdp);
        // Pin rounds before the whack (round 3): the feed is stale but
        // content-identical, so nothing is lost and nothing downgrades
        // beyond the detection rounds.
        // Whack rounds (4–6): the verified tier detects the pin on the
        // Continental point and recovers the truth via rsync — the VRP
        // count drops to 7 like an honest world would show.
        for m in &rrdp.rounds[3..6] {
            assert_eq!(m.vrps, 7, "round {}: verified tier must see the whack", m.round);
            assert!(m.rrdp_downgrades >= 1, "round {}: pin must force a downgrade", m.round);
        }
        // After reissue (7–8, still pinned): truth is 8 again.
        for m in &rrdp.rounds[6..8] {
            assert_eq!(m.vrps, 8, "round {}", m.round);
        }
        // After unpin (9+): the feed heals, no more downgrades.
        for m in &rrdp.rounds[9..] {
            assert_eq!(m.vrps, 8, "round {}", m.round);
            assert_eq!(m.rrdp_downgrades, 0, "round {}: healed feed, no downgrade", m.round);
        }
        // The non-RRDP tiers fetch over rsync and are oblivious to the
        // pin: they see the plain withdraw window.
        let stale = out.tier(RpTier::RetryingStale).totals;
        assert_eq!(stale.min_vrps, 7);
        assert_eq!(stale.rrdp_downgrades, 0);
    }

    #[test]
    fn rrdp_withhold_forces_downgrades_without_data_loss() {
        let spec = CampaignSpec {
            name: "wh".to_owned(),
            unsafe_vrps: UnsafeVrpPolicy::Accept,
            churn: None,
            rounds: 6,
            windows: vec![FaultWindow {
                host: "rpki.continental.example".to_owned(),
                kind: FaultKind::RrdpWithhold,
                from: 2,
                to: 4,
            }],
        };
        let out = run_campaign(&spec, 42);
        let rrdp = out.tier(RpTier::Rrdp);
        // The rsync path keeps the tier whole through the withhold…
        assert_eq!(rrdp.totals.min_vrps, 8, "{:?}", rrdp.totals);
        // …at the cost of one downgrade per withheld round, and none
        // once the feed returns.
        assert_eq!(
            rrdp.rounds.iter().map(|m| m.rrdp_downgrades).collect::<Vec<_>>(),
            vec![0, 1, 1, 1, 0, 0]
        );
    }

    #[test]
    fn shared_campaign_is_shard_count_invariant() {
        // The campaign-tier equivalence pin: a shared-world campaign is
        // byte-identical whether each walk runs sequentially, under one
        // shard, or under eight — faults, caches, and all.
        let spec = takedown_spec();
        let seq =
            serde_json::to_string(&run_campaign_shared(&spec, 7, None, &Recorder::disabled()))
                .unwrap();
        for shards in [1, 2, 8] {
            let sharded = serde_json::to_string(&run_campaign_shared(
                &spec,
                7,
                Some(ShardPlan::new(shards)),
                &Recorder::disabled(),
            ))
            .unwrap();
            assert_eq!(seq, sharded, "shards={shards} must not change a byte");
        }
    }

    #[test]
    fn shared_campaign_measures_divergence_and_load() {
        let out = run_campaign_shared(&takedown_spec(), 42, None, &Recorder::disabled());
        assert_eq!(out.tiers.len(), RpTier::ALL.len());
        assert_eq!(out.divergence.len(), out.rounds);
        // During the takedown window the stale tier keeps serving while
        // bare/retrying lose the Continental VRPs: the tiers diverge.
        assert!(
            out.divergence.iter().any(|d| d.distinct_vrp_sets > 1 && d.max_pairwise_diff > 0),
            "{:?}",
            out.divergence
        );
        // Healthy rounds agree (the walk itself is deterministic).
        assert!(out.divergence.iter().any(|d| d.distinct_vrp_sets == 1), "{:?}", out.divergence);
        // Every host served someone; Continental took the fault traffic.
        assert!(out.load.iter().all(|h| h.frames > 0 && h.bytes > h.frames), "{:?}", out.load);
        assert!(out.load.iter().any(|h| h.host == "rpki.continental.example"));
        // The tier separation the per-tier campaign shows survives the
        // shared world: the snapshot cache bridges the outage.
        let stale = out.tier(RpTier::RetryingStale).totals;
        let bare = out.tier(RpTier::Bare).totals;
        assert!(stale.vrp_round_sum > bare.vrp_round_sum, "{stale:?} vs {bare:?}");
        // Deterministic replay, since every fault here is dice-free.
        let again = run_campaign_shared(&takedown_spec(), 42, None, &Recorder::disabled());
        assert_eq!(serde_json::to_string(&out).unwrap(), serde_json::to_string(&again).unwrap());
    }

    #[test]
    fn rtr_stall_makes_routers_stale_then_recovers() {
        // Intersection policy: the withdraw shrinks the merge the
        // moment any tier sees it, so the stalled feed path (rounds
        // 3–5) leaves routers acting on the pre-whack VRPs.
        let cfg = RtrConfig { routers: 4, policy: MergePolicy::All, ..RtrConfig::default() };
        let out =
            run_campaign_rtr(&rtr_campaign(), 42, cfg, &SlurmFile::empty(), &Recorder::disabled());
        assert_eq!(out.rtr.len(), 10);
        assert_eq!(out.routers, 4);

        // Healthy rounds: everyone synced, routers hold the truth.
        let r1 = &out.rtr[0];
        assert_eq!(r1.synced_routers, 4, "{r1:?}");
        assert_eq!(r1.stale_routers, 0, "{r1:?}");
        assert_eq!(r1.truth_distance_sum, 0, "{r1:?}");
        assert_eq!(r1.relay_truth_distance, 0, "{r1:?}");

        // The whack lands behind the stalled feed (round 4): the relay
        // knows, the routers cannot hear — every router is stale and
        // still holds the whacked VRP.
        let r4 = &out.rtr[3];
        assert_eq!(r4.stale_routers, 4, "{r4:?}");
        assert!(r4.max_serial_lag >= 1, "{r4:?}");
        assert_eq!(r4.truth_distance_sum, 4, "one whacked VRP per router: {r4:?}");
        assert_eq!(r4.relay_truth_distance, 0, "the relay itself kept up: {r4:?}");

        // The stall lifts at round 6: routers drain the delta history
        // and reconverge without a reset storm.
        let r6 = &out.rtr[5];
        assert_eq!(r6.synced_routers, 4, "{r6:?}");
        assert_eq!(r6.truth_distance_sum, 0, "{r6:?}");

        // After the reissue everyone is whole again.
        let last = out.rtr.last().unwrap();
        assert_eq!(last.synced_routers, 4, "{last:?}");
        assert_eq!(last.truth_distance_sum, 0, "{last:?}");
    }

    #[test]
    fn rtr_partition_blocks_even_resets() {
        let spec = CampaignSpec {
            name: "rtr-p".to_owned(),
            unsafe_vrps: UnsafeVrpPolicy::Accept,
            churn: None,
            rounds: 6,
            windows: vec![
                FaultWindow {
                    host: "rtr".to_owned(),
                    kind: FaultKind::RtrPartition,
                    from: 2,
                    to: 4,
                },
                FaultWindow {
                    host: "rpki.continental.example".to_owned(),
                    kind: FaultKind::Withdraw,
                    from: 2,
                    to: 4,
                },
            ],
        };
        let cfg = RtrConfig { routers: 3, policy: MergePolicy::All, ..RtrConfig::default() };
        let out = run_campaign_rtr(&spec, 42, cfg, &SlurmFile::empty(), &Recorder::disabled());
        // During the partition the routers hold the pre-whack set.
        let r2 = &out.rtr[1];
        assert_eq!(r2.stale_routers, 3, "{r2:?}");
        assert_eq!(r2.truth_distance_sum, 3, "{r2:?}");
        // Heal + reissue: converged again by the final round.
        let last = out.rtr.last().unwrap();
        assert_eq!(last.synced_routers, 3, "{last:?}");
        assert_eq!(last.truth_distance_sum, 0, "{last:?}");
        // The repository-side tiers never noticed the RTR fault.
        assert_eq!(out.tier(RpTier::Bare).totals.stale_dir_rounds, 0);
    }

    #[test]
    fn rtr_campaign_replay_is_identical() {
        let cfg = RtrConfig { routers: 3, policy: MergePolicy::All, ..RtrConfig::default() };
        let a = serde_json::to_string(&run_campaign_rtr(
            &rtr_campaign(),
            7,
            cfg,
            &SlurmFile::empty(),
            &Recorder::disabled(),
        ))
        .unwrap();
        let b = serde_json::to_string(&run_campaign_rtr(
            &rtr_campaign(),
            7,
            cfg,
            &SlurmFile::empty(),
            &Recorder::disabled(),
        ))
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn slow_serve_starves_victims_only_inside_the_window() {
        let spec = schedule_gaming_campaign();
        let out = run_schedule_gaming(&spec, 7, gaming_schedule_plan(), &Recorder::disabled());
        let window = &spec.windows[0];
        for r in &out.rounds {
            let in_window = window.from <= r.round && r.round <= window.to;
            assert!(
                in_window || r.deferred == 0,
                "round {}: no deferrals outside the slow-serve window ({r:?})",
                r.round
            );
        }
        // The slow host burns the budget on (at least) every other
        // window round — its own stretched fetch can push its next
        // deadline one round out, so alternation is legitimate.
        let window_len = window.to - window.from + 1;
        assert!(
            out.starved_rounds >= window_len / 2,
            "starved {} of {window_len} window rounds: {out:?}",
            out.starved_rounds
        );
        // Starvation costs freshness, not availability: deferred points
        // are served from the schedule snapshot, so the VRP set never
        // shrinks — but the served age climbs past a full round.
        assert_eq!(out.min_vrps, 8, "{out:?}");
        assert!(out.worst_served_age >= ROUND_SECS, "{out:?}");
        // Outside the window the budget is plentiful and nothing ages.
        let last = out.rounds.last().unwrap();
        assert_eq!(last.deferred, 0);
        assert_eq!(last.backoff_skips, 0, "slow is not down: no breaker may trip ({last:?})");
    }

    #[test]
    fn schedule_gaming_replay_is_identical() {
        let spec = schedule_gaming_campaign();
        let a = run_schedule_gaming(&spec, 11, gaming_schedule_plan(), &Recorder::disabled());
        let b = run_schedule_gaming(&spec, 11, gaming_schedule_plan(), &Recorder::disabled());
        assert_eq!(a, b);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn standard_campaigns_are_well_formed() {
        let specs = standard_campaigns();
        assert_eq!(specs.len(), 6);
        for spec in &specs {
            assert!(spec.rounds >= 1);
            for win in &spec.windows {
                assert!(win.from >= 1 && win.from <= win.to && win.to <= spec.rounds);
                // Snapshot budget covers every transport window, so the
                // stale tier's bridging claim is meaningful throughout.
                let budget_rounds = (campaign_resilience().max_stale / ROUND_SECS) as usize;
                assert!(win.to - win.from < budget_rounds, "{}: window too long", spec.name);
            }
        }
    }
}
