//! A Suspenders-style fail-safe for relying parties.
//!
//! The paper's conclusion points at concurrent IETF work "to harden the
//! RPKI against errors, misconfigurations, and abuse", citing
//! *Suspenders: A Fail-safe Mechanism for the RPKI*
//! (draft-kent-sidr-suspenders). This module implements the core idea
//! as a relying-party layer over the validator:
//!
//! **A validated ROA payload does not vanish from the effective cache
//! the moment it vanishes from a repository.** When a VRP disappears
//! *without legitimate evidence* — no CRL revocation observed, not
//! expired — the relying party keeps using it for a configurable
//! hold-down window and raises an alarm, giving the resource holder
//! time to contest a whack before routing is affected.
//!
//! The distinction is exactly the transparency asymmetry of Side
//! Effects 1–2: transparent revocation carries its own evidence (the
//! CRL) and takes effect immediately; stealthy removal, overwriting,
//! and carve-induced invalidation carry none — and those are precisely
//! the manipulations the paper shows. The cost is symmetric, and the
//! module makes it measurable: during the hold-down the relying party
//! also keeps *honestly-removed* VRPs whose removal was done stealthily
//! (e.g. an operator cleaning up by deletion instead of revocation), so
//! the knob trades whack-resistance against responsiveness.

use std::collections::BTreeMap;

use rpki_objects::{Moment, Span};
use rpki_rp::{ValidationRun, Vrp, VrpCache, VrpRecord};
use serde::Serialize;

/// Configuration of the fail-safe.
#[derive(Debug, Clone, Copy)]
pub struct SuspendersConfig {
    /// How long a VRP that disappeared without evidence keeps
    /// protecting routes.
    pub hold_down: Span,
}

impl Default for SuspendersConfig {
    /// Seven days: long enough to litigate a whack, short enough that
    /// stale authorizations age out.
    fn default() -> Self {
        SuspendersConfig { hold_down: Span::days(7) }
    }
}

/// Why a VRP left the effective cache (or is being held).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Disposition {
    /// Present in the latest validation run.
    Fresh,
    /// Missing without evidence; still protecting routes until the
    /// hold-down ends.
    Held {
        /// When it went missing.
        since: Moment,
        /// When the hold-down expires.
        until: Moment,
    },
}

/// One state transition the fail-safe made during an ingest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum SuspendersEvent {
    /// A VRP disappeared with a matching CRL revocation: transparent,
    /// takes effect immediately.
    DroppedRevoked(Vrp),
    /// A VRP disappeared because its ROA's validity ended: legitimate
    /// expiry (possibly a *negligent* non-renewal, but holding it would
    /// mean trusting an expired signature).
    DroppedExpired(Vrp),
    /// A VRP disappeared without evidence: held, alarm raised. This is
    /// the whacking signature.
    HeldSuspicious(Vrp),
    /// A held VRP reappeared in a validation run (fault healed, or the
    /// manipulator backed off).
    Recovered(Vrp),
    /// A held VRP's hold-down lapsed without recovery: dropped for
    /// real.
    HoldDownExpired(Vrp),
}

impl SuspendersEvent {
    /// A short machine-readable label for traces and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            SuspendersEvent::DroppedRevoked(_) => "dropped_revoked",
            SuspendersEvent::DroppedExpired(_) => "dropped_expired",
            SuspendersEvent::HeldSuspicious(_) => "held_suspicious",
            SuspendersEvent::Recovered(_) => "recovered",
            SuspendersEvent::HoldDownExpired(_) => "hold_down_expired",
        }
    }

    /// The VRP the transition concerns.
    pub fn vrp(&self) -> Vrp {
        match self {
            SuspendersEvent::DroppedRevoked(v)
            | SuspendersEvent::DroppedExpired(v)
            | SuspendersEvent::HeldSuspicious(v)
            | SuspendersEvent::Recovered(v)
            | SuspendersEvent::HoldDownExpired(v) => *v,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    record: VrpRecord,
    disposition: Disposition,
}

/// The stateful fail-safe. Feed it every validation run; read the
/// effective cache from [`SuspendersState::effective_cache`].
#[derive(Debug)]
pub struct SuspendersState {
    config: SuspendersConfig,
    entries: BTreeMap<Vrp, Entry>,
}

impl SuspendersState {
    /// A fail-safe with the given configuration and no history.
    pub fn new(config: SuspendersConfig) -> Self {
        SuspendersState { config, entries: BTreeMap::new() }
    }

    /// Ingests a validation run at `now`; returns the transitions made.
    pub fn ingest(&mut self, run: &ValidationRun, now: Moment) -> Vec<SuspendersEvent> {
        let mut events = Vec::new();

        // Index the new run.
        let fresh: BTreeMap<Vrp, VrpRecord> = run.vrp_records.iter().map(|r| (r.vrp, *r)).collect();

        // Update existing entries.
        let mut to_remove: Vec<Vrp> = Vec::new();
        for (vrp, entry) in self.entries.iter_mut() {
            if let Some(record) = fresh.get(vrp) {
                if matches!(entry.disposition, Disposition::Held { .. }) {
                    events.push(SuspendersEvent::Recovered(*vrp));
                }
                entry.record = *record;
                entry.disposition = Disposition::Fresh;
                continue;
            }
            // Missing from the new run. Evidence?
            let revoked = run
                .revocations
                .iter()
                .any(|(key, serial)| *key == entry.record.issuer && *serial == entry.record.serial);
            if revoked {
                events.push(SuspendersEvent::DroppedRevoked(*vrp));
                to_remove.push(*vrp);
                continue;
            }
            if now > entry.record.not_after {
                events.push(SuspendersEvent::DroppedExpired(*vrp));
                to_remove.push(*vrp);
                continue;
            }
            match entry.disposition {
                Disposition::Fresh => {
                    // First disappearance: hold and alarm.
                    entry.disposition =
                        Disposition::Held { since: now, until: now + self.config.hold_down };
                    events.push(SuspendersEvent::HeldSuspicious(*vrp));
                }
                Disposition::Held { until, .. } => {
                    if now > until {
                        events.push(SuspendersEvent::HoldDownExpired(*vrp));
                        to_remove.push(*vrp);
                    }
                    // else: keep holding, no new event.
                }
            }
        }
        for vrp in to_remove {
            self.entries.remove(&vrp);
        }

        // Adopt genuinely new VRPs.
        for (vrp, record) in fresh {
            self.entries.entry(vrp).or_insert(Entry { record, disposition: Disposition::Fresh });
        }

        events
    }

    /// The effective cache: fresh VRPs plus held ones.
    pub fn effective_cache(&self) -> VrpCache {
        self.entries.keys().copied().collect()
    }

    /// The VRPs currently in hold-down, with their windows.
    pub fn held(&self) -> Vec<(Vrp, Moment, Moment)> {
        self.entries
            .values()
            .filter_map(|e| match e.disposition {
                Disposition::Held { since, until } => Some((e.record.vrp, since, until)),
                Disposition::Fresh => None,
            })
            .collect()
    }

    /// Number of VRPs in the effective cache.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the effective cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{asn, ModelRpki};
    use rpki_rp::{Route, RouteValidity};

    fn cfg() -> SuspendersConfig {
        SuspendersConfig { hold_down: Span::days(7) }
    }

    #[test]
    fn steady_state_is_quiet() {
        let mut w = ModelRpki::build();
        let mut s = SuspendersState::new(cfg());
        let events = s.ingest(&w.validate_direct(Moment(2)), Moment(2));
        assert!(events.is_empty());
        assert_eq!(s.len(), 8);
        w.publish_all(Moment(100));
        let events = s.ingest(&w.validate_direct(Moment(101)), Moment(101));
        assert!(events.is_empty(), "{events:?}");
        assert!(s.held().is_empty());
    }

    #[test]
    fn whack_is_held_and_routes_stay_valid() {
        let mut w = ModelRpki::build();
        let mut s = SuspendersState::new(cfg());
        s.ingest(&w.validate_direct(Moment(2)), Moment(2));

        // Sprint whacks Continental's covering ROA via carve-out.
        use rpki_attacks::{plan_whack, CaView};
        let rc = w.sprint.issued_cert_for(w.continental.key_id()).unwrap().clone();
        let view = CaView::from_repos(&rc, &w.repos);
        let file = w.covering_roa_file();
        let plan = plan_whack(std::slice::from_ref(&view), &file).unwrap();
        plan.execute(&mut w.sprint, Moment(3)).unwrap();
        w.publish_all(Moment(3));

        let run = w.validate_direct(Moment(4));
        // Bare validator: the VRP is gone...
        assert!(!run.vrps.iter().any(|v| v.asn == asn::CONTINENTAL));
        // ...but Suspenders holds it.
        let events = s.ingest(&run, Moment(4));
        assert!(events
            .iter()
            .any(|e| matches!(e, SuspendersEvent::HeldSuspicious(v) if v.asn == asn::CONTINENTAL)));
        let cache = s.effective_cache();
        assert_eq!(
            cache.classify(Route::new("63.174.16.0/20".parse().unwrap(), asn::CONTINENTAL)),
            RouteValidity::Valid,
            "held VRP keeps the victim's route valid"
        );
        assert_eq!(s.held().len(), 1);
    }

    #[test]
    fn transparent_revocation_takes_effect_immediately() {
        let mut w = ModelRpki::build();
        let mut s = SuspendersState::new(cfg());
        s.ingest(&w.validate_direct(Moment(2)), Moment(2));

        let serial =
            w.continental.issued_roas().find(|r| r.asn() == asn::CONTINENTAL).unwrap().serial();
        w.continental.revoke_serial(serial);
        w.publish_all(Moment(3));
        let events = s.ingest(&w.validate_direct(Moment(4)), Moment(4));
        assert!(events
            .iter()
            .any(|e| matches!(e, SuspendersEvent::DroppedRevoked(v) if v.asn == asn::CONTINENTAL)));
        assert!(s.held().is_empty());
        assert_eq!(
            s.effective_cache()
                .classify(Route::new("63.174.16.0/20".parse().unwrap(), asn::CONTINENTAL)),
            RouteValidity::Unknown
        );
    }

    #[test]
    fn expiry_is_not_held() {
        let w = ModelRpki::build();
        let mut s = SuspendersState::new(cfg());
        s.ingest(&w.validate_direct(Moment(2)), Moment(2));
        // Far enough that the model's ROAs have expired (365d default):
        // the validator drops them, and Suspenders must NOT hold them.
        let late = Moment(0) + Span::days(400);
        let run = w.validate_direct(late);
        assert!(run.vrps.is_empty());
        let events = s.ingest(&run, late);
        assert_eq!(events.len(), 8);
        assert!(events.iter().all(|e| matches!(e, SuspendersEvent::DroppedExpired(_))));
        assert!(s.is_empty());
    }

    #[test]
    fn hold_down_lapses() {
        let mut w = ModelRpki::build();
        let mut s = SuspendersState::new(SuspendersConfig { hold_down: Span::days(2) });
        s.ingest(&w.validate_direct(Moment(2)), Moment(2));
        let file = w.covering_roa_file();
        w.continental.withdraw(&file).unwrap();
        w.publish_all(Moment(3));
        // Day 0: held.
        let run = w.validate_direct(Moment(4));
        s.ingest(&run, Moment(4));
        assert_eq!(s.held().len(), 1);
        // Day 1: still held, no repeat alarm.
        let events =
            s.ingest(&w.validate_direct(Moment(4) + Span::days(1)), Moment(4) + Span::days(1));
        assert!(events.is_empty());
        assert_eq!(s.held().len(), 1);
        // Day 3 (past the 2-day hold-down): dropped for real.
        let t = Moment(4) + Span::days(3);
        let events = s.ingest(&w.validate_direct(t), t);
        assert!(events.iter().any(
            |e| matches!(e, SuspendersEvent::HoldDownExpired(v) if v.asn == asn::CONTINENTAL)
        ));
        assert_eq!(s.held().len(), 0);
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn recovery_clears_the_hold() {
        let mut w = ModelRpki::build();
        let mut s = SuspendersState::new(cfg());
        s.ingest(&w.validate_direct(Moment(2)), Moment(2));
        // A transport fault makes Continental's repo unreachable for one
        // sync; its VRPs are held.
        let node = w.repos.node_of("rpki.continental.example").unwrap();
        w.net.faults.set_down(node, true);
        let run = w.validate_with(crate::ValidationOptions::at(Moment(3)));
        let events = s.ingest(&run, Moment(3));
        assert_eq!(
            events.iter().filter(|e| matches!(e, SuspendersEvent::HeldSuspicious(_))).count(),
            5
        );
        // Routing is unaffected throughout.
        assert_eq!(s.effective_cache().len(), 8);
        // The repo comes back; everything recovers.
        w.net.faults.set_down(node, false);
        let run = w.validate_with(crate::ValidationOptions::at(Moment(4)));
        let events = s.ingest(&run, Moment(4));
        assert_eq!(events.iter().filter(|e| matches!(e, SuspendersEvent::Recovered(_))).count(), 5);
        assert!(s.held().is_empty());
    }

    #[test]
    fn renewal_is_transparent_to_suspenders() {
        let mut w = ModelRpki::build();
        let mut s = SuspendersState::new(cfg());
        s.ingest(&w.validate_direct(Moment(2)), Moment(2));
        // Renew one of Sprint's ROAs: same VRP content, new EE identity.
        let file = w.sprint.issued_roas().next().map(|r| r.file_name()).unwrap();
        w.sprint.renew_roa(&file, Moment(50)).unwrap();
        w.publish_all(Moment(51));
        let events = s.ingest(&w.validate_direct(Moment(52)), Moment(52));
        // The VRP never disappeared (content identity), so: silence.
        assert!(events.is_empty(), "{events:?}");
    }
}
