//! `rpki-risk` — the analysis framework for *On the Risk of Misbehaving
//! RPKI Authorities* (HotNets '13).
//!
//! The substrate crates give us a working RPKI (objects, CAs,
//! repositories, relying parties) and a working BGP (policy routing,
//! forwarding). This crate asks the paper's questions of them:
//!
//! - [`fixtures`] — the Figure 2 model RPKI, reconstructed as a live
//!   world: ARIN → Sprint → {ETB, Continental Broadband}, seven ROAs,
//!   repositories, an AS topology, and a relying party.
//! - [`grid`] — Figure 5's route-validity grids: classify every
//!   subprefix × origin against a VRP cache and collapse the result
//!   into readable bands.
//! - [`tradeoff`] — Table 6: prefix reachability during a routing
//!   attack vs during an RPKI manipulation, under each local policy.
//! - [`jurisdiction`] — Table 4: walk the allocation tree of a
//!   synthetic Internet and find RCs covering countries outside their
//!   parent RIR's region.
//! - [`loopback`] — Section 6 / Figure 1: the RPKI⇆BGP fixed point,
//!   where route validity gates repository reachability gates route
//!   validity; demonstrates how one transient fault becomes persistent.
//! - [`side_effects`] — quantifiers for Side Effect 5 (a new ROA
//!   invalidates covered routes) and Side Effect 6 (a missing ROA
//!   flips valid routes to invalid).
//! - [`suspenders`] — a fail-safe relying-party layer implementing the
//!   hardening direction the paper's conclusion cites
//!   (draft-kent-sidr-suspenders): hold VRPs that vanish without
//!   evidence, so whacks stop translating into instant outages.
//! - [`validate`] — the single validation entry point:
//!   [`ValidationOptions`] names the relying-party layers (retries,
//!   stale cache, Suspenders, strict profile, transport, incremental
//!   revalidation) and `validate_with` assembles and runs them,
//!   reporting through the world's observability recorder.
//! - [`campaign`] — seeded fault campaigns comparing relying-party
//!   configurations (bare / retrying / stale-cache / Suspenders /
//!   RRDP) on VRP availability and validity flips under scheduled
//!   repository faults; the harness behind the `ablation_resilience`
//!   experiment.
//! - [`downgrade`] — the Stalloris scenario: a stealthy withdrawal
//!   executed behind a pinned RRDP feed, measured against trusting,
//!   verified, and at-rest relying-party stances; the harness behind
//!   the `ablation_downgrade` experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod downgrade;
pub mod fixtures;
pub mod grid;
pub mod jurisdiction;
pub mod loopback;
pub mod side_effects;
pub mod suspenders;
pub mod tradeoff;
pub mod validate;

pub use campaign::{
    gaming_schedule_plan, rtr_campaign, run_campaign, run_campaign_cold, run_campaign_rtr,
    run_campaign_shared, run_campaign_traced, run_schedule_gaming, schedule_gaming_campaign,
    standard_campaigns, CampaignOutcome, CampaignSpec, DivergenceMetrics, FaultKind, FaultWindow,
    HostLoad, RoundMetrics, RpTier, RtrCampaignOutcome, RtrConfig, RtrRoundMetrics,
    ScheduleGamingOutcome, ScheduleRoundMetrics, SharedCampaignOutcome, TierOutcome, TierTotals,
};
pub use downgrade::{
    run_downgrade_scenario, run_downgrade_scheduled, run_downgrade_traced, DowngradeOutcome,
    DowngradeRound, DowngradeSchedule,
};
pub use fixtures::{ModelRpki, SyntheticRpki};
pub use grid::{collapse_bands, validity_grid, Band, GridRow};
pub use jurisdiction::{
    jurisdiction_report, rir_reach, JurisdictionReport, JurisdictionRow, RirReach,
};
pub use loopback::{LoopbackOutcome, LoopbackWorld};
pub use side_effects::{se5_new_roa_impact, se6_missing_roa_impact, Se5Impact, Se6Impact};
pub use suspenders::{SuspendersConfig, SuspendersEvent, SuspendersState};
pub use tradeoff::{policy_tradeoff, ScenarioOutcome, TradeoffTable};
pub use validate::ValidationOptions;
