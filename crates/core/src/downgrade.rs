//! The Stalloris scenario: an RRDP downgrade hiding a whack.
//!
//! [`campaign`](crate::campaign) measures relying-party tiers under
//! *random* transport faults. This module runs the *deliberate* one:
//! the paper's stealthy withdrawal (Side Effect 2) executed behind a
//! Stalloris-style RRDP pin, so the publication point keeps replaying
//! its pre-whack feed while the at-rest truth has moved on.
//!
//! Three relying-party stances watch the same worlds in lock-step:
//!
//! - **truth** — direct at-rest validation, no transport: what a
//!   relying party *should* see each round;
//! - **trusting** — prefers RRDP and believes it
//!   ([`ValidationOptions::rrdp_trusting`]): the stance Stalloris
//!   exploits;
//! - **verified** — prefers RRDP but cross-checks freshness against an
//!   rsync digest probe and downgrades on disagreement
//!   ([`ValidationOptions::rrdp`]): the hardening this repo argues for.
//!
//! The outcome quantifies the attack as *stale rounds*: rounds where a
//! stance's VRP set differs from truth. The Stalloris effect is the
//! gap — the trusting stance stays stale for the whole pin window, the
//! verified stance for none of it. Every count is an integer and the
//! schedule is fixed, so a seed replays byte-identically; the
//! `ablation_downgrade` binary serialises [`DowngradeOutcome`] as the
//! experiment artifact.

use rpki_attacks::{apply_step, DowngradePlan, Monitor, MonitorEvent, MonitorSnapshot};
use rpki_objects::Moment;
use rpki_obs::Recorder;
use rpki_repo::{RrdpClientState, SyncPolicy};
use serde::Serialize;

use crate::campaign::ROUND_SECS;
use crate::fixtures::ModelRpki;
use crate::validate::ValidationOptions;

/// The misbehaving publication point (it hosts the whacked ROA).
const TARGET_HOST: &str = "rpki.continental.example";

/// The fixed schedule: what happens at which round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DowngradeSchedule {
    /// Total rounds.
    pub rounds: usize,
    /// Round at which the feed is pinned (the plan's opening step).
    pub pin_round: usize,
    /// Round at which the covering ROA is stealthily withdrawn.
    pub whack_round: usize,
    /// Round at which the host restores itself (the plan's last step).
    pub restore_round: usize,
}

impl Default for DowngradeSchedule {
    fn default() -> Self {
        DowngradeSchedule { rounds: 12, pin_round: 3, whack_round: 4, restore_round: 9 }
    }
}

/// One round of the scenario, all three stances side by side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DowngradeRound {
    /// Round number (1-based).
    pub round: usize,
    /// VRPs under direct at-rest validation (ground truth).
    pub truth_vrps: usize,
    /// VRPs the trusting RRDP stance holds.
    pub trusting_vrps: usize,
    /// VRPs the verified RRDP stance holds.
    pub verified_vrps: usize,
    /// Did the trusting stance diverge from truth this round?
    pub trusting_stale: bool,
    /// Did the verified stance diverge from truth this round?
    pub verified_stale: bool,
    /// Rsync downgrades the verified stance performed this round.
    pub verified_downgrades: usize,
    /// Pinned-feed detections the verified stance raised this round.
    pub pinned_detected: usize,
}

/// The full scenario record: schedule, per-round data, and the stale
/// totals the Stalloris claim rests on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DowngradeOutcome {
    /// Network seed the scenario ran under.
    pub seed: u64,
    /// The attacked host.
    pub host: String,
    /// The applied schedule.
    pub schedule: DowngradeSchedule,
    /// Per-round measurements.
    pub rounds: Vec<DowngradeRound>,
    /// Rounds the trusting stance spent diverged from truth.
    pub trusting_stale_rounds: usize,
    /// Rounds the verified stance spent diverged from truth.
    pub verified_stale_rounds: usize,
    /// The at-rest monitor's classified diff, round by round: the
    /// object-layer half of the evidence (the stealthy withdrawal
    /// shows up here even while the pinned feed hides it).
    pub monitor_events: Vec<MonitorEvent>,
}

/// Runs the Stalloris scenario under the default schedule.
pub fn run_downgrade_scenario(seed: u64) -> DowngradeOutcome {
    run_downgrade_scheduled(seed, DowngradeSchedule::default())
}

/// Runs the default schedule with `recorder` installed on the
/// verified world, so the relying party's `rrdp_pinned` and
/// `rrdp_downgrade` events land in the trace — the transport half of
/// the evidence a [`rpki_attacks::MisbehaviorReport`] merges with the
/// outcome's `monitor_events`.
pub fn run_downgrade_traced(seed: u64, recorder: &Recorder) -> DowngradeOutcome {
    run_downgrade_inner(seed, DowngradeSchedule::default(), Some(recorder))
}

/// Runs the Stalloris scenario under an explicit schedule.
pub fn run_downgrade_scheduled(seed: u64, schedule: DowngradeSchedule) -> DowngradeOutcome {
    run_downgrade_inner(seed, schedule, None)
}

/// The scenario body.
///
/// Two worlds are built from the same seed — one per transported
/// stance — and mutated identically; truth is read at-rest, so a third
/// world is unnecessary. The attack itself is a
/// [`DowngradePlan::stalloris`]: its opening step fires at
/// `pin_round`, its closing step at `restore_round`, and the whack
/// lands in between, invisible to anyone still watching the pinned
/// feed. An at-rest [`Monitor`] snapshots the verified world every
/// round; its classified diff rides along in the outcome.
fn run_downgrade_inner(
    seed: u64,
    schedule: DowngradeSchedule,
    recorder: Option<&Recorder>,
) -> DowngradeOutcome {
    assert!(
        schedule.pin_round < schedule.whack_round
            && schedule.whack_round < schedule.restore_round
            && schedule.restore_round <= schedule.rounds,
        "schedule must order pin < whack < restore <= rounds"
    );
    let plan = DowngradePlan::stalloris(TARGET_HOST);
    let open = *plan.steps.first().expect("stalloris plans open");
    let close = *plan.steps.last().expect("stalloris plans close");

    let mut trusting_world = ModelRpki::build_seeded(seed);
    let mut verified_world = ModelRpki::build_seeded(seed);
    let mut trusting = RrdpClientState::new();
    let mut verified = RrdpClientState::new();
    let policy = SyncPolicy::default();
    if let Some(recorder) = recorder {
        verified_world.net.set_recorder(recorder.clone());
    }
    let rec = verified_world.net.recorder();
    let mut monitor = Monitor::new();
    let mut monitor_events: Vec<MonitorEvent> = Vec::new();
    monitor
        .observe(MonitorSnapshot::capture(&verified_world.repos, Moment(verified_world.net.now())));

    // Warm-up: both stances converge on the healthy world.
    let moment = Moment(trusting_world.net.now());
    trusting_world
        .validate_with(ValidationOptions::at(moment).retry(policy).rrdp_trusting(&mut trusting));
    verified_world.validate_with(ValidationOptions::at(moment).retry(policy).rrdp(&mut verified));
    let mut prev_downgrades = verified.stats().downgrades;
    let mut prev_pinned = verified.stats().pinned_detected;

    let mut rounds = Vec::with_capacity(schedule.rounds);
    for round in 1..=schedule.rounds {
        for w in [&mut trusting_world, &mut verified_world] {
            w.net.advance_to(round as u64 * ROUND_SECS);
            if round == schedule.pin_round {
                apply_step(&mut w.repos, &plan.host, open);
            }
            if round == schedule.restore_round {
                apply_step(&mut w.repos, &plan.host, close);
            }
        }
        let moment = Moment(trusting_world.net.now());
        if round == schedule.whack_round {
            for w in [&mut trusting_world, &mut verified_world] {
                let file = w.covering_roa_file();
                w.continental.withdraw(&file).expect("covering ROA published");
                w.publish_all(moment);
            }
        }

        // The at-rest monitor diffs the verified world's repositories:
        // the pin is transport-only, so the whack is in plain sight
        // here even while the feed replays the pre-whack view.
        monitor_events
            .extend(monitor.observe(MonitorSnapshot::capture(&verified_world.repos, moment)));

        // Truth reads either world at rest: the pin is transport-only,
        // so the trusting world's files are already the real state.
        let truth = trusting_world.validate_direct(moment);
        let t = trusting_world.validate_with(
            ValidationOptions::at(moment).retry(policy).rrdp_trusting(&mut trusting),
        );
        let v = verified_world
            .validate_with(ValidationOptions::at(moment).retry(policy).rrdp(&mut verified));

        let m = DowngradeRound {
            round,
            truth_vrps: truth.vrps.len(),
            trusting_vrps: t.vrps.len(),
            verified_vrps: v.vrps.len(),
            trusting_stale: t.vrps != truth.vrps,
            verified_stale: v.vrps != truth.vrps,
            verified_downgrades: (verified.stats().downgrades - prev_downgrades) as usize,
            pinned_detected: (verified.stats().pinned_detected - prev_pinned) as usize,
        };
        prev_downgrades = verified.stats().downgrades;
        prev_pinned = verified.stats().pinned_detected;
        if rec.is_enabled() {
            rec.count("downgrade.rounds", 1);
            rec.count("downgrade.trusting_stale_rounds", m.trusting_stale as u64);
            rec.count("downgrade.verified_stale_rounds", m.verified_stale as u64);
            rec.event(moment.0, "downgrade", "round")
                .u64("round", round as u64)
                .u64("truth_vrps", m.truth_vrps as u64)
                .u64("trusting_vrps", m.trusting_vrps as u64)
                .u64("verified_vrps", m.verified_vrps as u64)
                .bool("trusting_stale", m.trusting_stale)
                .bool("verified_stale", m.verified_stale)
                .u64("verified_downgrades", m.verified_downgrades as u64)
                .u64("pinned_detected", m.pinned_detected as u64)
                .emit();
        }
        rounds.push(m);
    }

    let outcome = DowngradeOutcome {
        seed,
        host: plan.host,
        schedule,
        trusting_stale_rounds: rounds.iter().filter(|m| m.trusting_stale).count(),
        verified_stale_rounds: rounds.iter().filter(|m| m.verified_stale).count(),
        rounds,
        monitor_events,
    };
    if rec.is_enabled() {
        rec.event(verified_world.net.now(), "downgrade", "outcome")
            .str("host", &outcome.host)
            .u64("trusting_stale_rounds", outcome.trusting_stale_rounds as u64)
            .u64("verified_stale_rounds", outcome.verified_stale_rounds as u64)
            .emit();
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stalloris_effect_holds_under_default_schedule() {
        let out = run_downgrade_scenario(41);
        let s = out.schedule;
        for m in &out.rounds {
            // Healthy world is 8 VRPs; the whack takes truth to 7.
            let expected_truth = if m.round >= s.whack_round { 7 } else { 8 };
            assert_eq!(m.truth_vrps, expected_truth, "round {}", m.round);
            // The verified stance tracks truth every single round.
            assert!(!m.verified_stale, "verified diverged at round {}", m.round);
            assert_eq!(m.verified_vrps, expected_truth, "round {}", m.round);
            // The trusting stance is captive exactly while pinned over
            // a whacked world, and recovers once the host restores.
            let captive = (s.whack_round..s.restore_round).contains(&m.round);
            assert_eq!(m.trusting_stale, captive, "round {}", m.round);
            if captive {
                assert_eq!(m.trusting_vrps, 8, "the pin replays the pre-whack world");
            }
        }
        assert_eq!(out.trusting_stale_rounds, s.restore_round - s.whack_round);
        assert_eq!(out.verified_stale_rounds, 0);
        // The verified stance noticed: it flagged the pin and
        // downgraded to rsync while the feed was lying.
        let detections: usize = out.rounds.iter().map(|m| m.pinned_detected).sum();
        assert!(detections > 0, "the verified stance must detect the pin");
        let tail = out.rounds.last().unwrap();
        assert_eq!(tail.verified_downgrades, 0, "after restore, RRDP serves again");
    }

    #[test]
    fn scenario_replays_byte_identically() {
        let a = run_downgrade_scenario(17);
        let b = run_downgrade_scenario(17);
        assert_eq!(a, b);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn traced_run_yields_a_misbehavior_report_naming_the_host() {
        use rpki_attacks::{Classification, MisbehaviorReport};

        let rec = Recorder::new();
        let out = run_downgrade_traced(23, &rec);
        // Object layer: the covering-ROA withdrawal is a stealthy
        // removal in the host's own directory.
        assert!(out
            .monitor_events
            .iter()
            .any(|e| e.classification == Classification::StealthyRemoval
                && e.dir.contains(&out.host)));
        // Transport layer: the verified stance flagged the pin.
        let report = MisbehaviorReport::build(&out.monitor_events, &rec.events());
        let accused = report.host(&out.host).expect("the target host is accused");
        assert!(accused.pinned_detections > 0, "{accused:?}");
        assert!(accused.downgrades > 0, "{accused:?}");
        assert!(!accused.object_alarms.is_empty(), "{accused:?}");
        assert!(accused.transport.iter().any(|t| t.reason.as_deref() == Some("pinned")));
    }

    #[test]
    fn session_reset_rounds_register_as_session_reset_fallbacks() {
        use rpki_attacks::DowngradeStep;

        let mut w = ModelRpki::build_seeded(41);
        let mut client = RrdpClientState::new();
        let policy = SyncPolicy::default();
        w.validate_with(ValidationOptions::at(Moment(2)).retry(policy).rrdp(&mut client));
        // Cold syncs are initial-cause snapshot fetches, nothing else.
        let stats = client.stats();
        assert_eq!(stats.fallback_initial, stats.snapshot_syncs, "{stats:?}");
        assert_eq!(stats.fallback_session_reset, 0);

        // The ResetSession misbehaviour: fresh session ids, history
        // gone — every Continental directory forces a re-snapshot, and
        // the cause ledger must say *why*.
        apply_step(&mut w.repos, TARGET_HOST, DowngradeStep::ResetSession);
        w.validate_with(ValidationOptions::at(Moment(3)).retry(policy).rrdp(&mut client));
        let stats = client.stats();
        assert!(stats.fallback_session_reset > 0, "{stats:?}");
        assert_eq!(stats.fallback_evicted, 0, "no history was outrun: {stats:?}");
        assert_eq!(
            stats.fallback_initial
                + stats.fallback_evicted
                + stats.fallback_session_reset
                + stats.fallback_chain_gap,
            stats.snapshot_syncs,
            "fallback causes must partition the snapshot syncs: {stats:?}"
        );
    }

    #[test]
    #[should_panic(expected = "schedule must order")]
    fn misordered_schedules_are_rejected() {
        run_downgrade_scheduled(
            1,
            DowngradeSchedule { rounds: 5, pin_round: 4, whack_round: 2, restore_round: 5 },
        );
    }
}
