//! The paper's Figure 2 model RPKI, reconstructed as a live world.
//!
//! The figure (an excerpt) and the surrounding prose pin down:
//!
//! - ARIN suballocates to Sprint (Table 4 gives Sprint's blocks:
//!   `63.160.0.0/12` and `208.0.0.0/11`);
//! - Sprint issues RCs to ETB S.A. ESP. and Continental Broadband, and
//!   "two ROAs that authorize specified prefix and its subprefixes of
//!   length up to 24";
//! - Continental Broadband (AS 17054) holds `63.174.16.0/20`, issues
//!   the covering ROA `(63.174.16.0/20, AS17054)` plus four more — the
//!   paper says revoking its RC "would whack four additional ROAs" —
//!   among them the make-before-break target `(63.174.16.0/22,
//!   AS7341)`;
//! - Continental hosts its own repository at `63.174.23.0` (Section 6).
//!
//! Values the excerpt leaves unreadable (exact ETB block, the sibling
//! ROA prefixes) are reconstructed to satisfy every constraint the
//! text states: the /24 carve-out must be collateral-free, the /22
//! target must *not* be, and `63.174.17.0/24` must be invalid while
//! `63.160.0.0/12` is unknown (Figure 5, left).

use bgp_sim::{Announcement, Topology};
use ipres::{Asn, Prefix, ResourceSet};
use netsim::{Network, NodeId};
use rpki_ca::{CertAuthority, ChurnEngine, ChurnReport};
use rpki_objects::{Encode, Moment, RepoUri, Roa, RoaPrefix, RpkiObject, Span, TrustAnchorLocator};
use rpki_repo::RepoRegistry;
use rpki_rp::{
    DirectSource, NetworkSource, ShardPlan, ShardStats, ValidationConfig, ValidationRun,
    ValidationState, Validator,
};

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn rs(s: &str) -> ResourceSet {
    ResourceSet::from_prefix_strs(s)
}

/// Well-known ASNs of the model.
pub mod asn {
    use ipres::Asn;

    /// Sprint.
    pub const SPRINT: Asn = Asn(1239);
    /// Continental Broadband.
    pub const CONTINENTAL: Asn = Asn(17054);
    /// The make-before-break target customer.
    pub const CUSTOMER_A: Asn = Asn(7341);
    /// Sibling customer.
    pub const CUSTOMER_B: Asn = Asn(7342);
    /// Sibling customer.
    pub const CUSTOMER_C: Asn = Asn(7343);
    /// Sibling customer.
    pub const CUSTOMER_D: Asn = Asn(7344);
    /// ETB S.A. ESP.
    pub const ETB: Asn = Asn(19094);
    /// The relying party's own AS.
    pub const RELYING_PARTY: Asn = Asn(64512);
}

/// The model world: CAs, repositories, network, topology, and a relying
/// party, ready for manipulation experiments.
pub struct ModelRpki {
    /// The simulated network.
    pub net: Network,
    /// All repositories.
    pub repos: RepoRegistry,
    /// The relying party's network node.
    pub rp_node: NodeId,
    /// ARIN (the model's trust anchor).
    pub arin: CertAuthority,
    /// Sprint.
    pub sprint: CertAuthority,
    /// ETB S.A. ESP.
    pub etb: CertAuthority,
    /// Continental Broadband.
    pub continental: CertAuthority,
    /// The relying party's trust anchor locator.
    pub tal: TrustAnchorLocator,
    /// The AS graph of the model.
    pub topology: Topology,
    /// Everyone's legitimate BGP announcements.
    pub announcements: Vec<Announcement>,
}

impl ModelRpki {
    /// Builds and publishes the model world with the canonical seed.
    pub fn build() -> ModelRpki {
        ModelRpki::build_seeded(2013)
    }

    /// Builds and publishes the model world over a network seeded with
    /// `seed` — the entry point for fault campaigns that sweep seeds.
    pub fn build_seeded(seed: u64) -> ModelRpki {
        let mut net = Network::new(seed);
        let rp_node = net.add_node("relying-party");
        let mut repos = RepoRegistry::new();
        for host in [
            "rpki.arin.example",
            "rpki.sprint.example",
            "rpki.etb.example",
            "rpki.continental.example",
        ] {
            repos.create(&mut net, host);
        }
        // Section 6: Continental hosts its own repository at
        // 63.174.23.0 inside its own /20, originated by AS 17054.
        repos
            .by_host_mut("rpki.continental.example")
            .expect("just created")
            .set_hosted_at(p("63.174.23.0/24"), asn::CONTINENTAL);

        let dir = |host: &str| RepoUri::new(host, &["repo"]);

        let mut arin = CertAuthority::new("ARIN", "model-arin", dir("rpki.arin.example"));
        arin.certify_self(rs("63.0.0.0/8, 208.0.0.0/4"), Moment(0), Span::days(3650));

        let mut sprint = CertAuthority::new("Sprint", "model-sprint", dir("rpki.sprint.example"));
        let rc = arin
            .issue_cert(
                "Sprint",
                sprint.public_key(),
                rs("63.160.0.0/12, 208.0.0.0/11"),
                sprint.sia().clone(),
                Moment(0),
            )
            .expect("ARIN holds Sprint's blocks");
        sprint.install_cert(rc);

        let mut etb = CertAuthority::new("ETB S.A. ESP.", "model-etb", dir("rpki.etb.example"));
        let rc = sprint
            .issue_cert(
                "ETB S.A. ESP.",
                etb.public_key(),
                rs("63.166.0.0/16"),
                etb.sia().clone(),
                Moment(0),
            )
            .expect("inside Sprint's /12");
        etb.install_cert(rc);

        let mut continental = CertAuthority::new(
            "Continental Broadband",
            "model-continental",
            dir("rpki.continental.example"),
        );
        let rc = sprint
            .issue_cert(
                "Continental Broadband",
                continental.public_key(),
                rs("63.174.16.0/20"),
                continental.sia().clone(),
                Moment(0),
            )
            .expect("inside Sprint's /12");
        continental.install_cert(rc);

        // Sprint's two maxlen-24 ROAs.
        sprint
            .issue_roa(asn::SPRINT, vec![RoaPrefix::up_to(p("63.160.64.0/20"), 24)], Moment(0))
            .expect("own space");
        sprint
            .issue_roa(asn::SPRINT, vec![RoaPrefix::up_to(p("208.24.0.0/16"), 24)], Moment(0))
            .expect("own space");
        // ETB's ROA.
        etb.issue_roa(asn::ETB, vec![RoaPrefix::exact(p("63.166.0.0/16"))], Moment(0))
            .expect("own space");
        // Continental's five ROAs.
        continental
            .issue_roa(asn::CONTINENTAL, vec![RoaPrefix::exact(p("63.174.16.0/20"))], Moment(0))
            .expect("own space");
        continental
            .issue_roa(asn::CUSTOMER_A, vec![RoaPrefix::exact(p("63.174.16.0/22"))], Moment(0))
            .expect("own space");
        continental
            .issue_roa(asn::CUSTOMER_B, vec![RoaPrefix::exact(p("63.174.20.0/23"))], Moment(0))
            .expect("own space");
        continental
            .issue_roa(asn::CUSTOMER_C, vec![RoaPrefix::exact(p("63.174.22.0/24"))], Moment(0))
            .expect("own space");
        continental
            .issue_roa(asn::CUSTOMER_D, vec![RoaPrefix::exact(p("63.174.25.0/24"))], Moment(0))
            .expect("own space");

        let tal = TrustAnchorLocator::new(
            RepoUri::new("rpki.arin.example", &["ta", "root.cer"]),
            arin.public_key(),
        );

        // AS topology: Sprint at the top; ETB, Continental, and the
        // relying party are its customers; Continental's customers hang
        // below it.
        let mut topology = Topology::new();
        topology.add_provider_customer(asn::SPRINT, asn::ETB);
        topology.add_provider_customer(asn::SPRINT, asn::CONTINENTAL);
        topology.add_provider_customer(asn::SPRINT, asn::RELYING_PARTY);
        for customer in [asn::CUSTOMER_A, asn::CUSTOMER_B, asn::CUSTOMER_C, asn::CUSTOMER_D] {
            topology.add_provider_customer(asn::CONTINENTAL, customer);
        }

        let announcements = vec![
            Announcement { prefix: p("63.160.64.0/20"), origin: asn::SPRINT },
            Announcement { prefix: p("208.24.0.0/16"), origin: asn::SPRINT },
            Announcement { prefix: p("63.166.0.0/16"), origin: asn::ETB },
            Announcement { prefix: p("63.174.16.0/20"), origin: asn::CONTINENTAL },
            Announcement { prefix: p("63.174.16.0/22"), origin: asn::CUSTOMER_A },
            Announcement { prefix: p("63.174.20.0/23"), origin: asn::CUSTOMER_B },
            Announcement { prefix: p("63.174.22.0/24"), origin: asn::CUSTOMER_C },
            Announcement { prefix: p("63.174.25.0/24"), origin: asn::CUSTOMER_D },
        ];

        let mut world = ModelRpki {
            net,
            repos,
            rp_node,
            arin,
            sprint,
            etb,
            continental,
            tal,
            topology,
            announcements,
        };
        world.publish_all(Moment(1));
        world
    }

    /// Republishes every CA's snapshot (and the TA certificate).
    pub fn publish_all(&mut self, now: Moment) {
        let ta_cert = self.arin.cert().expect("TA certified").clone();
        let ta_dir = RepoUri::new("rpki.arin.example", &["ta"]);
        self.repos.by_host_mut("rpki.arin.example").expect("exists").publish_raw(
            &ta_dir,
            "root.cer",
            RpkiObject::Cert(ta_cert).to_bytes(),
        );
        for (host, ca) in [
            ("rpki.arin.example", &mut self.arin),
            ("rpki.sprint.example", &mut self.sprint),
            ("rpki.etb.example", &mut self.etb),
            ("rpki.continental.example", &mut self.continental),
        ] {
            let sia = ca.sia().clone();
            let snap = ca.publication_snapshot(now);
            self.repos.by_host_mut(host).expect("exists").publish_snapshot(&sia, &snap);
        }
    }

    /// Advances `engine` one step over the model's four authorities (in
    /// [arin, sprint, etb, continental] order — the index the schedule
    /// is keyed on) and republishes every touched CA's snapshot through
    /// the ordinary publication log, so RRDP clients see the churn as
    /// deltas. Returns the engine's report.
    pub fn run_churn(&mut self, engine: &mut ChurnEngine, now: Moment) -> ChurnReport {
        let report = engine.step_with(
            [&mut self.arin, &mut self.sprint, &mut self.etb, &mut self.continental],
            now,
        );
        let hosts = [
            "rpki.arin.example",
            "rpki.sprint.example",
            "rpki.etb.example",
            "rpki.continental.example",
        ];
        for &idx in &report.touched {
            let ca = match idx {
                0 => &mut self.arin,
                1 => &mut self.sprint,
                2 => &mut self.etb,
                _ => &mut self.continental,
            };
            let sia = ca.sia().clone();
            let snap = ca.publication_snapshot(now);
            self.repos.by_host_mut(hosts[idx]).expect("exists").publish_snapshot(&sia, &snap);
        }
        report
    }

    /// Poisons `host`'s publication point with one adversarial corpus
    /// case, signed with that host's own CA key and written through
    /// the ordinary publication log (so rsync and RRDP clients see the
    /// same bytes). Returns what was done, or `None` for an unknown
    /// host. Heal with [`publish_all`](ModelRpki::publish_all): a
    /// fresh snapshot overwrites the poison and deletes stray files.
    pub fn poison_host(
        &mut self,
        host: &str,
        kind: rpki_attacks::CorpusKind,
        seed: u64,
        now: Moment,
    ) -> Option<rpki_attacks::CorpusCase> {
        let ca = match host {
            "rpki.arin.example" => &self.arin,
            "rpki.sprint.example" => &self.sprint,
            "rpki.etb.example" => &self.etb,
            "rpki.continental.example" => &self.continental,
            _ => return None,
        };
        // Field-disjoint borrows: the CA is read, the repo mutated.
        let repo = self.repos.by_host_mut(host)?;
        Some(rpki_attacks::poison(repo, ca, kind, seed, now))
    }

    /// Validates over a perfect transport — the `&self` convenience
    /// probe for tests and examples that just want the world's VRPs.
    /// Emits the run through the network's recorder like
    /// [`validate_with`](ModelRpki::validate_with).
    pub fn validate_direct(&self, now: Moment) -> ValidationRun {
        let mut source = DirectSource::new(&self.repos);
        let run = Validator::new(ValidationConfig::at(now))
            .run(&mut source, std::slice::from_ref(&self.tal));
        run.emit(&self.net.recorder(), now.0);
        run
    }

    /// Adds Figure 5 (right)'s new ROA: `(63.160.0.0/12-13, AS1239)` —
    /// the Side Effect 5 trigger — and republishes.
    pub fn add_figure5_right_roa(&mut self, now: Moment) -> Roa {
        let roa = self
            .sprint
            .issue_roa(asn::SPRINT, vec![RoaPrefix::up_to(p("63.160.0.0/12"), 13)], now)
            .expect("own space");
        self.publish_all(now);
        roa
    }

    /// The file name of Continental's covering `/20` ROA (Figure 3's
    /// target).
    pub fn covering_roa_file(&self) -> String {
        self.continental
            .issued_roas()
            .find(|r| r.asn() == asn::CONTINENTAL)
            .expect("covering ROA exists")
            .file_name()
    }

    /// The file name of the `/22` customer ROA (the make-before-break
    /// target).
    pub fn customer_roa_file(&self) -> String {
        self.continental
            .issued_roas()
            .find(|r| r.asn() == asn::CUSTOMER_A)
            .expect("customer ROA exists")
            .file_name()
    }
}

/// Number of CAs in a subtree whose root has `depth` further levels of
/// `branching` children below it.
fn subtree_size(depth: u32, branching: u32) -> usize {
    (0..=depth).map(|i| (branching as usize).pow(i)).sum()
}

/// A `/24` per CA index: CA `i` owns `10.(i >> 8).(i & 255).0/24`, and
/// because CAs are numbered in DFS preorder a subtree's resources are
/// one contiguous index range, covered here by a minimal set of CIDR
/// blocks (greedy aggregation) so certificates stay small even for
/// thousand-CA subtrees.
fn synthetic_resources(start: usize, size: usize) -> ResourceSet {
    let mut prefixes = Vec::new();
    let mut i = start as u32;
    let end = (start + size) as u32;
    while i < end {
        // Largest power-of-two run that is aligned at `i` and fits.
        let align = if i == 0 { 1 << 16 } else { 1 << i.trailing_zeros().min(16) };
        let fit = end - i;
        let run: u32 = align.min(1 << (31 - fit.leading_zeros()));
        let len = 24 - run.trailing_zeros() as u8;
        prefixes.push(Prefix::v4(10, (i >> 8) as u8, (i & 255) as u8, 0, len));
        i += run;
    }
    ResourceSet::from_prefixes(prefixes)
}

/// A regular synthetic CA tree for churn benchmarks: one trust anchor,
/// `branching` children per CA down to `depth` levels, `roas_per_ca`
/// ROAs per CA, all hosted in one repository with one directory per CA.
///
/// Unlike [`ModelRpki`] (the paper's Figure 2, four fixed publication
/// points), this fixture scales the publication-point count and lets
/// [`churn`](SyntheticRpki::churn) dirty a chosen fraction of points
/// between validation runs — the workload the incremental engine's
/// digest cache is designed for.
pub struct SyntheticRpki {
    /// The simulated network.
    pub net: Network,
    /// The single repository holding every CA's directory.
    pub repos: RepoRegistry,
    /// The relying party's network node.
    pub rp_node: NodeId,
    /// All CAs in DFS preorder; index 0 is the trust anchor.
    pub cas: Vec<CertAuthority>,
    /// The relying party's trust anchor locator.
    pub tal: TrustAnchorLocator,
    /// Expected VRP count (one per ROA).
    pub roa_count: usize,
    churn_cursor: usize,
}

impl SyntheticRpki {
    /// Builds and publishes a tree over a network seeded with `seed`.
    ///
    /// The total CA count is `1 + b + … + b^depth` and must stay within
    /// 65536 (one `/24` per CA inside `10.0.0.0/8`), which comfortably
    /// fits the planet-scale bench sweeps (five-thousand-point worlds).
    pub fn build_seeded(
        seed: u64,
        depth: u32,
        branching: u32,
        roas_per_ca: usize,
    ) -> SyntheticRpki {
        let total = subtree_size(depth, branching);
        assert!(total <= 65536, "tree of {total} CAs outgrows 10.0.0.0/8");
        assert!(roas_per_ca > 0 && roas_per_ca <= 200, "roas_per_ca out of range");

        let mut net = Network::new(seed);
        let rp_node = net.add_node("relying-party");
        let mut repos = RepoRegistry::new();
        repos.create(&mut net, "rpki.bench.example");

        let mut root = CertAuthority::new(
            "ca0",
            "bench-ca0",
            RepoUri::new("rpki.bench.example", &["repo", "ca0"]),
        );
        // The root holds the whole /8 (not just the tree's index range)
        // so benches can mint extra out-of-tree ROAs at the root without
        // caring about the tree's exact size.
        root.certify_self(ResourceSet::from_prefix_strs("10.0.0.0/8"), Moment(0), Span::days(3650));
        let mut cas = vec![root];
        Self::grow(&mut cas, 0, depth, branching);
        debug_assert_eq!(cas.len(), total);

        for (idx, ca) in cas.iter_mut().enumerate() {
            for j in 0..roas_per_ca {
                ca.issue_roa(
                    Asn(65000 + idx as u32),
                    vec![RoaPrefix::exact(p(&format!("10.{}.{}.{j}/32", idx >> 8, idx & 255)))],
                    Moment(0),
                )
                .expect("ROA inside the CA's own /24");
            }
        }

        let tal = TrustAnchorLocator::new(
            RepoUri::new("rpki.bench.example", &["ta", "root.cer"]),
            cas[0].public_key(),
        );
        let mut world = SyntheticRpki {
            net,
            repos,
            rp_node,
            cas,
            tal,
            roa_count: total * roas_per_ca,
            churn_cursor: 0,
        };
        world.publish_all(Moment(1));
        world
    }

    fn grow(cas: &mut Vec<CertAuthority>, parent: usize, levels_left: u32, branching: u32) {
        if levels_left == 0 {
            return;
        }
        for _ in 0..branching {
            let idx = cas.len();
            let size = subtree_size(levels_left - 1, branching);
            let mut ca = CertAuthority::new(
                &format!("ca{idx}"),
                &format!("bench-ca{idx}"),
                RepoUri::new("rpki.bench.example", &["repo", &format!("ca{idx}")]),
            );
            let rc = cas[parent]
                .issue_cert(
                    &format!("ca{idx}"),
                    ca.public_key(),
                    synthetic_resources(idx, size),
                    ca.sia().clone(),
                    Moment(0),
                )
                .expect("subtree range sits inside the parent's range");
            ca.install_cert(rc);
            cas.push(ca);
            Self::grow(cas, idx, levels_left - 1, branching);
        }
    }

    /// Number of publication points (one directory per CA).
    pub fn publication_points(&self) -> usize {
        self.cas.len()
    }

    /// Republishes the TA certificate and every CA's snapshot.
    pub fn publish_all(&mut self, now: Moment) {
        let ta_cert = self.cas[0].cert().expect("TA certified").clone();
        let ta_dir = RepoUri::new("rpki.bench.example", &["ta"]);
        let repo = self.repos.by_host_mut("rpki.bench.example").expect("exists");
        repo.publish_raw(&ta_dir, "root.cer", RpkiObject::Cert(ta_cert).to_bytes());
        for ca in &mut self.cas {
            let sia = ca.sia().clone();
            let snap = ca.publication_snapshot(now);
            self.repos
                .by_host_mut("rpki.bench.example")
                .expect("exists")
                .publish_snapshot(&sia, &snap);
        }
    }

    /// Dirties `pct` percent of publication points (at least one when
    /// `pct > 0`): each selected CA renews one ROA and republishes its
    /// directory — fresh manifest, CRL, and ROA bytes — while every
    /// other directory keeps its exact on-disk content. Selection
    /// rotates deterministically so repeated rounds spread the churn.
    /// Returns the number of directories touched.
    pub fn churn(&mut self, pct: usize, now: Moment) -> usize {
        if pct == 0 {
            return 0;
        }
        let total = self.cas.len();
        let touched = ((total * pct).div_ceil(100)).clamp(1, total);
        for _ in 0..touched {
            let idx = self.churn_cursor % total;
            self.churn_cursor += 1;
            let ca = &mut self.cas[idx];
            let file = ca.issued_roas().next().expect("every CA has ROAs").file_name();
            ca.renew_roa(&file, now).expect("renewable");
            let sia = ca.sia().clone();
            let snap = ca.publication_snapshot(now);
            self.repos
                .by_host_mut("rpki.bench.example")
                .expect("exists")
                .publish_snapshot(&sia, &snap);
        }
        touched
    }

    /// Advances `engine` one step over every CA (vector order) and
    /// republishes the touched snapshots — the realistic counterpart to
    /// [`churn`](Self::churn)'s fixed-rate rotation. Recomputes
    /// `roa_count` since adds/withdraws change the population. Returns
    /// the engine's report.
    pub fn run_churn(&mut self, engine: &mut ChurnEngine, now: Moment) -> ChurnReport {
        let report = engine.step_with(self.cas.iter_mut(), now);
        for &idx in &report.touched {
            let ca = &mut self.cas[idx];
            let sia = ca.sia().clone();
            let snap = ca.publication_snapshot(now);
            self.repos
                .by_host_mut("rpki.bench.example")
                .expect("exists")
                .publish_snapshot(&sia, &snap);
        }
        if report.added > 0 || report.withdrawn > 0 {
            self.roa_count = self.cas.iter().map(|ca| ca.issued_roas().count()).sum();
        }
        report
    }

    /// One cold full walk over the simulated network.
    pub fn validate_cold(&mut self, now: Moment) -> ValidationRun {
        let mut source = NetworkSource::new(&mut self.net, &self.repos, self.rp_node);
        Validator::new(ValidationConfig::at(now)).run(&mut source, std::slice::from_ref(&self.tal))
    }

    /// One incremental revalidation over the simulated network against
    /// the persistent `state`.
    pub fn validate_incremental(
        &mut self,
        now: Moment,
        state: &mut ValidationState,
    ) -> ValidationRun {
        let mut source = NetworkSource::new(&mut self.net, &self.repos, self.rp_node);
        Validator::new(ValidationConfig::at(now)).run_incremental(
            &mut source,
            std::slice::from_ref(&self.tal),
            state,
        )
    }

    /// One cold sharded walk over the simulated network. Byte-identical
    /// output to [`validate_cold`](Self::validate_cold) for any plan.
    pub fn validate_cold_sharded(
        &mut self,
        now: Moment,
        plan: ShardPlan,
    ) -> (ValidationRun, ShardStats) {
        let mut source = NetworkSource::new(&mut self.net, &self.repos, self.rp_node);
        Validator::new(ValidationConfig::at(now)).run_sharded(
            &mut source,
            std::slice::from_ref(&self.tal),
            plan,
        )
    }

    /// One incremental sharded revalidation against the persistent
    /// `state`; composes the per-subtree digest cache with the sharded
    /// walk.
    pub fn validate_incremental_sharded(
        &mut self,
        now: Moment,
        plan: ShardPlan,
        state: &mut ValidationState,
    ) -> (ValidationRun, ShardStats) {
        let mut source = NetworkSource::new(&mut self.net, &self.repos, self.rp_node);
        Validator::new(ValidationConfig::at(now)).run_sharded_incremental(
            &mut source,
            std::slice::from_ref(&self.tal),
            plan,
            state,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::ValidationOptions;
    use ipres::Asn;
    use rpki_repo::SyncPolicy;
    use rpki_rp::{ResilientState, Route, RouteValidity};

    #[test]
    fn model_validates_to_seven_plus_one_vrps() {
        let w = ModelRpki::build();
        let run = w.validate_direct(Moment(2));
        // 2 (Sprint) + 1 (ETB) + 5 (Continental) = 8 VRPs; the paper's
        // excerpt shows 7 ROAs, and our reconstruction carries the full
        // five-ROA Continental set the prose implies.
        assert_eq!(run.vrps.len(), 8);
        assert_eq!(run.cas.len(), 4);
    }

    #[test]
    fn figure5_left_states_hold() {
        let w = ModelRpki::build();
        let cache = w.validate_direct(Moment(2)).vrp_cache();
        // The /12 is unknown (no covering ROA).
        assert_eq!(
            cache.classify(Route::new("63.160.0.0/12".parse().unwrap(), asn::SPRINT)),
            RouteValidity::Unknown
        );
        // 63.174.17.0/24 is invalid (covered by the /20 ROA).
        assert_eq!(
            cache.classify(Route::new("63.174.17.0/24".parse().unwrap(), asn::CONTINENTAL)),
            RouteValidity::Invalid
        );
        // The legitimate announcements are valid.
        for ann in &w.announcements {
            assert_eq!(
                cache.classify(Route::new(ann.prefix, ann.origin)),
                RouteValidity::Valid,
                "{} ← {}",
                ann.prefix,
                ann.origin
            );
        }
    }

    #[test]
    fn figure5_right_flips_unknowns_to_invalid() {
        let mut w = ModelRpki::build();
        let before = w.validate_direct(Moment(2)).vrp_cache();
        let probe = Route::new("63.161.0.0/16".parse().unwrap(), Asn(999));
        assert_eq!(before.classify(probe), RouteValidity::Unknown);
        w.add_figure5_right_roa(Moment(3));
        let after = w.validate_direct(Moment(4)).vrp_cache();
        assert_eq!(after.classify(probe), RouteValidity::Invalid);
    }

    #[test]
    fn seeded_builds_differ_only_in_network_randomness() {
        // Same world content regardless of seed: the seed feeds the
        // network's fault dice, not the RPKI.
        let a = ModelRpki::build_seeded(1);
        let b = ModelRpki::build_seeded(2);
        assert_eq!(a.validate_direct(Moment(2)).vrps, b.validate_direct(Moment(2)).vrps);
    }

    #[test]
    fn resilient_validation_matches_direct_when_healthy() {
        let mut w = ModelRpki::build_seeded(7);
        let direct = w.validate_direct(Moment(2));
        let mut state = ResilientState::default();
        let resilient = w.validate_with(
            ValidationOptions::at(Moment(2)).retry(SyncPolicy::default()).stale_cache(&mut state),
        );
        assert_eq!(direct.vrps, resilient.vrps);
        // Every visited directory left a snapshot behind.
        assert!(state.snapshot_count() >= 4, "snapshots: {}", state.snapshot_count());
    }

    #[test]
    fn network_validation_matches_direct() {
        let mut w = ModelRpki::build();
        let direct = w.validate_direct(Moment(2));
        let networked = w.validate_with(ValidationOptions::at(Moment(2)));
        assert_eq!(direct.vrps, networked.vrps);
    }

    #[test]
    fn continental_repo_is_inside_its_own_roa() {
        let w = ModelRpki::build();
        let repo = w.repos.by_host("rpki.continental.example").unwrap();
        let (prefix, origin) = repo.hosted_at().unwrap();
        assert_eq!(origin, asn::CONTINENTAL);
        // The repo prefix sits inside the /20 the covering ROA names —
        // the circularity precondition of Section 6.
        assert!("63.174.16.0/20".parse::<Prefix>().unwrap().covers(prefix));
    }

    #[test]
    fn synthetic_tree_validates_and_reuses_under_partial_churn() {
        // branching 3, depth 2 → 1 + 3 + 9 = 13 publication points.
        let mut w = SyntheticRpki::build_seeded(11, 2, 3, 2);
        assert_eq!(w.publication_points(), 13);
        let mut state = ValidationState::full();
        let first = w.validate_incremental(Moment(2), &mut state);
        assert_eq!(first.vrps.len(), w.roa_count);
        assert_eq!(first.cas.len(), 13);
        // Dirty ~10% (two points after ceil): only those re-walk.
        let touched = w.churn(10, Moment(60));
        assert_eq!(touched, 2);
        let second = w.validate_incremental(Moment(62), &mut state);
        assert_eq!(second.vrps.len(), w.roa_count);
        assert_eq!(state.stats().subtrees_rewalked as usize, touched);
        assert_eq!(state.stats().subtrees_reused as usize, 13 - touched);
        // Renewals keep VRP content identical, so the delta is empty.
        assert!(state.last_delta().is_empty());
        // And the incremental output matches a cold walk of the same world.
        assert_eq!(second.vrps, w.validate_cold(Moment(62)).vrps);
    }

    #[test]
    fn engine_churn_keeps_the_model_world_valid() {
        use rpki_ca::ChurnConfig;
        let mut w = ModelRpki::build();
        let baseline = w.validate_direct(Moment(2)).vrps;
        let mut engine = ChurnEngine::new(17, ChurnConfig::renew_only(500));
        let mut touched = 0usize;
        for step in 0..8u64 {
            let report = w.run_churn(&mut engine, Moment(2 + step));
            touched += report.touched.len();
        }
        assert!(touched > 0, "per-mille 500 over 4 CAs × 8 steps must touch someone");
        // Renew-only churn re-signs objects without changing the VRP
        // population the model's assertions are built on.
        assert_eq!(w.validate_direct(Moment(10)).vrps, baseline);
    }

    #[test]
    fn engine_churn_tracks_the_synthetic_population() {
        use rpki_ca::ChurnConfig;
        let mut w = SyntheticRpki::build_seeded(11, 2, 3, 2);
        let mut engine = ChurnEngine::new(23, ChurnConfig::steady());
        for step in 0..12u64 {
            w.run_churn(&mut engine, Moment(2 + step * 60));
        }
        // `roa_count` follows adds/withdraws, so the validated VRP set
        // always matches it.
        let run = w.validate_cold(Moment(2 + 12 * 60));
        assert_eq!(run.vrps.len(), w.roa_count);
    }

    #[test]
    fn topology_routes_all_announcements() {
        use bgp_sim::{propagate, RpkiPolicy};
        let w = ModelRpki::build();
        let cache = w.validate_direct(Moment(2)).vrp_cache();
        let state = propagate(&w.topology, &w.announcements, RpkiPolicy::DropInvalid, &cache)
            .expect("model topology converges");
        for ann in &w.announcements {
            // The data plane delivers to whoever announced the longest
            // matching prefix for the probe address (e.g. probing the
            // first address of Continental's /20 lands at the customer
            // /22 — correct LPM behaviour, not a failure).
            let probe = ann.prefix.addr();
            let expected = w
                .announcements
                .iter()
                .filter(|a| a.prefix.contains(probe))
                .max_by_key(|a| a.prefix.len())
                .expect("the announcement itself matches")
                .origin;
            let out = state.forward(asn::RELYING_PARTY, probe);
            assert!(out.delivered_to(expected), "{} → {:?}", ann.prefix, out);
        }
    }
}
