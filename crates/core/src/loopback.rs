//! Section 6: closing the loop — BGP ⇒ the RPKI.
//!
//! RPKI objects travel over rsync over TCP/IP, whose routes the RPKI
//! itself validates (Figure 1). [`LoopbackWorld`] wires that circle
//! together explicitly:
//!
//! 1. validate with the current cache contents;
//! 2. propagate BGP under the relying party's policy;
//! 3. a repository is *fetchable* only if the relying party's traffic
//!    to the repository's address actually reaches the repository's AS;
//! 4. re-sync from the fetchable repositories only; repeat to a fixed
//!    point.
//!
//! Side Effect 7 falls out: corrupt one fetch of the ROA that covers a
//! repository's own address, and the fixed point settles in a state
//! where the relying party can never fetch the repair — even after the
//! fault clears — because the route to the repository stays invalid
//! (under drop-invalid) without the very ROA stored there.

use std::collections::BTreeSet;

use bgp_sim::{propagate_with_stats, Announcement, ConvergenceStats, RpkiPolicy, Topology};
use ipres::Asn;
use netsim::{Network, NodeId};
use rpki_objects::{Moment, TrustAnchorLocator};
use rpki_repo::{RepoRegistry, SyncPolicy};
use rpki_rp::{
    NetworkSource, ResilientSource, ResilientState, ValidationConfig, ValidationRun, Validator, Vrp,
};
use serde::Serialize;

/// The converged outcome of one loop evaluation.
#[derive(Debug, Clone, Serialize)]
pub struct LoopbackOutcome {
    /// Iterations until the fixed point (≥ 1).
    pub iterations: usize,
    /// Hosts the relying party could fetch from in the final state.
    pub reachable_repos: Vec<String>,
    /// Hosts it could not.
    pub unreachable_repos: Vec<String>,
    /// The final validated VRPs.
    pub vrps: Vec<Vrp>,
    /// Total BGP propagation work across all loop iterations.
    pub propagation: ConvergenceStats,
}

impl LoopbackOutcome {
    /// Whether `host` ended up fetchable.
    pub fn can_fetch(&self, host: &str) -> bool {
        self.reachable_repos.iter().any(|h| h == host)
    }
}

/// A world whose transport is gated by its own route validity.
pub struct LoopbackWorld<'a> {
    /// The simulated network.
    pub net: &'a mut Network,
    /// The repositories (some of which declare `hosted_at`).
    pub repos: &'a RepoRegistry,
    /// The relying party's node.
    pub rp_node: NodeId,
    /// The relying party's AS in the topology.
    pub rp_asn: Asn,
    /// The trust anchors.
    pub tals: &'a [TrustAnchorLocator],
    /// The AS topology.
    pub topology: &'a Topology,
    /// Everyone's BGP announcements.
    pub announcements: &'a [Announcement],
    /// The relying party's local policy.
    pub policy: RpkiPolicy,
}

impl LoopbackWorld<'_> {
    /// Hosts fetchable under a given VRP cache: those without declared
    /// addresses are always fetchable (out-of-band hosting); declared
    /// ones need the relying party's traffic to their address to reach
    /// their AS.
    fn fetchable_hosts(&self, vrps: &[Vrp], work: &mut ConvergenceStats) -> BTreeSet<String> {
        let cache = vrps.iter().copied().collect();
        let (state, stats) =
            propagate_with_stats(self.topology, self.announcements, self.policy, &cache)
                .expect("loopback topology converges");
        work.absorb(stats);
        self.repos
            .iter()
            .filter(|repo| match repo.hosted_at() {
                None => true,
                Some((prefix, origin)) => {
                    state.forward(self.rp_asn, prefix.addr()).delivered_to(origin)
                }
            })
            .map(|repo| repo.host().to_owned())
            .collect()
    }

    /// Runs the loop from an initial cache state to its fixed point.
    ///
    /// `initial_vrps` seeds the route validity used for the *first*
    /// sync round (the relying party's prior cache). The fixed point is
    /// reached when the set of fetchable hosts stops changing.
    pub fn run(&mut self, initial_vrps: &[Vrp], now: Moment) -> LoopbackOutcome {
        self.run_inner(initial_vrps, now, None)
    }

    /// Runs the loop with the resilient fetch pipeline in place of bare
    /// syncs: each directory retries under `policy`, and `state`
    /// supplies last-good snapshots when the gated transport fails.
    ///
    /// This is the Side Effect 7 defense experiment: a relying party
    /// whose cache bridges the transient fault never hands BGP the
    /// degraded VRP set, so the circular trap cannot latch.
    pub fn run_resilient(
        &mut self,
        initial_vrps: &[Vrp],
        now: Moment,
        policy: SyncPolicy,
        state: &mut ResilientState,
    ) -> LoopbackOutcome {
        self.run_inner(initial_vrps, now, Some((policy, state)))
    }

    fn run_inner(
        &mut self,
        initial_vrps: &[Vrp],
        now: Moment,
        mut resilience: Option<(SyncPolicy, &mut ResilientState)>,
    ) -> LoopbackOutcome {
        let mut vrps: Vec<Vrp> = initial_vrps.to_vec();
        let mut propagation = ConvergenceStats::default();
        let mut fetchable = self.fetchable_hosts(&vrps, &mut propagation);
        let mut iterations = 0;
        loop {
            iterations += 1;
            // Snapshot fallback can add one extra transition (stale
            // data un-gates a host whose fresh fetch then changes the
            // VRPs), hence the +2.
            assert!(iterations <= 2 + self.repos.iter().count(), "loopback failed to converge");

            // Gate the transport on current fetchability.
            let gate: BTreeSet<NodeId> = self
                .repos
                .iter()
                .filter(|r| fetchable.contains(r.host()))
                .map(|r| r.node())
                .collect();
            let rp = self.rp_node;
            self.net.set_reachability(Box::new(move |from, to| {
                // Only constrain the RP↔repo paths; and only repo-bound
                // requests (responses follow the same gate since both
                // endpoints are checked symmetrically).
                if from == rp {
                    gate.contains(&to)
                } else if to == rp {
                    gate.contains(&from)
                } else {
                    true
                }
            }));

            let run: ValidationRun = match resilience.as_mut() {
                None => {
                    let mut source = NetworkSource::new(self.net, self.repos, self.rp_node);
                    Validator::new(ValidationConfig::at(now)).run(&mut source, self.tals)
                }
                Some((policy, state)) => {
                    let inner =
                        NetworkSource::with_policy(self.net, self.repos, self.rp_node, *policy);
                    let mut source = ResilientSource::new(inner, state);
                    Validator::new(ValidationConfig::at(now)).run(&mut source, self.tals)
                }
            };
            let new_vrps = run.vrps;
            let new_fetchable = self.fetchable_hosts(&new_vrps, &mut propagation);
            let settled = new_fetchable == fetchable && new_vrps == vrps;
            vrps = new_vrps;
            fetchable = new_fetchable;
            if settled {
                break;
            }
        }
        self.net.clear_reachability();

        let all_hosts: BTreeSet<String> = self.repos.iter().map(|r| r.host().to_owned()).collect();
        LoopbackOutcome {
            iterations,
            reachable_repos: fetchable.iter().cloned().collect(),
            unreachable_repos: all_hosts.difference(&fetchable).cloned().collect(),
            vrps,
            propagation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{asn, ModelRpki};

    /// Side Effect 7, end to end. Premises per Section 6: route
    /// validity as in Figure 5 (right), Continental hosts its own
    /// repository at 63.174.23.0 / AS 17054, relying party drops
    /// invalid routes.
    #[test]
    fn transient_fault_becomes_persistent() {
        let mut w = ModelRpki::build();
        w.add_figure5_right_roa(Moment(2));

        // Healthy start: full cache.
        let healthy = w.validate_direct(Moment(3));
        let full_vrps = healthy.vrps.clone();

        let ModelRpki { net, repos, rp_node, tal, topology, announcements, .. } = &mut w;
        let tals = std::slice::from_ref(&*tal);
        let mut world = LoopbackWorld {
            net,
            repos,
            rp_node: *rp_node,
            rp_asn: asn::RELYING_PARTY,
            tals,
            topology,
            announcements,
            policy: RpkiPolicy::DropInvalid,
        };

        // With the full cache, everything is fetchable and stays so.
        let outcome = world.run(&full_vrps, Moment(3));
        assert!(outcome.can_fetch("rpki.continental.example"), "{outcome:?}");
        assert_eq!(outcome.vrps, full_vrps);

        // The transient fault: the relying party's cache lost the
        // covering /20 ROA (e.g. one corrupted fetch — Side Effect 6).
        let degraded: Vec<Vrp> =
            full_vrps.iter().copied().filter(|v| v.asn != asn::CONTINENTAL).collect();

        // Even though the repository is healthy again and serves the
        // ROA, the fixed point never recovers it: the route to the
        // repository is invalid without the ROA that is stored there.
        let outcome = world.run(&degraded, Moment(4));
        assert!(!outcome.can_fetch("rpki.continental.example"), "{outcome:?}");
        assert!(!outcome.vrps.iter().any(|v| v.asn == asn::CONTINENTAL));
        // Everyone else is unaffected.
        assert!(outcome.can_fetch("rpki.sprint.example"));
        assert!(outcome.can_fetch("rpki.etb.example"));
    }

    /// The Side Effect 7 trap with the resilient pipeline armed: the
    /// relying party's last-good snapshot bridges the gated transport,
    /// so the degraded cache never reaches BGP and the fixed point
    /// recovers even under drop-invalid. The bare loop over the same
    /// degraded cache stays trapped — the contrast is the defense.
    #[test]
    fn transient_fault_recovers_with_resilient_source() {
        use rpki_rp::{ResilienceConfig, ResilientState};

        let mut w = ModelRpki::build();
        w.add_figure5_right_roa(Moment(2));
        let full_vrps = w.validate_direct(Moment(3)).vrps;

        // Warm the relying party's snapshot cache while the world is
        // healthy (any prior successful validation run does this).
        let policy = rpki_repo::SyncPolicy::default();
        let mut state = ResilientState::new(ResilienceConfig::default());
        w.validate_with(
            crate::ValidationOptions::at(Moment(3)).retry(policy).stale_cache(&mut state),
        );

        let degraded: Vec<Vrp> =
            full_vrps.iter().copied().filter(|v| v.asn != asn::CONTINENTAL).collect();

        let ModelRpki { net, repos, rp_node, tal, topology, announcements, .. } = &mut w;
        let tals = std::slice::from_ref(&*tal);
        let mut world = LoopbackWorld {
            net,
            repos,
            rp_node: *rp_node,
            rp_asn: asn::RELYING_PARTY,
            tals,
            topology,
            announcements,
            policy: RpkiPolicy::DropInvalid,
        };

        let outcome = world.run_resilient(&degraded, Moment(4), policy, &mut state);
        assert!(outcome.can_fetch("rpki.continental.example"), "{outcome:?}");
        assert_eq!(outcome.vrps, full_vrps);

        // Control: the bare loop over the same degraded cache is still
        // the persistent trap of `transient_fault_becomes_persistent`.
        let outcome = world.run(&degraded, Moment(4));
        assert!(!outcome.can_fetch("rpki.continental.example"), "{outcome:?}");
    }

    /// The same fault under depref-invalid self-heals: the invalid
    /// route is still usable, the ROA is re-fetched, validity recovers.
    #[test]
    fn depref_policy_recovers() {
        let mut w = ModelRpki::build();
        w.add_figure5_right_roa(Moment(2));
        let healthy = w.validate_direct(Moment(3));
        let full_vrps = healthy.vrps.clone();
        let degraded: Vec<Vrp> =
            full_vrps.iter().copied().filter(|v| v.asn != asn::CONTINENTAL).collect();

        let ModelRpki { net, repos, rp_node, tal, topology, announcements, .. } = &mut w;
        let tals = std::slice::from_ref(&*tal);
        let mut world = LoopbackWorld {
            net,
            repos,
            rp_node: *rp_node,
            rp_asn: asn::RELYING_PARTY,
            tals,
            topology,
            announcements,
            policy: RpkiPolicy::DeprefInvalid,
        };
        let outcome = world.run(&degraded, Moment(4));
        assert!(outcome.can_fetch("rpki.continental.example"), "{outcome:?}");
        assert_eq!(outcome.vrps, full_vrps);
    }

    /// Without the Figure 5 (right) covering ROA, the missing /20 ROA
    /// leaves the repo route *unknown* (not invalid), so even
    /// drop-invalid recovers — condition (b) of the paper's circularity
    /// recipe really is necessary.
    #[test]
    fn no_covering_roa_no_trap() {
        let mut w = ModelRpki::build();
        let healthy = w.validate_direct(Moment(3));
        let full_vrps = healthy.vrps.clone();
        let degraded: Vec<Vrp> =
            full_vrps.iter().copied().filter(|v| v.asn != asn::CONTINENTAL).collect();

        let ModelRpki { net, repos, rp_node, tal, topology, announcements, .. } = &mut w;
        let tals = std::slice::from_ref(&*tal);
        let mut world = LoopbackWorld {
            net,
            repos,
            rp_node: *rp_node,
            rp_asn: asn::RELYING_PARTY,
            tals,
            topology,
            announcements,
            policy: RpkiPolicy::DropInvalid,
        };
        let outcome = world.run(&degraded, Moment(4));
        assert!(outcome.can_fetch("rpki.continental.example"), "{outcome:?}");
        assert_eq!(outcome.vrps, full_vrps);
    }
}
