//! Figure 5: route-validity grids.
//!
//! The figure classifies routes for `63.160.0.0/12` *and all its
//! subprefixes* against the model's ROAs, per candidate origin. The
//! grid generator enumerates every subprefix of a root down to a
//! maximum length, classifies each for each origin of interest, and
//! [`collapse_bands`] merges adjacent same-state prefixes so the output
//! reads like the paper's figure instead of thousands of rows.

use ipres::{Asn, Prefix};
use rpki_rp::{Route, RouteValidity, VrpCache};
use serde::Serialize;

/// One grid entry: a prefix and its validity per origin.
#[derive(Debug, Clone, Serialize)]
pub struct GridRow {
    /// The route prefix.
    pub prefix: Prefix,
    /// `(origin, state)` in the order origins were given.
    pub states: Vec<(Asn, RouteValidity)>,
}

/// Classifies every subprefix of `root` with length `root.len()..=max_len`
/// for each origin.
///
/// # Panics
///
/// Panics if `max_len` expands more than 2^24 subprefixes (see
/// [`Prefix::subprefixes`]).
pub fn validity_grid(cache: &VrpCache, root: Prefix, max_len: u8, origins: &[Asn]) -> Vec<GridRow> {
    let mut rows = Vec::new();
    for len in root.len()..=max_len {
        for prefix in root.subprefixes(len) {
            let states =
                origins.iter().map(|&o| (o, cache.classify(Route::new(prefix, o)))).collect();
            rows.push(GridRow { prefix, states });
        }
    }
    rows
}

/// A maximal run of same-length, address-consecutive prefixes sharing
/// identical per-origin states.
#[derive(Debug, Clone, Serialize)]
pub struct Band {
    /// First prefix of the band.
    pub first: Prefix,
    /// Last prefix of the band.
    pub last: Prefix,
    /// Number of prefixes in the band.
    pub count: usize,
    /// The shared `(origin, state)` vector.
    pub states: Vec<(Asn, RouteValidity)>,
}

/// Collapses grid rows into bands, preserving order. Rows must come
/// from [`validity_grid`] (grouped by length, address-ascending).
pub fn collapse_bands(rows: &[GridRow]) -> Vec<Band> {
    let mut bands: Vec<Band> = Vec::new();
    for row in rows {
        let extend = matches!(bands.last(), Some(b)
            if b.last.len() == row.prefix.len()
                && b.states == row.states
                && b.last.range().hi().succ().map(|a| a == row.prefix.addr()).unwrap_or(false));
        if extend {
            let b = bands.last_mut().expect("nonempty");
            b.last = row.prefix;
            b.count += 1;
        } else {
            bands.push(Band {
                first: row.prefix,
                last: row.prefix,
                count: 1,
                states: row.states.clone(),
            });
        }
    }
    bands
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpki_rp::Vrp;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn cache() -> VrpCache {
        [Vrp::new(p("10.0.0.0/10"), 12, Asn(1)), Vrp::new(p("10.64.0.0/12"), 12, Asn(2))]
            .into_iter()
            .collect()
    }

    #[test]
    fn grid_enumerates_lengths_and_origins() {
        let rows = validity_grid(&cache(), p("10.0.0.0/8"), 10, &[Asn(1), Asn(2)]);
        // 1 (/8) + 2 (/9) + 4 (/10) rows.
        assert_eq!(rows.len(), 7);
        let r8 = &rows[0];
        assert_eq!(r8.prefix, p("10.0.0.0/8"));
        // The /8 is not covered by anything → unknown for both.
        assert!(r8.states.iter().all(|(_, s)| *s == RouteValidity::Unknown));
        // 10.0.0.0/10 matches VRP 1 exactly.
        let r10 = rows.iter().find(|r| r.prefix == p("10.0.0.0/10")).unwrap();
        assert_eq!(r10.states[0], (Asn(1), RouteValidity::Valid));
        assert_eq!(r10.states[1], (Asn(2), RouteValidity::Invalid));
    }

    #[test]
    fn bands_collapse_consecutive_same_state() {
        let rows = validity_grid(&cache(), p("10.0.0.0/8"), 12, &[Asn(1)]);
        let bands = collapse_bands(&rows);
        // All rows are represented exactly once.
        let total: usize = bands.iter().map(|b| b.count).sum();
        assert_eq!(total, rows.len());
        // The sixteen /12s form three bands: valid inside 10.0/10
        // (maxlen 12 ROA for AS1), invalid inside 10.64/12 (covered by
        // AS2's VRP), unknown above 10.80.0.0.
        let twelve: Vec<&Band> = bands.iter().filter(|b| b.first.len() == 12).collect();
        assert_eq!(twelve.len(), 3, "{twelve:#?}");
        assert_eq!(twelve[0].count, 4);
        assert_eq!(twelve[0].states[0].1, RouteValidity::Valid);
        assert_eq!(twelve[1].count, 1);
        assert_eq!(twelve[1].states[0].1, RouteValidity::Invalid);
        assert_eq!(twelve[2].count, 11);
        assert_eq!(twelve[2].states[0].1, RouteValidity::Unknown);
    }

    #[test]
    fn bands_never_merge_across_lengths() {
        let rows = validity_grid(&VrpCache::new(), p("10.0.0.0/8"), 10, &[Asn(1)]);
        let bands = collapse_bands(&rows);
        // Everything unknown, but three lengths → three bands.
        assert_eq!(bands.len(), 3);
    }

    #[test]
    fn empty_origin_list_is_fine() {
        let rows = validity_grid(&cache(), p("10.0.0.0/8"), 9, &[]);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.states.is_empty()));
        assert_eq!(collapse_bands(&rows).len(), 2); // /8 band + /9 band
    }
}
