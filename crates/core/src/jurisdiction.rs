//! Table 4: cross-jurisdiction certification analysis.
//!
//! Section 3.2's measurement: walk the allocation tree and, for each
//! resource certificate, list the countries of the descendants it
//! covers that fall **outside the jurisdiction of its parent RIR**.
//! Every such row is a whacking capability that crosses a legal border:
//! the RIR (or the RC holder) can whack ROAs belonging to ASes in
//! countries it is not accountable to.

use std::collections::BTreeSet;

use serde::Serialize;
use topogen::{ParentRef, SyntheticInternet, RIRS};

/// One Table 4 row.
#[derive(Debug, Clone, Serialize)]
pub struct JurisdictionRow {
    /// RC holder's handle.
    pub holder: String,
    /// The RC's prefix(es), as display strings.
    pub rc: Vec<String>,
    /// The RIR whose hierarchy certifies the RC.
    pub rir: &'static str,
    /// Countries of covered descendants outside that RIR's region,
    /// sorted.
    pub foreign_countries: Vec<String>,
    /// Total descendants covered (foreign or not).
    pub descendants: usize,
}

/// Aggregate results of the Table 4 analysis.
#[derive(Debug, Clone, Serialize)]
pub struct JurisdictionReport {
    /// Rows with at least one out-of-region country, sorted by foreign
    /// coverage (descending), holders with the widest reach first —
    /// the shape of the paper's table.
    pub rows: Vec<JurisdictionRow>,
    /// Number of RCs examined.
    pub rcs_examined: usize,
    /// Number of RCs covering at least one foreign-country descendant.
    pub rcs_crossing_borders: usize,
}

/// Section 3.2's headline claim, per registry: "RIRs can whack ROAs
/// for ASes in non-member countries, even though they are accountable
/// only to their member countries."
#[derive(Debug, Clone, Serialize)]
pub struct RirReach {
    /// The registry.
    pub rir: &'static str,
    /// Foreign countries whose ROAs this RIR could whack through its
    /// certification hierarchy, sorted.
    pub whackable_foreign_countries: Vec<String>,
    /// Organisations under this RIR located in those countries.
    pub foreign_orgs: usize,
}

/// Computes each RIR's whacking reach into non-member countries: every
/// organisation certified (transitively) under the RIR whose country is
/// outside the RIR's region.
pub fn rir_reach(world: &SyntheticInternet) -> Vec<RirReach> {
    let mut out: Vec<RirReach> = RIRS
        .iter()
        .map(|r| RirReach { rir: r.name, whackable_foreign_countries: Vec::new(), foreign_orgs: 0 })
        .collect();
    let mut per_rir: Vec<BTreeSet<String>> = vec![BTreeSet::new(); RIRS.len()];
    for org in &world.orgs {
        // Walk to the certifying RIR.
        let mut at = org;
        let rir = loop {
            match at.parent {
                ParentRef::Rir(r) => break r,
                ParentRef::Org(p) => at = &world.orgs[p],
            }
        };
        let region: BTreeSet<&str> = RIRS[rir].countries.iter().copied().collect();
        if !region.contains(org.country.as_str()) {
            per_rir[rir].insert(org.country.clone());
            out[rir].foreign_orgs += 1;
        }
    }
    for (i, set) in per_rir.into_iter().enumerate() {
        out[i].whackable_foreign_countries = set.into_iter().collect();
    }
    out
}

/// Runs the Table 4 analysis over a synthetic Internet.
pub fn jurisdiction_report(world: &SyntheticInternet) -> JurisdictionReport {
    // descendants[i] = indices of orgs allocated (transitively) from org i.
    let n = world.orgs.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, org) in world.orgs.iter().enumerate() {
        if let ParentRef::Org(parent) = org.parent {
            children[parent].push(i);
        }
    }

    fn collect(children: &[Vec<usize>], at: usize, out: &mut Vec<usize>) {
        for &c in &children[at] {
            out.push(c);
            collect(children, c, out);
        }
    }

    let mut rows = Vec::new();
    let mut rcs_examined = 0;
    let mut rcs_crossing = 0;
    for (i, org) in world.orgs.iter().enumerate() {
        rcs_examined += 1;
        let mut descendants = Vec::new();
        collect(&children, i, &mut descendants);
        if descendants.is_empty() {
            continue;
        }
        // Which RIR's hierarchy certifies this RC? Walk to the root.
        let mut at = i;
        let rir = loop {
            match world.orgs[at].parent {
                ParentRef::Rir(r) => break r,
                ParentRef::Org(p) => at = p,
            }
        };
        let region: BTreeSet<&str> = RIRS[rir].countries.iter().copied().collect();
        let foreign: BTreeSet<String> = descendants
            .iter()
            .map(|&d| world.orgs[d].country.clone())
            .filter(|c| !region.contains(c.as_str()))
            .collect();
        if foreign.is_empty() {
            continue;
        }
        rcs_crossing += 1;
        rows.push(JurisdictionRow {
            holder: org.handle.clone(),
            rc: org.prefixes.iter().map(|p| p.to_string()).collect(),
            rir: RIRS[rir].name,
            foreign_countries: foreign.into_iter().collect(),
            descendants: descendants.len(),
        });
    }
    rows.sort_by(|a, b| {
        b.foreign_countries.len().cmp(&a.foreign_countries.len()).then(a.holder.cmp(&b.holder))
    });
    JurisdictionReport { rows, rcs_examined, rcs_crossing_borders: rcs_crossing }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::{Config, ANCHOR_ORGS};

    #[test]
    fn anchors_reproduce_table4_rows() {
        let world = SyntheticInternet::generate(Config::small(4));
        let report = jurisdiction_report(&world);
        for spec in &ANCHOR_ORGS {
            let row = report
                .rows
                .iter()
                .find(|r| r.holder == spec.name)
                .unwrap_or_else(|| panic!("{} missing from report", spec.name));
            assert_eq!(row.rc, vec![spec.rc_prefix.parse::<ipres::Prefix>().unwrap().to_string()]);
            // Every planted out-of-region customer country shows up.
            let home_rir = topogen::rir_of_country(spec.home).unwrap();
            let region: BTreeSet<&str> = RIRS[home_rir].countries.iter().copied().collect();
            for c in spec.customer_countries {
                if !region.contains(c) {
                    assert!(
                        row.foreign_countries.iter().any(|fc| fc == c),
                        "{}: missing {}",
                        spec.name,
                        c
                    );
                }
            }
        }
    }

    #[test]
    fn zero_cross_border_without_anchors_is_quiet() {
        let mut cfg = Config::small(8);
        cfg.anchors = false;
        cfg.cross_border = 0.0;
        let world = SyntheticInternet::generate(cfg);
        let report = jurisdiction_report(&world);
        // Stubs inherit their provider's country, and providers are
        // registered in-region, so nothing crosses a border...
        // unless a transit's random country sits outside its assigned
        // RIR region (it cannot: countries are drawn from the region).
        assert_eq!(report.rcs_crossing_borders, 0, "{:#?}", report.rows);
    }

    #[test]
    fn more_cross_border_more_rows() {
        let mut low_cfg = Config::small(10);
        low_cfg.anchors = false;
        low_cfg.cross_border = 0.05;
        low_cfg.stubs = 120;
        let low = jurisdiction_report(&SyntheticInternet::generate(low_cfg));
        let mut high_cfg = low_cfg;
        high_cfg.cross_border = 0.8;
        let high = jurisdiction_report(&SyntheticInternet::generate(high_cfg));
        assert!(
            high.rcs_crossing_borders > low.rcs_crossing_borders,
            "low {} high {}",
            low.rcs_crossing_borders,
            high.rcs_crossing_borders
        );
    }

    #[test]
    fn rir_reach_covers_anchor_customers() {
        let world = SyntheticInternet::generate(Config::small(4));
        let reach = rir_reach(&world);
        // ARIN certifies Level3 → RU customer; reach must include RU.
        let arin = reach.iter().find(|r| r.rir == "ARIN").unwrap();
        assert!(arin.whackable_foreign_countries.iter().any(|c| c == "RU"), "{arin:?}");
        assert!(arin.foreign_orgs > 0);
        // Countries whackable by an RIR are never its own members.
        for r in &reach {
            let region = RIRS.iter().find(|x| x.name == r.rir).unwrap().countries;
            for c in &r.whackable_foreign_countries {
                assert!(!region.contains(&c.as_str()), "{}: {c} is a member", r.rir);
            }
        }
    }

    #[test]
    fn report_counts_are_consistent() {
        let world = SyntheticInternet::generate(Config::small(14));
        let report = jurisdiction_report(&world);
        assert_eq!(report.rcs_examined, world.orgs.len());
        assert_eq!(report.rows.len(), report.rcs_crossing_borders);
        // Sorted by foreign coverage, descending.
        for w in report.rows.windows(2) {
            assert!(w[0].foreign_countries.len() >= w[1].foreign_countries.len());
        }
    }
}
