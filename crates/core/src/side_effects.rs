//! Quantifiers for Side Effects 5 and 6.
//!
//! Both are consequences of RFC 6811's cover/match asymmetry:
//!
//! - **Side Effect 5** — *a new ROA can cause many routes to become
//!   invalid*: issuing a ROA for a large prefix flips every covered,
//!   previously-*unknown* route to *invalid* unless it has a matching
//!   ROA of its own. [`se5_new_roa_impact`] measures the blast radius
//!   of one new VRP over a route set — the deployment-ordering hazard
//!   (citation \[43\] of the paper observed exactly this in the production RPKI).
//! - **Side Effect 6** — *a missing ROA can cause a route to become
//!   invalid*: a route whose ROA vanishes degrades to *invalid* (not
//!   unknown) whenever another ROA covers it. [`se6_missing_roa_impact`]
//!   removes each VRP in turn and tallies the damage class.

use rpki_rp::{Route, RouteValidity, Vrp, VrpCache};
use serde::Serialize;

/// Blast radius of one new VRP (Side Effect 5).
#[derive(Debug, Clone, Serialize)]
pub struct Se5Impact {
    /// The VRP added.
    pub added: Vrp,
    /// Routes that flipped unknown → invalid.
    pub newly_invalid: Vec<Route>,
    /// Routes that flipped unknown → valid (the issuer's own routes).
    pub newly_valid: Vec<Route>,
    /// Routes unaffected.
    pub unchanged: usize,
}

/// Measures what adding `new_vrp` does to `routes` under `vrps`.
pub fn se5_new_roa_impact(vrps: &[Vrp], new_vrp: Vrp, routes: &[Route]) -> Se5Impact {
    let before: VrpCache = vrps.iter().copied().collect();
    let mut after_vec = vrps.to_vec();
    after_vec.push(new_vrp);
    let after: VrpCache = after_vec.into_iter().collect();

    let mut impact = Se5Impact {
        added: new_vrp,
        newly_invalid: Vec::new(),
        newly_valid: Vec::new(),
        unchanged: 0,
    };
    for &route in routes {
        let was = before.classify(route);
        let is = after.classify(route);
        match (was, is) {
            (RouteValidity::Unknown, RouteValidity::Invalid) => impact.newly_invalid.push(route),
            (RouteValidity::Unknown, RouteValidity::Valid) => impact.newly_valid.push(route),
            _ => impact.unchanged += 1,
        }
    }
    impact
}

/// One row of the Side Effect 6 sweep: what a single VRP's
/// disappearance does to the routes it was validating.
#[derive(Debug, Clone, Serialize)]
pub struct Se6Row {
    /// The VRP that went missing.
    pub missing: Vrp,
    /// Routes that flipped valid → invalid (still covered by something
    /// else — the dangerous case).
    pub to_invalid: usize,
    /// Routes that flipped valid → unknown (nothing else covers them —
    /// the "merely unauthenticated" case).
    pub to_unknown: usize,
}

/// Aggregate Side Effect 6 exposure of a VRP universe.
#[derive(Debug, Clone, Serialize)]
pub struct Se6Impact {
    /// Per-VRP rows (only VRPs whose loss changes something).
    pub rows: Vec<Se6Row>,
    /// VRPs whose loss flips at least one route to invalid.
    pub vrps_with_invalid_fallout: usize,
    /// VRPs examined.
    pub vrps_examined: usize,
}

/// Removes each VRP in turn and measures the fallout on `routes`.
pub fn se6_missing_roa_impact(vrps: &[Vrp], routes: &[Route]) -> Se6Impact {
    let full: VrpCache = vrps.iter().copied().collect();
    let mut rows = Vec::new();
    let mut with_invalid = 0;
    for (i, &victim) in vrps.iter().enumerate() {
        let mut reduced: Vec<Vrp> = vrps.to_vec();
        reduced.remove(i);
        let cache: VrpCache = reduced.into_iter().collect();
        let mut to_invalid = 0;
        let mut to_unknown = 0;
        for &route in routes {
            if full.classify(route) != RouteValidity::Valid {
                continue;
            }
            match cache.classify(route) {
                RouteValidity::Invalid => to_invalid += 1,
                RouteValidity::Unknown => to_unknown += 1,
                RouteValidity::Valid => {}
            }
        }
        if to_invalid > 0 {
            with_invalid += 1;
        }
        if to_invalid + to_unknown > 0 {
            rows.push(Se6Row { missing: victim, to_invalid, to_unknown });
        }
    }
    Se6Impact { rows, vrps_with_invalid_fallout: with_invalid, vrps_examined: vrps.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipres::{Asn, Prefix};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn v(s: &str, max: u8, asn: u32) -> Vrp {
        Vrp::new(p(s), max, Asn(asn))
    }

    fn r(s: &str, asn: u32) -> Route {
        Route::new(p(s), Asn(asn))
    }

    #[test]
    fn se5_counts_flips() {
        // Figure 5's move: Sprint adds (63.160.0.0/12-13, AS1239) over
        // a world where 63.161/16 and 63.162/16 are announced without
        // ROAs.
        let vrps = vec![v("63.160.64.0/20", 24, 1239)];
        let routes = vec![
            r("63.161.0.0/16", 4001),
            r("63.162.0.0/16", 4002),
            r("63.160.0.0/12", 1239),
            r("63.160.0.0/13", 1239),
            r("63.160.64.0/20", 1239), // already valid: unchanged
            r("8.8.8.0/24", 15169),    // unrelated: unchanged
        ];
        let impact = se5_new_roa_impact(&vrps, v("63.160.0.0/12", 13, 1239), &routes);
        assert_eq!(impact.newly_invalid, vec![r("63.161.0.0/16", 4001), r("63.162.0.0/16", 4002)]);
        assert_eq!(impact.newly_valid, vec![r("63.160.0.0/12", 1239), r("63.160.0.0/13", 1239)]);
        assert_eq!(impact.unchanged, 2);
    }

    #[test]
    fn se6_distinguishes_invalid_from_unknown_fallout() {
        // Two ROAs: a covering /20 and a covered /22. Losing the /22
        // flips its route to INVALID (the /20 still covers); losing the
        // /20 flips its route to UNKNOWN (nothing covers a /20 from
        // above).
        let vrps = vec![v("63.174.16.0/20", 20, 17054), v("63.174.16.0/22", 22, 7341)];
        let routes = vec![r("63.174.16.0/20", 17054), r("63.174.16.0/22", 7341)];
        let impact = se6_missing_roa_impact(&vrps, &routes);
        assert_eq!(impact.vrps_examined, 2);
        assert_eq!(impact.vrps_with_invalid_fallout, 1);
        let covered_loss = impact.rows.iter().find(|row| row.missing.asn == Asn(7341)).unwrap();
        assert_eq!(covered_loss.to_invalid, 1);
        assert_eq!(covered_loss.to_unknown, 0);
        let covering_loss = impact.rows.iter().find(|row| row.missing.asn == Asn(17054)).unwrap();
        assert_eq!(covering_loss.to_invalid, 0);
        assert_eq!(covering_loss.to_unknown, 1);
    }

    #[test]
    fn se6_quiet_when_nothing_overlaps() {
        let vrps = vec![v("10.0.0.0/8", 8, 1), v("20.0.0.0/8", 8, 2)];
        let routes = vec![r("10.0.0.0/8", 1), r("20.0.0.0/8", 2)];
        let impact = se6_missing_roa_impact(&vrps, &routes);
        assert_eq!(impact.vrps_with_invalid_fallout, 0);
        // Losses still degrade to unknown (rows recorded), but never to
        // invalid.
        assert!(impact.rows.iter().all(|row| row.to_invalid == 0));
    }

    #[test]
    fn se5_duplicate_vrp_changes_nothing() {
        let vrps = vec![v("10.0.0.0/8", 8, 1)];
        let impact = se5_new_roa_impact(&vrps, v("10.0.0.0/8", 8, 1), &[r("10.0.0.0/8", 1)]);
        assert!(impact.newly_invalid.is_empty());
        assert!(impact.newly_valid.is_empty());
        assert_eq!(impact.unchanged, 1);
    }
}
