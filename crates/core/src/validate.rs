//! One entry point for every relying-party configuration.
//!
//! Each relying-party layer the suite models — retries, the stale
//! cache, Suspenders, incremental revalidation, tracing — would widen
//! a positional signature; [`ValidationOptions`] names them instead:
//! callers list the layers they want and
//! [`ModelRpki::validate_with`] assembles the source stack, runs the
//! validator (cold, or incrementally against a persistent
//! [`ValidationState`]), and reports the run (and any Suspenders
//! transitions) through the world's observability recorder.
//!
//! ```
//! use rpki_objects::Moment;
//! use rpki_repo::SyncPolicy;
//! use rpki_rp::ResilientState;
//! use rpki_risk::{ModelRpki, ValidationOptions};
//!
//! let mut w = ModelRpki::build();
//! // The bare networked relying party:
//! let bare = w.validate_with(ValidationOptions::at(Moment(2)));
//! // The full resilience stack:
//! let mut state = ResilientState::default();
//! let run = w.validate_with(
//!     ValidationOptions::at(Moment(3)).retry(SyncPolicy::default()).stale_cache(&mut state),
//! );
//! assert_eq!(bare.vrps, run.vrps);
//! ```
//!
//! [`ModelRpki::validate_direct`] (a perfect-transport probe, `&self`)
//! remains as the one standalone convenience.

use rpki_objects::Moment;
use rpki_repo::{RrdpClientState, SyncPolicy};
use rpki_rp::{
    DirectSource, NetworkSource, ObjectSource, ResilientSource, ResilientState, RrdpSource,
    SchedulePlan, ScheduledSource, SchedulerState, ShardPlan, ShardStats, UnsafeVrpPolicy,
    ValidationConfig, ValidationRun, ValidationState, Validator,
};

use crate::fixtures::ModelRpki;
use crate::suspenders::SuspendersState;

/// Which relying-party layers a validation run assembles, built
/// fluently and consumed by [`ModelRpki::validate_with`].
///
/// Defaults to the bare networked relying party: one sync per
/// directory over the simulated (faultable) network, no retries, no
/// cache, no hold-down.
#[derive(Debug)]
pub struct ValidationOptions<'a> {
    now: Moment,
    strict: bool,
    direct: bool,
    retry: Option<SyncPolicy>,
    stale_cache: Option<&'a mut ResilientState>,
    suspenders: Option<&'a mut SuspendersState>,
    incremental: Option<&'a mut ValidationState>,
    rrdp: Option<&'a mut RrdpClientState>,
    rrdp_verify: bool,
    shards: Option<ShardPlan>,
    unsafe_vrps: UnsafeVrpPolicy,
    scheduled: Option<(SchedulePlan, &'a mut SchedulerState)>,
}

impl<'a> ValidationOptions<'a> {
    /// Options for a run at `now` over the simulated network with no
    /// extra layers.
    pub fn at(now: Moment) -> Self {
        ValidationOptions {
            now,
            strict: false,
            direct: false,
            retry: None,
            stale_cache: None,
            suspenders: None,
            incremental: None,
            rrdp: None,
            rrdp_verify: true,
            shards: None,
            unsafe_vrps: UnsafeVrpPolicy::default(),
            scheduled: None,
        }
    }

    /// Validate over a perfect transport instead of the simulated
    /// network (retries become a no-op; the stale cache still records
    /// snapshots).
    pub fn direct(mut self) -> Self {
        self.direct = true;
        self
    }

    /// Use strict (RFC 6487-style) validation instead of the default
    /// lenient profile.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Retry each directory under `policy`: deadlines, exponential
    /// backoff, digest-checked re-fetches.
    pub fn retry(mut self, policy: SyncPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Fall back to `state`'s last-good snapshots when a directory
    /// cannot be fetched, with circuit breaking; `state` persists
    /// across runs and accumulates snapshots.
    pub fn stale_cache(mut self, state: &'a mut ResilientState) -> Self {
        self.stale_cache = Some(state);
        self
    }

    /// Feed the run through `state`'s Suspenders hold-down after
    /// validation: VRPs that vanish without evidence stay effective
    /// and raise alarms. Transitions are reported through the world's
    /// recorder; read the effective cache from `state` afterwards.
    pub fn suspenders(mut self, state: &'a mut SuspendersState) -> Self {
        self.suspenders = Some(state);
        self
    }

    /// Revalidate incrementally against `state`'s per-CA memo cache:
    /// unchanged publication points replay their cached subtree instead
    /// of being re-walked, the output stays byte-identical to a cold
    /// run, and `state` carries the VRP delta against the previous run
    /// (feed it to an RTR server via
    /// [`RtrServer::publish`](rpki_rp::RtrServer::publish)).
    /// `state` persists across runs; its
    /// [stats](ValidationState::stats) are emitted through the world's
    /// recorder after each run.
    pub fn incremental(mut self, state: &'a mut ValidationState) -> Self {
        self.incremental = Some(state);
        self
    }

    /// Fetch over RRDP (notification poll, delta chains, snapshot
    /// fallback) with the rsync path as the downgrade target, keeping
    /// per-directory session state in `state` across runs. Every
    /// successful RRDP sync is cross-checked against an rsync digest
    /// probe, so a publication point replaying a frozen stale view is
    /// detected ([`RrdpClientState::note_pinned`]) and bypassed.
    /// Ignored by [`direct`](ValidationOptions::direct) runs.
    pub fn rrdp(mut self, state: &'a mut RrdpClientState) -> Self {
        self.rrdp = Some(state);
        self.rrdp_verify = true;
        self
    }

    /// Like [`rrdp`](ValidationOptions::rrdp) but without the freshness
    /// cross-check: the relying party believes whatever the RRDP feed
    /// confirms. This is the Stalloris-vulnerable configuration the
    /// downgrade campaign measures.
    pub fn rrdp_trusting(mut self, state: &'a mut RrdpClientState) -> Self {
        self.rrdp = Some(state);
        self.rrdp_verify = false;
        self
    }

    /// Execute the walk as independent per-publication-point shard
    /// units under `plan`'s deterministic work-stealing scheduler. The
    /// output is byte-identical to the unsharded walk for any shard
    /// count; scheduler statistics are emitted through the world's
    /// recorder. Composes with [`incremental`](Self::incremental).
    pub fn sharded(mut self, plan: ShardPlan) -> Self {
        self.shards = Some(plan);
        self
    }

    /// What to do with *unsafe* VRPs — payloads whose prefix overlaps
    /// the resources of a CA the walk rejected. The default
    /// ([`UnsafeVrpPolicy::Accept`]) skips the analysis;
    /// [`Warn`](UnsafeVrpPolicy::Warn) flags them in
    /// [`ValidationRun::unsafe_vrps`](rpki_rp::ValidationRun), and
    /// [`Reject`](UnsafeVrpPolicy::Reject) additionally drops them
    /// from the validated set.
    pub fn unsafe_vrps(mut self, policy: UnsafeVrpPolicy) -> Self {
        self.unsafe_vrps = policy;
        self
    }

    /// Drive fetching through `plan`'s notification-cadence scheduler:
    /// publication points whose refresh deadline has not arrived replay
    /// their scheduled snapshot instead of being re-fetched, hosts in
    /// breaker cooldown inherit exponential backoff, and per-run frame
    /// or time budgets defer the remainder of the sweep. `state`
    /// persists cadence estimates and snapshots across runs; a
    /// [`SchedulePlan::degenerate`] plan makes the run byte-identical
    /// to the unscheduled sweep. When combined with
    /// [`rrdp`](Self::rrdp), the plan's
    /// [`rrdp_fallback_time`](SchedulePlan::rrdp_fallback_time) gates
    /// the rsync downgrade on unreachability (routinator-style timed
    /// fallback). The scheduler stacks *outside* the stale cache, so
    /// cooldown and snapshot fallback still apply to the fetches it
    /// does admit.
    pub fn scheduled(mut self, plan: SchedulePlan, state: &'a mut SchedulerState) -> Self {
        self.scheduled = Some((plan, state));
        self
    }
}

fn run_stack<S: ObjectSource>(
    config: ValidationConfig,
    source: S,
    stale_cache: Option<&mut ResilientState>,
    incremental: Option<&mut ValidationState>,
    shards: Option<ShardPlan>,
    scheduled: Option<(SchedulePlan, &mut SchedulerState)>,
    tals: &[rpki_objects::TrustAnchorLocator],
) -> (ValidationRun, Option<ShardStats>) {
    fn walk(
        config: ValidationConfig,
        source: &mut dyn ObjectSource,
        incremental: Option<&mut ValidationState>,
        shards: Option<ShardPlan>,
        tals: &[rpki_objects::TrustAnchorLocator],
    ) -> (ValidationRun, Option<ShardStats>) {
        match (shards, incremental) {
            (Some(plan), Some(inc)) => {
                let (run, stats) =
                    Validator::new(config).run_sharded_incremental(source, tals, plan, inc);
                (run, Some(stats))
            }
            (Some(plan), None) => {
                let (run, stats) = Validator::new(config).run_sharded(source, tals, plan);
                (run, Some(stats))
            }
            (None, Some(inc)) => (Validator::new(config).run_incremental(source, tals, inc), None),
            (None, None) => (Validator::new(config).run(source, tals), None),
        }
    }
    // The scheduler wraps *outermost*: a not-due directory is answered
    // from the schedule snapshot before the stale cache or transport is
    // consulted, and a fetch it admits still enjoys the full resilience
    // stack underneath.
    match (stale_cache, scheduled) {
        (Some(state), Some((plan, sched))) => {
            let resilient = ResilientSource::new(source, state);
            let mut source = ScheduledSource::new(resilient, sched, plan);
            walk(config, &mut source, incremental, shards, tals)
        }
        (Some(state), None) => {
            let mut source = ResilientSource::new(source, state);
            walk(config, &mut source, incremental, shards, tals)
        }
        (None, Some((plan, sched))) => {
            let mut source = ScheduledSource::new(source, sched, plan);
            walk(config, &mut source, incremental, shards, tals)
        }
        (None, None) => {
            let mut source = source;
            walk(config, &mut source, incremental, shards, tals)
        }
    }
}

impl ModelRpki {
    /// Runs one validation with the layers selected in `opts`, emitting
    /// the run summary (and any Suspenders transitions) through the
    /// network's recorder.
    pub fn validate_with(&mut self, opts: ValidationOptions<'_>) -> ValidationRun {
        let ValidationOptions {
            now,
            strict,
            direct,
            retry,
            mut stale_cache,
            suspenders,
            mut incremental,
            rrdp,
            rrdp_verify,
            shards,
            unsafe_vrps,
            mut scheduled,
        } = opts;
        let rec = self.net.recorder();
        let config =
            if strict { ValidationConfig::strict_at(now) } else { ValidationConfig::at(now) }
                .with_unsafe_policy(unsafe_vrps);
        if let Some(state) = &mut stale_cache {
            state.set_recorder(rec.clone());
        }
        if let Some((_, state)) = &mut scheduled {
            state.set_recorder(rec.clone());
        }
        let fallback_window = scheduled.as_ref().and_then(|(plan, _)| plan.rrdp_fallback_time);
        let tals = std::slice::from_ref(&self.tal);
        let (run, shard_stats) = if direct {
            run_stack(
                config,
                DirectSource::new(&self.repos),
                stale_cache,
                incremental.as_deref_mut(),
                shards,
                scheduled,
                tals,
            )
        } else if let Some(state) = rrdp {
            let policy = retry.unwrap_or_default();
            let mut source =
                RrdpSource::new(&mut self.net, &self.repos, self.rp_node, state, policy);
            if !rrdp_verify {
                source = source.trusting();
            }
            if let Some(window) = fallback_window {
                source = source.fallback_after(window);
            }
            run_stack(
                config,
                source,
                stale_cache,
                incremental.as_deref_mut(),
                shards,
                scheduled,
                tals,
            )
        } else {
            let source = match retry {
                Some(policy) => {
                    NetworkSource::with_policy(&mut self.net, &self.repos, self.rp_node, policy)
                }
                None => NetworkSource::new(&mut self.net, &self.repos, self.rp_node),
            };
            run_stack(
                config,
                source,
                stale_cache,
                incremental.as_deref_mut(),
                shards,
                scheduled,
                tals,
            )
        };
        run.emit(&rec, now.0);
        if let Some(stats) = shard_stats {
            stats.emit(&rec, now.0);
        }
        if let Some(state) = incremental {
            state.stats().emit(&rec, now.0);
        }
        if let Some(susp) = suspenders {
            let events = susp.ingest(&run, now);
            if rec.is_enabled() {
                for event in &events {
                    rec.count(&format!("suspenders.{}", event.label()), 1);
                    rec.event(now.0, "suspenders", event.label())
                        .str("vrp", &event.vrp().to_string())
                        .emit();
                }
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suspenders::SuspendersConfig;
    use rpki_obs::Recorder;

    #[test]
    fn incremental_network_run_matches_cold_run() {
        // Same seed, one cold world and one incremental world: the
        // first incremental run (all misses) must be byte-identical to
        // the cold run — same network traffic, same output.
        let mut cold = ModelRpki::build_seeded(5);
        let mut warm = ModelRpki::build_seeded(5);
        let mut state = ValidationState::full();
        let a = cold.validate_with(ValidationOptions::at(Moment(2)));
        let b = warm.validate_with(ValidationOptions::at(Moment(2)).incremental(&mut state));
        assert_eq!(a, b);
        assert_eq!(state.stats().subtrees_rewalked, 4);
        assert_eq!(state.stats().subtrees_reused, 0);
        // Everything announced, nothing withdrawn on the first run.
        assert_eq!(state.last_delta().announce.len(), 8);
        assert!(state.last_delta().withdraw.is_empty());
    }

    #[test]
    fn incremental_rerun_reuses_subtrees_and_yields_delta() {
        let mut w = ModelRpki::build_seeded(5);
        let mut state = ValidationState::full();
        let first = w.validate_with(ValidationOptions::at(Moment(2)).incremental(&mut state));
        // Nothing republished: every subtree replays from the cache and
        // the delta is empty.
        let quiet = w.validate_with(ValidationOptions::at(Moment(3)).incremental(&mut state));
        assert_eq!(first.vrps, quiet.vrps);
        assert_eq!(state.stats().subtrees_reused, 4);
        assert_eq!(state.stats().subtrees_rewalked, 0);
        assert!(state.last_delta().is_empty());
        // A stealthy withdrawal plus republish dirties the content
        // digests (fresh manifests everywhere), so the walk repeats and
        // the delta carries exactly the vanished VRP.
        let file = w.covering_roa_file();
        w.continental.withdraw(&file).unwrap();
        w.publish_all(Moment(4));
        let rerun = w.validate_with(ValidationOptions::at(Moment(5)).incremental(&mut state));
        assert_eq!(rerun.vrps.len(), 7);
        assert!(state.last_delta().announce.is_empty());
        assert_eq!(state.last_delta().withdraw.len(), 1);
    }

    #[test]
    fn incremental_composes_with_retry_and_stale_cache() {
        let mut a = ModelRpki::build_seeded(5);
        let mut b = ModelRpki::build_seeded(5);
        let mut resilient = ResilientState::default();
        let mut state = ValidationState::full();
        let cold = a.validate_with(
            ValidationOptions::at(Moment(2))
                .retry(SyncPolicy::default())
                .stale_cache(&mut resilient),
        );
        let mut resilient_b = ResilientState::default();
        let warm = b.validate_with(
            ValidationOptions::at(Moment(2))
                .retry(SyncPolicy::default())
                .stale_cache(&mut resilient_b)
                .incremental(&mut state),
        );
        assert_eq!(cold, warm);
        assert_eq!(resilient.snapshot_count(), resilient_b.snapshot_count());
    }

    #[test]
    fn direct_transport_with_stale_cache_records_snapshots() {
        let mut w = ModelRpki::build();
        let mut state = ResilientState::default();
        let run =
            w.validate_with(ValidationOptions::at(Moment(2)).direct().stale_cache(&mut state));
        assert_eq!(run.vrps.len(), 8);
        assert!(state.snapshot_count() >= 4);
    }

    #[test]
    fn suspenders_layer_ingests_and_traces() {
        let mut w = ModelRpki::build();
        let rec = Recorder::new();
        w.net.set_recorder(rec.clone());
        let mut susp = SuspendersState::new(SuspendersConfig::default());
        w.validate_with(ValidationOptions::at(Moment(2)).suspenders(&mut susp));
        assert_eq!(susp.len(), 8);
        // Stealthy withdrawal: the hold-down keeps the VRP effective
        // and the transition lands in the trace.
        let file = w.covering_roa_file();
        w.continental.withdraw(&file).unwrap();
        w.publish_all(Moment(3));
        w.validate_with(ValidationOptions::at(Moment(4)).suspenders(&mut susp));
        assert_eq!(susp.len(), 8);
        assert_eq!(susp.held().len(), 1);
        assert_eq!(rec.metrics().counter("suspenders.held_suspicious"), 1);
        assert!(rec
            .events()
            .iter()
            .any(|e| e.layer == "suspenders" && e.kind == "held_suspicious" && e.at == 4));
    }

    #[test]
    fn rrdp_run_matches_cold_network_run() {
        let mut cold = ModelRpki::build_seeded(5);
        let mut warm = ModelRpki::build_seeded(5);
        let mut state = RrdpClientState::new();
        let a = cold.validate_with(ValidationOptions::at(Moment(2)));
        let b = warm.validate_with(ValidationOptions::at(Moment(2)).rrdp(&mut state));
        assert_eq!(a, b, "RRDP-sourced output must equal the rsync cold walk");
        assert_eq!(state.stats().snapshot_syncs, 5, "first contact snapshots every pub point");
        assert_eq!(state.stats().downgrades, 0);
        // A quiet re-run is all fast-path confirmations, same output.
        let c = warm.validate_with(ValidationOptions::at(Moment(3)).rrdp(&mut state));
        assert_eq!(a.vrps, c.vrps);
        assert_eq!(state.stats().unchanged, 5);
    }

    #[test]
    fn rrdp_run_survives_an_offline_rrdp_endpoint() {
        let mut w = ModelRpki::build_seeded(5);
        let baseline = w.validate_with(ValidationOptions::at(Moment(2)));
        for host in ["rpki.arin.example", "rpki.sprint.example", "rpki.continental.example"] {
            if let Some(repo) = w.repos.by_host_mut(host) {
                repo.set_rrdp_offline(true);
            }
        }
        let mut state = RrdpClientState::new();
        let run = w.validate_with(ValidationOptions::at(Moment(3)).rrdp(&mut state));
        assert_eq!(run.vrps, baseline.vrps, "the rsync fallback must keep the RP whole");
        assert!(state.stats().downgrades > 0);
    }

    #[test]
    fn trusting_rrdp_stays_pinned_while_verified_recovers() {
        let mut trusting_world = ModelRpki::build_seeded(9);
        let mut verified_world = ModelRpki::build_seeded(9);
        let mut trusting = RrdpClientState::new();
        let mut verified = RrdpClientState::new();
        trusting_world.validate_with(ValidationOptions::at(Moment(2)).rrdp_trusting(&mut trusting));
        verified_world.validate_with(ValidationOptions::at(Moment(2)).rrdp(&mut verified));
        // The CONTINENTAL host pins its feed, then whacks the covering
        // ROA (the paper's stealthy delete).
        for w in [&mut trusting_world, &mut verified_world] {
            w.repos.by_host_mut("rpki.continental.example").unwrap().rrdp_pin();
            let file = w.covering_roa_file();
            w.continental.withdraw(&file).unwrap();
            w.publish_all(Moment(3));
        }
        let t = trusting_world
            .validate_with(ValidationOptions::at(Moment(4)).rrdp_trusting(&mut trusting));
        let v = verified_world.validate_with(ValidationOptions::at(Moment(4)).rrdp(&mut verified));
        assert_eq!(t.vrps.len(), 8, "the trusting RP still sees the whacked ROA");
        assert_eq!(v.vrps.len(), 7, "the verified RP sees the truth via the downgrade");
        assert!(verified.stats().pinned_detected > 0);
        assert_eq!(trusting.stats().pinned_detected, 0);
    }

    #[test]
    fn sharded_option_matches_unsharded_and_traces() {
        let mut plain = ModelRpki::build_seeded(5);
        let mut sharded = ModelRpki::build_seeded(5);
        let rec = Recorder::new();
        sharded.net.set_recorder(rec.clone());
        let a = plain.validate_with(ValidationOptions::at(Moment(2)));
        let b = sharded.validate_with(ValidationOptions::at(Moment(2)).sharded(ShardPlan::new(4)));
        assert_eq!(a, b, "sharded walk must be byte-identical to the sequential walk");
        assert_eq!(rec.metrics().counter("rp.shard.runs"), 1);
        assert!(rec.events().iter().any(|e| e.layer == "rp" && e.kind == "sharded_walk"));
        // Composes with the incremental cache: a quiet sharded re-run
        // replays every subtree.
        let mut state = ValidationState::full();
        let warm = sharded.validate_with(
            ValidationOptions::at(Moment(3)).sharded(ShardPlan::new(4)).incremental(&mut state),
        );
        assert_eq!(warm.vrps, a.vrps);
        let again = sharded.validate_with(
            ValidationOptions::at(Moment(4)).sharded(ShardPlan::new(4)).incremental(&mut state),
        );
        assert_eq!(again.vrps, a.vrps);
        assert_eq!(state.stats().subtrees_reused, 4);
    }

    #[test]
    fn scheduled_degenerate_matches_sweep_and_rerun_is_zero_frames() {
        let mut plain = ModelRpki::build_seeded(5);
        let mut degen = ModelRpki::build_seeded(5);
        let mut sched = ModelRpki::build_seeded(5);
        let a = plain.validate_with(ValidationOptions::at(Moment(2)));
        // Degenerate plan: byte-identical output, identical traffic.
        let mut dstate = SchedulerState::new();
        let d = degen.validate_with(
            ValidationOptions::at(Moment(2)).scheduled(SchedulePlan::degenerate(), &mut dstate),
        );
        assert_eq!(a, d);
        assert_eq!(plain.net.stats().sent, degen.net.stats().sent);
        // A real plan: the first run fetches every point; an immediate
        // re-run finds nothing due and costs zero frames.
        let mut state = SchedulerState::new();
        let plan = SchedulePlan::default();
        let first =
            sched.validate_with(ValidationOptions::at(Moment(2)).scheduled(plan, &mut state));
        assert_eq!(first.vrps, a.vrps);
        let before = sched.net.stats().sent;
        let again =
            sched.validate_with(ValidationOptions::at(Moment(3)).scheduled(plan, &mut state));
        assert_eq!(again.vrps, a.vrps);
        assert_eq!(sched.net.stats().sent, before, "not-due points must cost zero frames");
        assert_eq!(state.last_run().fetched, 0);
        assert!(state.last_run().not_due > 0);
    }

    #[test]
    fn scheduled_composes_with_rrdp_and_gates_fallback() {
        let mut w = ModelRpki::build_seeded(5);
        let baseline = w.validate_with(ValidationOptions::at(Moment(2)));
        w.repos.by_host_mut("rpki.continental.example").unwrap().set_rrdp_offline(true);
        let mut rrdp = RrdpClientState::new();
        let mut state = SchedulerState::new();
        let plan = SchedulePlan { min_refresh: 0, max_refresh: 0, jitter: 0, ..Default::default() };
        // Inside the fallback window the RP defers the rsync downgrade
        // and reports the point unreachable rather than silently
        // switching transports.
        let run = w.validate_with(
            ValidationOptions::at(Moment(3)).rrdp(&mut rrdp).scheduled(plan, &mut state),
        );
        assert!(run.vrps.len() < baseline.vrps.len());
        assert!(rrdp.stats().fallback_deferrals > 0);
        assert_eq!(rrdp.stats().downgrades, 0);
        // Past the window the deferred point downgrades to rsync and
        // the RP is whole again.
        w.net.advance_to(w.net.now() + 4_000);
        let run = w.validate_with(
            ValidationOptions::at(Moment(4)).rrdp(&mut rrdp).scheduled(plan, &mut state),
        );
        assert_eq!(run.vrps, baseline.vrps);
        assert!(rrdp.stats().fallback_switches > 0);
        assert!(rrdp.stats().downgrades > 0);
    }

    #[test]
    fn strict_mode_flows_through() {
        let mut a = ModelRpki::build();
        let strict = a.validate_with(ValidationOptions::at(Moment(2)).strict());
        let lenient = a.validate_with(ValidationOptions::at(Moment(2)));
        // The model world is well-formed, so both profiles agree; the
        // point is that the flag reaches the validator unchanged.
        assert_eq!(strict.vrps, lenient.vrps);
    }
}
