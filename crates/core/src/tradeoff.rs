//! Table 6: the local-policy tradeoff.
//!
//! > "the local policy that is best at protecting against problems with
//! > BGP is worst at protecting against problems with RPKI."
//!
//! Two threat scenarios are run against the same topology and victim:
//!
//! - **Routing attack** — a subprefix hijack of the victim's prefix,
//!   with the victim's ROA intact;
//! - **RPKI manipulation** — the victim's ROA is whacked while a
//!   covering ROA remains (so the victim's route is *invalid*), and no
//!   hijacker is present.
//!
//! For each scenario × each relying-party policy, the table reports the
//! fraction of ASes whose traffic to the victim still reaches it.

use bgp_sim::{propagate_with_stats, Announcement, ConvergenceStats, RpkiPolicy, Topology};
use ipres::{Addr, Asn};
use rpki_rp::VrpCache;
use serde::Serialize;

/// Reachability outcomes of one scenario under every policy.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioOutcome {
    /// Scenario label.
    pub scenario: &'static str,
    /// `(policy, fraction of ASes reaching the victim)`.
    pub reachability: Vec<(RpkiPolicy, f64)>,
}

/// The full Table 6.
#[derive(Debug, Clone, Serialize)]
pub struct TradeoffTable {
    /// One row per scenario.
    pub rows: Vec<ScenarioOutcome>,
    /// Total propagation work across all scenario × policy runs.
    pub convergence: ConvergenceStats,
}

impl TradeoffTable {
    /// The reachability for a scenario/policy pair.
    pub fn get(&self, scenario: &str, policy: RpkiPolicy) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario)
            .and_then(|r| r.reachability.iter().find(|(p, _)| *p == policy))
            .map(|(_, f)| *f)
    }
}

/// Inputs for the tradeoff experiment.
#[derive(Debug)]
pub struct TradeoffScenario<'a> {
    /// The AS topology.
    pub topology: &'a Topology,
    /// Background announcements (everyone's legitimate routes),
    /// including the victim's.
    pub announcements: &'a [Announcement],
    /// The victim's announcement (must also appear in
    /// `announcements`).
    pub victim: Announcement,
    /// An address inside the victim's prefix to probe with.
    pub probe_addr: Addr,
    /// The hijacker AS (for the routing-attack scenario).
    pub attacker: Asn,
    /// The hijacker's announcement (a subprefix of the victim's).
    pub hijack: Announcement,
    /// VRP cache with the victim's ROA intact.
    pub cache_intact: &'a VrpCache,
    /// VRP cache after the manipulation (victim's ROA whacked, covering
    /// ROA present).
    pub cache_whacked: &'a VrpCache,
}

/// Runs Table 6: both scenarios under `Ignore`, `DropInvalid`, and
/// `DeprefInvalid`.
pub fn policy_tradeoff(s: &TradeoffScenario<'_>) -> TradeoffTable {
    let policies = [RpkiPolicy::Ignore, RpkiPolicy::DropInvalid, RpkiPolicy::DeprefInvalid];

    // Scenario A: routing attack (subprefix hijack), RPKI intact.
    let mut attack_anns = s.announcements.to_vec();
    attack_anns.push(s.hijack);
    let mut attack_row = ScenarioOutcome { scenario: "routing attack", reachability: Vec::new() };
    // The denominator is "other networks": the attacker (who reaches
    // itself by construction) and the victim (likewise) are excluded.
    let probes = |state: &bgp_sim::RoutingState| {
        state.reachability_of(
            s.topology.ases().filter(|a| *a != s.attacker && *a != s.victim.origin),
            s.probe_addr,
            s.victim.origin,
        )
    };
    let mut convergence = ConvergenceStats::default();
    for policy in policies {
        let (state, stats) = propagate_with_stats(s.topology, &attack_anns, policy, s.cache_intact)
            .expect("Table 6 topology converges");
        convergence.absorb(stats);
        attack_row.reachability.push((policy, probes(&state)));
    }

    // Scenario B: RPKI manipulation (ROA whacked), no hijacker.
    let mut manip_row = ScenarioOutcome { scenario: "RPKI manipulation", reachability: Vec::new() };
    for policy in policies {
        let (state, stats) =
            propagate_with_stats(s.topology, s.announcements, policy, s.cache_whacked)
                .expect("Table 6 topology converges");
        convergence.absorb(stats);
        manip_row.reachability.push((policy, probes(&state)));
    }

    TradeoffTable { rows: vec![attack_row, manip_row], convergence }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{asn, ModelRpki};
    use rpki_objects::Moment;
    use rpki_rp::Vrp;

    /// Builds the Table 6 inputs from the model world: the victim is
    /// Continental's /20; the hijacker announces a /24 inside it.
    fn scenario(w: &ModelRpki) -> (VrpCache, VrpCache, Announcement, Announcement) {
        let intact = w.validate_direct(Moment(2)).vrp_cache();
        // Whacked: remove the /20 VRP; the Figure 5 (right) covering
        // ROA from Sprint remains so the route is INVALID, not unknown.
        let mut whacked_vrps: Vec<Vrp> =
            intact.vrps().iter().copied().filter(|v| v.asn != asn::CONTINENTAL).collect();
        whacked_vrps.push(Vrp::new("63.160.0.0/12".parse().unwrap(), 13, asn::SPRINT));
        let mut intact_vrps = intact.vrps().to_vec();
        intact_vrps.push(Vrp::new("63.160.0.0/12".parse().unwrap(), 13, asn::SPRINT));
        let victim =
            Announcement { prefix: "63.174.16.0/20".parse().unwrap(), origin: asn::CONTINENTAL };
        let hijack = Announcement { prefix: "63.174.24.0/24".parse().unwrap(), origin: Asn(666) };
        (intact_vrps.into_iter().collect(), whacked_vrps.into_iter().collect(), victim, hijack)
    }

    #[test]
    fn table6_shape_holds() {
        let mut w = ModelRpki::build();
        // The attacker is a customer of Sprint (well connected).
        w.topology.add_provider_customer(asn::SPRINT, Asn(666));
        let (cache_intact, cache_whacked, victim, hijack) = scenario(&w);
        let table = policy_tradeoff(&TradeoffScenario {
            topology: &w.topology,
            announcements: &w.announcements,
            victim,
            probe_addr: "63.174.24.9".parse().unwrap(),
            attacker: Asn(666),
            hijack,
            cache_intact: &cache_intact,
            cache_whacked: &cache_whacked,
        });

        // Table 6, row "drop invalid": protects against the attack but
        // loses the prefix under manipulation.
        let drop_attack = table.get("routing attack", RpkiPolicy::DropInvalid).unwrap();
        let drop_manip = table.get("RPKI manipulation", RpkiPolicy::DropInvalid).unwrap();
        assert_eq!(drop_attack, 1.0, "drop-invalid stops the hijack");
        assert_eq!(drop_manip, 0.0, "drop-invalid loses the whacked prefix");

        // Row "depref invalid": hijack succeeds (LPM), manipulation
        // survivable.
        let depref_attack = table.get("routing attack", RpkiPolicy::DeprefInvalid).unwrap();
        let depref_manip = table.get("RPKI manipulation", RpkiPolicy::DeprefInvalid).unwrap();
        assert!(depref_attack < 1.0, "subprefix hijack possible under depref");
        assert_eq!(depref_manip, 1.0, "depref keeps the whacked prefix reachable");

        // Baseline: ignoring the RPKI, the hijack captures traffic.
        let ignore_attack = table.get("routing attack", RpkiPolicy::Ignore).unwrap();
        assert!(ignore_attack < 1.0);
        assert_eq!(table.get("RPKI manipulation", RpkiPolicy::Ignore).unwrap(), 1.0);

        // Six propagations ran; the memo did real work.
        assert!(table.convergence.rounds >= 6);
        assert!(table.convergence.route_updates > 0);
        assert!(table.convergence.memo_misses > 0);
    }

    #[test]
    fn get_on_missing_keys() {
        let table = TradeoffTable { rows: vec![], convergence: ConvergenceStats::default() };
        assert!(table.get("nope", RpkiPolicy::Ignore).is_none());
    }
}
