//! End-to-end CLI tests: run the actual binary and check its output
//! and exit codes.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rpki-risk")).args(args).output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_lists_commands() {
    let out = run(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in ["demo", "whack", "audit", "tradeoff", "grid"] {
        assert!(text.contains(cmd), "usage must mention {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn demo_validates_the_model() {
    let out = run(&["demo"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("4 CAs, 8 VRPs, 0 diagnostics"), "{text}");
    assert!(text.contains("Sprint"));
    assert!(text.contains("Continental Broadband"));
}

#[test]
fn whack_dry_run_plans_without_executing() {
    let out = run(&["whack", "--origin", "17054", "--dry-run"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("dry run"));
    assert!(text.contains("carve"));
    // The clean-carve target needs zero reissues.
    assert!(text.contains("reissues needed (detection surface): 0"), "{text}");
}

#[test]
fn whack_executes_cleanly() {
    let out = run(&["whack", "--origin", "7341"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("VRPs 8 → 7"), "{text}");
    assert!(text.contains("collateral-free: true"));
}

#[test]
fn whack_unknown_origin_fails_with_suggestions() {
    let out = run(&["whack", "--origin", "99999"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--origin 17054"), "{err}");
}

#[test]
fn audit_is_deterministic_per_seed() {
    let a = run(&["audit", "--seed", "5"]);
    let b = run(&["audit", "--seed", "5"]);
    let c = run(&["audit", "--seed", "6"]);
    assert!(a.status.success());
    assert_eq!(stdout(&a), stdout(&b));
    assert_ne!(stdout(&a), stdout(&c));
}

#[test]
fn tradeoff_prints_the_asymmetry() {
    let out = run(&["tradeoff"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("DropInvalid"));
    assert!(text.contains("DeprefInvalid"));
    // drop: 100% / 0%; depref: 0% / 100%.
    let drop_line = text.lines().find(|l| l.contains("DropInvalid")).expect("row");
    assert!(drop_line.contains("100%") && drop_line.contains("0%"), "{drop_line}");
}

#[test]
fn grid_right_differs_from_left() {
    let left = run(&["grid"]);
    let right = run(&["grid", "--right"]);
    assert!(left.status.success() && right.status.success());
    assert_ne!(stdout(&left), stdout(&right));
    // The right panel validates the /12 for Sprint.
    let right_text = stdout(&right);
    let twelve = right_text.lines().find(|l| l.starts_with("63.160.0.0/12 ")).expect("row");
    assert!(twelve.contains("valid"), "{twelve}");
}

#[test]
fn json_flag_emits_record_on_stderr() {
    let out = run(&["demo", "--json"]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    let line = err.lines().find(|l| l.starts_with('{')).expect("json record");
    let value: serde_json::Value = serde_json::from_str(line).expect("valid json");
    assert_eq!(value["command"], "demo");
    assert_eq!(value["data"].as_array().map(Vec::len), Some(8));
}
