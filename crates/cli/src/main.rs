//! `rpki-risk` — the command-line face of the workspace.
//!
//! ```text
//! rpki-risk demo                     # the Figure 2 model world, validated
//! rpki-risk whack --origin 17054     # plan & execute a whack in the model
//! rpki-risk audit --seed 7           # Table 4-style jurisdiction audit
//! rpki-risk tradeoff                 # Table 6 policy comparison
//! rpki-risk grid [--right]           # Figure 5 validity bands
//! ```
//!
//! Argument parsing is hand-rolled on std (the workspace carries no CLI
//! dependency); every subcommand supports `--json` for machine output.

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = &args[1.min(args.len())..];
    match cmd {
        "demo" => commands::demo(rest),
        "whack" => commands::whack(rest),
        "audit" => commands::audit(rest),
        "tradeoff" => commands::tradeoff(rest),
        "grid" => commands::grid(rest),
        "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            eprint!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
