//! Subcommand implementations.

use std::process::ExitCode;

use ipres::Asn;
use rpki_attacks::{damage_between, plan_whack, probes_for, CaView, WhackStep};
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::{collapse_bands, jurisdiction_report, rir_reach, validity_grid, ModelRpki};
use topogen::{Config, SyntheticInternet};

/// Top-level usage text.
pub const USAGE: &str = "\
rpki-risk — misbehaving-RPKI-authority analysis (HotNets '13 reproduction)

USAGE:
    rpki-risk <COMMAND> [OPTIONS]

COMMANDS:
    demo                 Build and validate the paper's Figure 2 model RPKI
    whack                Plan and execute a targeted ROA whack in the model
        --origin <ASN>       target ROA by origin AS (default 17054)
        --dry-run            plan only; do not execute
    audit                Jurisdiction audit of a synthetic Internet (Table 4)
        --seed <N>           generator seed (default 2013)
        --scale <N>          world size multiplier (default 1)
    tradeoff             The drop-vs-depref policy comparison (Table 6)
    grid                 Route-validity bands for 63.160.0.0/12 (Figure 5)
        --right              include Sprint's covering /12-13 ROA
    help                 Show this message

All commands accept --json to emit a machine-readable record on stderr.
";

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn emit_json<T: serde::Serialize>(args: &[String], label: &str, value: &T) {
    if flag(args, "--json") {
        eprintln!("{}", serde_json::json!({ "command": label, "data": value }));
    }
}

/// `rpki-risk demo`
pub fn demo(args: &[String]) -> ExitCode {
    let w = ModelRpki::build();
    println!("model RPKI (the paper's Figure 2, reconstructed)\n");
    println!("ARIN (trust anchor): {}", w.arin.resources());
    for ca in [&w.sprint, &w.etb, &w.continental] {
        println!("  RC → {:<24} {}", ca.handle(), ca.resources());
        for roa in ca.issued_roas() {
            println!("       {roa}");
        }
    }
    let run = w.validate_direct(Moment(2));
    println!(
        "\nvalidation: {} CAs, {} VRPs, {} diagnostics",
        run.cas.len(),
        run.vrps.len(),
        run.diagnostics.len()
    );
    emit_json(args, "demo", &run.vrps);
    ExitCode::SUCCESS
}

/// `rpki-risk whack --origin <asn> [--dry-run]`
pub fn whack(args: &[String]) -> ExitCode {
    let origin: u32 = match opt(args, "--origin").map(|v| v.parse()) {
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("--origin takes a numeric ASN");
            return ExitCode::FAILURE;
        }
        None => asn::CONTINENTAL.0,
    };
    let mut w = ModelRpki::build();
    let before = w.validate_direct(Moment(2));

    let rc = w.sprint.issued_cert_for(w.continental.key_id()).expect("model invariant");
    let view = CaView::from_repos(rc, &w.repos);
    let Some(target) = view.roas.iter().find(|r| r.asn() == Asn(origin)) else {
        eprintln!("no ROA with origin AS{origin} at Continental's publication point;");
        eprintln!("try one of:");
        for roa in &view.roas {
            eprintln!("  --origin {}", roa.asn().0);
        }
        return ExitCode::FAILURE;
    };
    let target_file = target.file_name();
    let plan = match plan_whack(std::slice::from_ref(&view), &target_file) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("planning failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("target : {}", plan.target);
    println!("carve  : {}", plan.carved);
    println!("reissues needed (detection surface): {}", plan.reissued);
    for step in &plan.steps {
        match step {
            WhackStep::OverwriteChildCert { handle, new_resources, .. } => {
                println!("step   : overwrite RC of {handle} → {new_resources}");
            }
            WhackStep::ReissueCertAsOwn { handle, .. } => {
                println!("step   : reissue RC of {handle} as own child");
            }
            WhackStep::ReissueRoaAsOwn { asn, .. } => {
                println!("step   : reissue ROA of {asn} as own");
            }
        }
    }

    if flag(args, "--dry-run") {
        println!("\n(dry run; nothing executed)");
        emit_json(args, "whack-plan", &plan.reissued);
        return ExitCode::SUCCESS;
    }

    plan.execute(&mut w.sprint, Moment(3)).expect("model execution");
    w.publish_all(Moment(3));
    let after = w.validate_direct(Moment(4));
    let damage = damage_between(&before.vrps, &after.vrps, &probes_for(&before.vrps));
    println!("\nexecuted. VRPs {} → {}", before.vrps.len(), after.vrps.len());
    for (route, state) in &damage.routes_degraded {
        println!("degraded: {route} → {state}");
    }
    let clean = damage.clean_except(&[Asn(origin)]);
    println!("collateral-free: {clean}");
    emit_json(args, "whack", &damage);
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `rpki-risk audit [--seed N] [--scale N]`
pub fn audit(args: &[String]) -> ExitCode {
    let seed: u64 = opt(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(2013);
    let scale: usize = opt(args, "--scale").and_then(|v| v.parse().ok()).unwrap_or(1);
    let config = Config {
        seed,
        transits: 25 * scale,
        stubs: 200 * scale,
        roa_adoption: 1.0,
        cross_border: 0.15,
        anchors: true,
        self_hosting: 1.0,
    };
    let world = SyntheticInternet::generate(config);
    let report = jurisdiction_report(&world);
    println!(
        "{} of {} RCs cover countries outside their parent RIR's region\n",
        report.rcs_crossing_borders, report.rcs_examined
    );
    for row in report.rows.iter().take(12) {
        println!(
            "  {:<14} {:<16} via {:<7} → {}",
            row.holder,
            row.rc.join(","),
            row.rir,
            row.foreign_countries.join(",")
        );
    }
    println!("\nper-RIR whacking reach into non-member countries:");
    for r in rir_reach(&world) {
        if r.foreign_orgs > 0 {
            println!(
                "  {:<8} {:>3} orgs in {}",
                r.rir,
                r.foreign_orgs,
                r.whackable_foreign_countries.join(",")
            );
        }
    }
    emit_json(args, "audit", &report.rows);
    ExitCode::SUCCESS
}

/// `rpki-risk tradeoff`
pub fn tradeoff(args: &[String]) -> ExitCode {
    use bgp_sim_reexport::*;
    let mut w = ModelRpki::build();
    let attacker = Asn(666);
    w.topology.add_provider_customer(asn::SPRINT, attacker);
    let covering = rpki_rp::Vrp::new("63.160.0.0/12".parse().unwrap(), 13, asn::SPRINT);
    let mut intact = w.validate_direct(Moment(2)).vrps;
    intact.push(covering);
    let whacked: Vec<rpki_rp::Vrp> =
        intact.iter().copied().filter(|v| v.asn != asn::CONTINENTAL).collect();
    let cache_intact: rpki_rp::VrpCache = intact.into_iter().collect();
    let cache_whacked: rpki_rp::VrpCache = whacked.into_iter().collect();
    let table = rpki_risk::policy_tradeoff(&rpki_risk::tradeoff::TradeoffScenario {
        topology: &w.topology,
        announcements: &w.announcements,
        victim: Announcement {
            prefix: "63.174.16.0/20".parse().unwrap(),
            origin: asn::CONTINENTAL,
        },
        probe_addr: "63.174.24.9".parse().unwrap(),
        attacker,
        hijack: Announcement { prefix: "63.174.24.0/24".parse().unwrap(), origin: attacker },
        cache_intact: &cache_intact,
        cache_whacked: &cache_whacked,
    });
    println!("{:<16} {:>14} {:>14}", "policy", "under hijack", "under whack");
    for policy in [RpkiPolicy::Ignore, RpkiPolicy::DropInvalid, RpkiPolicy::DeprefInvalid] {
        println!(
            "{:<16} {:>13.0}% {:>13.0}%",
            format!("{policy:?}"),
            table.get("routing attack", policy).unwrap_or(0.0) * 100.0,
            table.get("RPKI manipulation", policy).unwrap_or(0.0) * 100.0,
        );
    }
    emit_json(args, "tradeoff", &table.rows);
    ExitCode::SUCCESS
}

/// Re-exports so the CLI needs no direct bgp-sim dependency entry
/// beyond what `rpki-risk` already links.
mod bgp_sim_reexport {
    pub use bgp_sim::{Announcement, RpkiPolicy};
}

/// `rpki-risk grid [--right]`
pub fn grid(args: &[String]) -> ExitCode {
    let mut w = ModelRpki::build();
    if flag(args, "--right") {
        w.add_figure5_right_roa(Moment(2));
    }
    let cache = w.validate_direct(Moment(3)).vrp_cache();
    let origins = [asn::SPRINT, asn::CONTINENTAL, asn::CUSTOMER_A];
    let rows = validity_grid(&cache, "63.160.0.0/12".parse().unwrap(), 24, &origins);
    let bands = collapse_bands(&rows);
    println!(
        "{:<38} {:>4} {:>6}  {:<8} {:<8} {:<8}",
        "prefix range", "len", "count", "AS1239", "AS17054", "AS7341"
    );
    for band in &bands {
        let range = if band.count == 1 {
            band.first.to_string()
        } else {
            format!("{} … {}", band.first, band.last)
        };
        println!(
            "{:<38} {:>4} {:>6}  {:<8} {:<8} {:<8}",
            range,
            band.first.len(),
            band.count,
            band.states[0].1.to_string(),
            band.states[1].1.to_string(),
            band.states[2].1.to_string(),
        );
    }
    emit_json(args, "grid", &bands);
    ExitCode::SUCCESS
}
