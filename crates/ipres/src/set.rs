//! Canonical sets of IP addresses (RFC 3779 resource sets).
//!
//! A [`ResourceSet`] is the value an RPKI resource certificate binds to
//! a key: an arbitrary set of addresses, possibly spanning both
//! families. The whole HotNets '13 attack surface reduces to algebra on
//! these sets:
//!
//! - chain validation is `child.resources ⊆ parent.resources`
//!   ([`ResourceSet::contains_set`]);
//! - the grandchild-whack of Section 3.1 is
//!   `parent_rc − target_roa` ([`ResourceSet::difference`]) followed by
//!   a collateral check against sibling objects
//!   ([`ResourceSet::overlaps`]);
//! - the "can we carve without collateral?" decision is emptiness of an
//!   intersection ([`ResourceSet::intersection`]).
//!
//! Representation: a single sorted `Vec<AddrRange>`, disjoint and with
//! abutting runs merged, IPv4 runs before IPv6 runs. That canonical form
//! makes equality structural and every binary operation a linear merge.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::prefix::Prefix;
use crate::range::AddrRange;

/// A canonical, possibly mixed-family set of IP addresses.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ResourceSet {
    /// Sorted, disjoint, non-abutting runs. IPv4 sorts before IPv6
    /// because [`Addr`]'s ordering does.
    runs: Vec<AddrRange>,
}

impl ResourceSet {
    /// The empty set.
    pub fn empty() -> Self {
        ResourceSet::default()
    }

    /// A set holding exactly one prefix.
    pub fn from_prefix(prefix: Prefix) -> Self {
        ResourceSet { runs: vec![prefix.range()] }
    }

    /// A set holding one arbitrary range.
    pub fn from_range(range: AddrRange) -> Self {
        ResourceSet { runs: vec![range] }
    }

    /// Builds a canonical set from any iterator of ranges (overlaps and
    /// duplicates welcome).
    pub fn from_ranges<I: IntoIterator<Item = AddrRange>>(ranges: I) -> Self {
        let mut runs: Vec<AddrRange> = ranges.into_iter().collect();
        runs.sort_by_key(|r| (r.lo(), r.hi()));
        let mut out: Vec<AddrRange> = Vec::with_capacity(runs.len());
        for r in runs {
            match out.last_mut() {
                Some(last) if last.overlaps(r) || last.abuts(r) => {
                    *last = AddrRange::new(last.lo(), last.hi().max(r.hi()));
                }
                _ => out.push(r),
            }
        }
        ResourceSet { runs: out }
    }

    /// Builds a canonical set from prefixes.
    pub fn from_prefixes<I: IntoIterator<Item = Prefix>>(prefixes: I) -> Self {
        Self::from_ranges(prefixes.into_iter().map(AddrRange::from))
    }

    /// Parses a comma-separated list of prefixes, e.g.
    /// `"63.160.0.0/12, 208.0.0.0/11"`. Convenience for fixtures.
    ///
    /// # Panics
    ///
    /// Panics on malformed input; fixtures are programmer-authored.
    pub fn from_prefix_strs(s: &str) -> Self {
        Self::from_prefixes(
            s.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(|p| p.parse::<Prefix>().expect("malformed prefix in fixture")),
        )
    }

    /// Whether the set holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The canonical runs, sorted and disjoint.
    pub fn ranges(&self) -> &[AddrRange] {
        &self.runs
    }

    /// Total number of addresses (saturating for full IPv6 space).
    pub fn size(&self) -> u128 {
        self.runs.iter().fold(0u128, |acc, r| acc.saturating_add(r.size()))
    }

    /// Number of canonical runs.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Whether `addr` is a member.
    pub fn contains_addr(&self, addr: Addr) -> bool {
        // Binary search on run start.
        let idx = self.runs.partition_point(|r| r.lo() <= addr);
        idx > 0 && self.runs[idx - 1].contains_addr(addr)
    }

    /// Whether the set contains every address of `prefix`.
    pub fn contains_prefix(&self, prefix: Prefix) -> bool {
        self.contains_range(prefix.range())
    }

    /// Whether the set contains every address of `range`.
    ///
    /// Because runs are canonical (merged), a contained range must lie
    /// within a single run.
    pub fn contains_range(&self, range: AddrRange) -> bool {
        let idx = self.runs.partition_point(|r| r.lo() <= range.lo());
        idx > 0 && self.runs[idx - 1].contains(range)
    }

    /// RFC 3779 containment: every address of `other` is in `self`.
    pub fn contains_set(&self, other: &ResourceSet) -> bool {
        other.runs.iter().all(|r| self.contains_range(*r))
    }

    /// Whether the sets share any address.
    pub fn overlaps(&self, other: &ResourceSet) -> bool {
        // Linear merge over the two sorted run lists.
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (a, b) = (self.runs[i], other.runs[j]);
            if a.overlaps(b) {
                return true;
            }
            if (a.lo().family(), a.hi()) <= (b.lo().family(), b.hi()) {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Whether the set shares any address with `prefix`.
    pub fn overlaps_prefix(&self, prefix: Prefix) -> bool {
        let range = prefix.range();
        let idx = self.runs.partition_point(|r| r.hi() < range.lo());
        idx < self.runs.len() && self.runs[idx].overlaps(range)
    }

    /// Set union.
    pub fn union(&self, other: &ResourceSet) -> ResourceSet {
        ResourceSet::from_ranges(self.runs.iter().chain(other.runs.iter()).copied())
    }

    /// Set intersection.
    pub fn intersection(&self, other: &ResourceSet) -> ResourceSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (a, b) = (self.runs[i], other.runs[j]);
            if let Some(x) = a.intersect(b) {
                out.push(x);
            }
            // Advance whichever run ends first (family-aware via Addr order).
            if a.hi() <= b.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Runs were produced in order and disjoint; still normalise to
        // merge abutting results defensively.
        ResourceSet::from_ranges(out)
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &ResourceSet) -> ResourceSet {
        let mut out: Vec<AddrRange> = Vec::new();
        let mut j = 0;
        for &run in &self.runs {
            let mut cursor = Some(run);
            // Skip other-runs entirely below this run.
            while j < other.runs.len() && other.runs[j].hi() < run.lo() {
                j += 1;
            }
            let mut k = j;
            while let Some(cur) = cursor {
                if k >= other.runs.len() || other.runs[k].lo() > cur.hi() {
                    out.push(cur);
                    cursor = None;
                } else {
                    let cut = other.runs[k];
                    // Part of `cur` strictly below the cut survives.
                    if cut.lo() > cur.lo() {
                        out.push(AddrRange::new(cur.lo(), cut.lo().pred().expect("cut.lo > 0")));
                    }
                    // Continue above the cut, if anything remains.
                    cursor = match cut.hi().succ() {
                        Some(next) if next <= cur.hi() && next.family() == cur.hi().family() => {
                            Some(AddrRange::new(next, cur.hi()))
                        }
                        _ => None,
                    };
                    k += 1;
                }
            }
        }
        ResourceSet::from_ranges(out)
    }

    /// Decomposes the whole set into its minimal exact prefix tiling.
    pub fn to_prefixes(&self) -> Vec<Prefix> {
        self.runs.iter().flat_map(|r| r.to_prefixes()).collect()
    }
}

impl From<Prefix> for ResourceSet {
    fn from(p: Prefix) -> Self {
        ResourceSet::from_prefix(p)
    }
}

impl From<AddrRange> for ResourceSet {
    fn from(r: AddrRange) -> Self {
        ResourceSet::from_range(r)
    }
}

impl FromIterator<Prefix> for ResourceSet {
    fn from_iter<T: IntoIterator<Item = Prefix>>(iter: T) -> Self {
        ResourceSet::from_prefixes(iter)
    }
}

impl FromIterator<AddrRange> for ResourceSet {
    fn from_iter<T: IntoIterator<Item = AddrRange>>(iter: T) -> Self {
        ResourceSet::from_ranges(iter)
    }
}

impl fmt::Display for ResourceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.runs.is_empty() {
            return f.write_str("{}");
        }
        let parts: Vec<String> = self.runs.iter().map(|r| r.to_string()).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

impl fmt::Debug for ResourceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ResourceSet{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> ResourceSet {
        ResourceSet::from_prefix_strs(s)
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalisation_merges_overlaps_and_abutting() {
        let a = set("10.0.0.0/25, 10.0.0.128/25, 10.0.1.0/24, 10.0.0.0/24");
        assert_eq!(a.num_runs(), 1);
        assert_eq!(a, set("10.0.0.0/23"));
        assert_eq!(a.size(), 512);
    }

    #[test]
    fn empty_set_behaviour() {
        let e = ResourceSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.size(), 0);
        assert!(set("10.0.0.0/8").contains_set(&e));
        assert!(e.contains_set(&ResourceSet::empty()));
        assert!(!e.overlaps(&set("10.0.0.0/8")));
        assert_eq!(e.union(&e), e);
    }

    #[test]
    fn containment_basics() {
        let sprint = set("63.160.0.0/12, 208.0.0.0/11");
        assert!(sprint.contains_prefix(p("63.174.16.0/20")));
        assert!(sprint.contains_prefix(p("208.16.0.0/16")));
        assert!(!sprint.contains_prefix(p("63.0.0.0/8")));
        assert!(sprint.contains_set(&set("63.174.16.0/20, 208.0.0.0/12")));
        assert!(!sprint.contains_set(&set("63.174.16.0/20, 8.0.0.0/8")));
    }

    #[test]
    fn contains_range_rejects_run_spanning_gap() {
        let s = ResourceSet::from_ranges(vec![
            AddrRange::new("10.0.0.0".parse().unwrap(), "10.0.0.99".parse().unwrap()),
            AddrRange::new("10.0.0.101".parse().unwrap(), "10.0.0.200".parse().unwrap()),
        ]);
        assert_eq!(s.num_runs(), 2);
        assert!(!s.contains_range(AddrRange::new(
            "10.0.0.50".parse().unwrap(),
            "10.0.0.150".parse().unwrap()
        )));
        assert!(!s.contains_addr("10.0.0.100".parse().unwrap()));
        assert!(s.contains_addr("10.0.0.99".parse().unwrap()));
        assert!(s.contains_addr("10.0.0.101".parse().unwrap()));
    }

    #[test]
    fn union_intersection_difference() {
        let a = set("10.0.0.0/24, 10.0.2.0/24");
        let b = set("10.0.1.0/24, 10.0.2.128/25");
        assert_eq!(a.union(&b), set("10.0.0.0/23, 10.0.2.0/24"));
        assert_eq!(a.intersection(&b), set("10.0.2.128/25"));
        assert_eq!(a.difference(&b), set("10.0.0.0/24, 10.0.2.0/25"));
        assert_eq!(b.difference(&a), set("10.0.1.0/24"));
    }

    #[test]
    fn difference_splits_runs() {
        let a = set("10.0.0.0/22");
        let cut = set("10.0.1.0/24");
        let d = a.difference(&cut);
        assert_eq!(d, set("10.0.0.0/24, 10.0.2.0/23"));
        assert_eq!(d.size(), 1024 - 256);
        assert!(!d.overlaps(&cut));
        assert_eq!(d.union(&cut), a);
    }

    #[test]
    fn figure3_carveout() {
        // Sprint carves the target ROA (63.174.24.0/24 within Continental
        // Broadband's /20+...) — reproduce the exact RC from Figure 3:
        // /20 ∪ /21-extra minus the /24 yields the two published ranges.
        let continental = set("63.174.16.0/20");
        let target = set("63.174.24.0/24");
        let carved = continental.difference(&target);
        assert_eq!(
            carved.ranges(),
            &[
                AddrRange::new("63.174.16.0".parse().unwrap(), "63.174.23.255".parse().unwrap()),
                AddrRange::new("63.174.25.0".parse().unwrap(), "63.174.31.255".parse().unwrap()),
            ]
        );
    }

    #[test]
    fn mixed_family_sets() {
        let s = ResourceSet::from_prefixes(vec![p("10.0.0.0/8"), p("2001:db8::/32")]);
        assert_eq!(s.num_runs(), 2);
        assert!(s.contains_prefix(p("10.1.0.0/16")));
        assert!(s.contains_prefix(p("2001:db8:1::/48")));
        assert!(!s.contains_prefix(p("2001:db9::/32")));
        // Families never merge or intersect.
        let v4 = set("10.0.0.0/8");
        assert_eq!(s.intersection(&v4), v4);
        assert_eq!(s.difference(&v4), ResourceSet::from_prefix(p("2001:db8::/32")));
    }

    #[test]
    fn overlaps_prefix_bisect() {
        let s = set("10.0.0.0/24, 10.0.2.0/24, 10.0.4.0/24");
        assert!(s.overlaps_prefix(p("10.0.2.128/25")));
        assert!(s.overlaps_prefix(p("10.0.0.0/8")));
        assert!(!s.overlaps_prefix(p("10.0.3.0/24")));
        assert!(!s.overlaps_prefix(p("11.0.0.0/8")));
    }

    #[test]
    fn to_prefixes_round_trip() {
        let s = set("63.174.16.0/20").difference(&set("63.174.24.0/24"));
        let tiled = ResourceSet::from_prefixes(s.to_prefixes());
        assert_eq!(tiled, s);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ResourceSet::empty().to_string(), "{}");
        assert_eq!(set("10.0.0.0/24").to_string(), "{[10.0.0.0-10.0.0.255]}");
    }
}
