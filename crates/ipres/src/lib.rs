//! IP resource algebra for the `rpki-risk` workspace.
//!
//! The RPKI binds *arbitrary sets of IP addresses* (not single names) to
//! cryptographic keys, and every attack in *On the Risk of Misbehaving
//! RPKI Authorities* (HotNets '13) is ultimately an operation on those
//! sets: carving a target ROA's space out of a resource certificate,
//! checking RFC 3779 containment during chain validation, or finding the
//! covering ROAs that drive RFC 6811 origin validation.
//!
//! This crate provides the substrate:
//!
//! - [`Addr`], [`Family`] — IPv4/IPv6 addresses on a unified `u128` spine.
//! - [`Prefix`] — CIDR prefixes with cover/overlap tests and parsing.
//! - [`AddrRange`] — inclusive address ranges (RCs may hold non-CIDR
//!   ranges; the paper's Figure 3 carve-out produces exactly those).
//! - [`ResourceSet`] — canonical disjoint-sorted range sets with full
//!   lattice operations (union, intersection, difference, containment).
//! - [`Asn`], [`AsnSet`] — autonomous system numbers and sets thereof.
//! - [`PrefixTrie`] — a binary radix trie for longest-prefix-match and
//!   covering/covered-by queries over large prefix collections.
//!
//! Everything here is deterministic, allocation-light, and panics only
//! on programmer error (documented per method).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod asn;
pub mod prefix;
pub mod range;
pub mod set;
pub mod trie;

pub use addr::{Addr, AddrParseError, Family};
pub use asn::{Asn, AsnSet};
pub use prefix::{Prefix, PrefixParseError};
pub use range::AddrRange;
pub use set::ResourceSet;
pub use trie::PrefixTrie;
