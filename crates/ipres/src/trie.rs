//! A binary radix trie over prefixes.
//!
//! Origin validation (RFC 6811) needs, for every BGP route, the set of
//! VRPs whose prefix *covers* the route's prefix; BGP forwarding needs
//! longest-prefix match. Both are path walks in a bit trie. The trie
//! stores any number of values per prefix (several ROAs can share a
//! prefix with different origin ASNs).
//!
//! The implementation is a plain (non-path-compressed) binary trie: an
//! insert at depth *d* allocates at most *d* nodes. At simulator scale
//! (tens of thousands of prefixes) this is comfortably fast — see the
//! `trie` Criterion bench — and keeps the structure obviously correct,
//! which the property tests then pin to a brute-force oracle.

use crate::addr::{Addr, Family};
use crate::prefix::Prefix;

/// A binary trie mapping [`Prefix`]es to lists of values.
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    v4: Node<V>,
    v6: Node<V>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    values: Vec<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node { values: Vec::new(), children: [None, None] }
    }
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie { v4: Node::default(), v6: Node::default(), len: 0 }
    }

    fn root(&self, family: Family) -> &Node<V> {
        match family {
            Family::V4 => &self.v4,
            Family::V6 => &self.v6,
        }
    }

    fn root_mut(&mut self, family: Family) -> &mut Node<V> {
        match family {
            Family::V4 => &mut self.v4,
            Family::V6 => &mut self.v6,
        }
    }

    /// Number of values stored (not distinct prefixes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`. Multiple values per prefix stack in
    /// insertion order.
    pub fn insert(&mut self, prefix: Prefix, value: V) {
        let mut node = self.root_mut(prefix.family());
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].get_or_insert_with(Box::default);
        }
        node.values.push(value);
        self.len += 1;
    }

    /// Removes every value at exactly `prefix` satisfying `pred`;
    /// returns the removed values.
    pub fn remove_if<F: FnMut(&V) -> bool>(&mut self, prefix: Prefix, mut pred: F) -> Vec<V> {
        let mut node = self.root_mut(prefix.family());
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            match node.children[b].as_deref_mut() {
                Some(child) => node = child,
                None => return Vec::new(),
            }
        }
        let mut removed = Vec::new();
        let mut kept = Vec::with_capacity(node.values.len());
        for v in node.values.drain(..) {
            if pred(&v) {
                removed.push(v);
            } else {
                kept.push(v);
            }
        }
        node.values = kept;
        self.len -= removed.len();
        // Note: empty interior nodes are not pruned; the trie is a cache
        // rebuilt wholesale by relying parties, so transient slack is fine.
        removed
    }

    /// The values stored at exactly `prefix`.
    pub fn exact(&self, prefix: Prefix) -> &[V] {
        let mut node = self.root(prefix.family());
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(child) => node = child,
                None => return &[],
            }
        }
        &node.values
    }

    /// All `(prefix, value)` entries whose prefix covers `prefix`
    /// (including at `prefix` itself), from shortest to longest.
    pub fn covering(&self, prefix: Prefix) -> Vec<(Prefix, &V)> {
        let mut out = Vec::new();
        self.covering_for_each(prefix, |p, v| {
            out.push((p, v));
            true
        });
        out
    }

    /// Calls `f` on every `(prefix, value)` entry whose prefix covers
    /// `prefix` (including at `prefix` itself), shortest to longest,
    /// without allocating. `f` returns whether to keep scanning; the
    /// walk stops early on `false`.
    ///
    /// This is the hot path of origin validation: one covering query
    /// per classified route, so the `Vec` the plain [`Self::covering`]
    /// API returns would be allocated per route per propagation step.
    pub fn covering_for_each<'a, F>(&'a self, prefix: Prefix, mut f: F)
    where
        F: FnMut(Prefix, &'a V) -> bool,
    {
        let mut node = self.root(prefix.family());
        for v in &node.values {
            if !f(Prefix::new(prefix.addr(), 0), v) {
                return;
            }
        }
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    for v in &node.values {
                        if !f(Prefix::new(prefix.addr(), i + 1), v) {
                            return;
                        }
                    }
                }
                None => break,
            }
        }
    }

    /// All `(prefix, value)` entries covered by `prefix` (its subtree,
    /// including `prefix` itself), in depth-first address order.
    pub fn covered_by(&self, prefix: Prefix) -> Vec<(Prefix, &V)> {
        let mut node = self.root(prefix.family());
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(child) => node = child,
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        Self::walk(node, prefix, &mut out);
        out
    }

    fn walk<'a>(node: &'a Node<V>, at: Prefix, out: &mut Vec<(Prefix, &'a V)>) {
        for v in &node.values {
            out.push((at, v));
        }
        if let Some((left, right)) = at.children() {
            if let Some(child) = node.children[0].as_deref() {
                Self::walk(child, left, out);
            }
            if let Some(child) = node.children[1].as_deref() {
                Self::walk(child, right, out);
            }
        }
    }

    /// Longest-prefix match for a single address: the deepest entry on
    /// the address's path, if any.
    pub fn longest_match(&self, addr: Addr) -> Option<(Prefix, &[V])> {
        let host = Prefix::new(addr, addr.family().bits());
        let mut node = self.root(addr.family());
        let mut best: Option<(u8, &Node<V>)> =
            if node.values.is_empty() { None } else { Some((0, node)) };
        for i in 0..host.len() {
            let b = host.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if !node.values.is_empty() {
                        best = Some((i + 1, node));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, n)| (Prefix::new(addr, len), n.values.as_slice()))
    }

    /// Every `(prefix, value)` entry in the trie, v4 subtree first.
    pub fn iter(&self) -> Vec<(Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        Self::walk(&self.v4, Prefix::new(Addr::v4(0), 0), &mut out);
        Self::walk(&self.v6, Prefix::new(Addr::v6(0), 0), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn sample() -> PrefixTrie<u32> {
        let mut t = PrefixTrie::new();
        t.insert(p("63.160.0.0/12"), 1);
        t.insert(p("63.174.16.0/20"), 2);
        t.insert(p("63.174.16.0/22"), 3);
        t.insert(p("63.174.16.0/22"), 33); // second value, same prefix
        t.insert(p("208.0.0.0/11"), 4);
        t.insert(p("2001:db8::/32"), 5);
        t
    }

    #[test]
    fn exact_lookup() {
        let t = sample();
        assert_eq!(t.exact(p("63.174.16.0/22")), &[3, 33]);
        assert_eq!(t.exact(p("63.174.16.0/21")), &[] as &[u32]);
        assert_eq!(t.exact(p("2001:db8::/32")), &[5]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn covering_walks_path() {
        let t = sample();
        // 63.174.17.0/24 sits inside the /12, the /20, and the /22.
        let cov = t.covering(p("63.174.17.0/24"));
        let prefixes: Vec<Prefix> = cov.iter().map(|(q, _)| *q).collect();
        assert_eq!(
            prefixes,
            vec![p("63.160.0.0/12"), p("63.174.16.0/20"), p("63.174.16.0/22"), p("63.174.16.0/22")]
        );
        // 63.174.20.0/24 escapes the /22 but not the /20.
        let cov = t.covering(p("63.174.20.0/24"));
        let prefixes: Vec<Prefix> = cov.iter().map(|(q, _)| *q).collect();
        assert_eq!(prefixes, vec![p("63.160.0.0/12"), p("63.174.16.0/20")]);
        // At the /22 itself we see all three levels.
        let cov = t.covering(p("63.174.16.0/22"));
        let vals: Vec<u32> = cov.iter().map(|(_, v)| **v).collect();
        assert_eq!(vals, vec![1, 2, 3, 33]);
        // Nothing covers an unrelated prefix.
        assert!(t.covering(p("8.0.0.0/8")).is_empty());
    }

    #[test]
    fn covering_for_each_stops_on_false() {
        let t = sample();
        let mut seen = Vec::new();
        t.covering_for_each(p("63.174.17.0/24"), |_, v| {
            seen.push(*v);
            seen.len() < 2
        });
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn covered_by_walks_subtree() {
        let t = sample();
        let sub = t.covered_by(p("63.160.0.0/12"));
        let vals: Vec<u32> = sub.iter().map(|(_, v)| **v).collect();
        assert_eq!(vals, vec![1, 2, 3, 33]);
        assert!(t.covered_by(p("9.0.0.0/8")).is_empty());
        // covered_by at a value-less midpoint still finds descendants.
        let sub = t.covered_by(p("63.174.16.0/21"));
        let vals: Vec<u32> = sub.iter().map(|(_, v)| **v).collect();
        assert_eq!(vals, vec![3, 33]);
    }

    #[test]
    fn longest_match_prefers_deepest() {
        let t = sample();
        let (q, vals) = t.longest_match("63.174.17.9".parse().unwrap()).unwrap();
        assert_eq!(q, p("63.174.16.0/22"));
        assert_eq!(vals, &[3, 33]);
        let (q, vals) = t.longest_match("63.174.20.9".parse().unwrap()).unwrap();
        assert_eq!(q, p("63.174.16.0/20"));
        assert_eq!(vals, &[2]);
        let (q, _) = t.longest_match("63.161.0.1".parse().unwrap()).unwrap();
        assert_eq!(q, p("63.160.0.0/12"));
        assert!(t.longest_match("8.8.8.8".parse().unwrap()).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 99);
        let (q, vals) = t.longest_match("8.8.8.8".parse().unwrap()).unwrap();
        assert_eq!(q, p("0.0.0.0/0"));
        assert_eq!(vals, &[99]);
        // But not across families.
        assert!(t.longest_match("2001:db8::1".parse().unwrap()).is_none());
    }

    #[test]
    fn remove_if_filters_values() {
        let mut t = sample();
        let removed = t.remove_if(p("63.174.16.0/22"), |v| *v == 3);
        assert_eq!(removed, vec![3]);
        assert_eq!(t.exact(p("63.174.16.0/22")), &[33]);
        assert_eq!(t.len(), 5);
        // Removing at an absent prefix is a no-op.
        assert!(t.remove_if(p("1.0.0.0/8"), |_| true).is_empty());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn iter_visits_everything() {
        let t = sample();
        let all = t.iter();
        assert_eq!(all.len(), 6);
        let vals: Vec<u32> = all.iter().map(|(_, v)| **v).collect();
        assert_eq!(vals, vec![1, 2, 3, 33, 4, 5]);
    }

    #[test]
    fn families_are_isolated() {
        let t = sample();
        assert!(t.covering(p("::/0")).is_empty());
        let sub = t.covered_by(p("::/0"));
        assert_eq!(sub.len(), 1);
        assert_eq!(*sub[0].1, 5);
    }
}
