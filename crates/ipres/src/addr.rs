//! IP addresses on a unified `u128` spine.
//!
//! IPv4 addresses are stored in the low 32 bits of a `u128`; IPv6
//! addresses use the full width. Keeping one integer representation lets
//! the range/set algebra in [`crate::set`] be family-agnostic: a
//! [`ResourceSet`](crate::ResourceSet) simply keeps one run list per
//! [`Family`].

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Address family of an [`Addr`], [`Prefix`](crate::Prefix), or range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Family {
    /// IPv4: 32-bit addresses.
    V4,
    /// IPv6: 128-bit addresses.
    V6,
}

impl Family {
    /// Number of bits in an address of this family (32 or 128).
    #[inline]
    pub const fn bits(self) -> u8 {
        match self {
            Family::V4 => 32,
            Family::V6 => 128,
        }
    }

    /// The largest address value representable in this family.
    #[inline]
    pub const fn max_value(self) -> u128 {
        match self {
            Family::V4 => u32::MAX as u128,
            Family::V6 => u128::MAX,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Family::V4 => f.write_str("IPv4"),
            Family::V6 => f.write_str("IPv6"),
        }
    }
}

/// A single IP address of either family.
///
/// Ordering sorts all IPv4 addresses before all IPv6 addresses and is
/// numeric within a family, which gives [`ResourceSet`](crate::ResourceSet)
/// a total canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr {
    family: Family,
    value: u128,
}

/// Error parsing an [`Addr`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError {
    input: String,
}

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IP address: {:?}", self.input)
    }
}

impl std::error::Error for AddrParseError {}

impl Addr {
    /// Builds an IPv4 address from its 32-bit value.
    #[inline]
    pub const fn v4(value: u32) -> Self {
        Addr { family: Family::V4, value: value as u128 }
    }

    /// Builds an IPv6 address from its 128-bit value.
    #[inline]
    pub const fn v6(value: u128) -> Self {
        Addr { family: Family::V6, value }
    }

    /// Builds an IPv4 address from dotted-quad octets.
    #[inline]
    pub const fn v4_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr::v4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Builds an address of `family` from a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds the family's address width (programmer
    /// error: a v4 address must fit in 32 bits).
    #[inline]
    pub fn new(family: Family, value: u128) -> Self {
        assert!(value <= family.max_value(), "address value {value:#x} out of range for {family}");
        Addr { family, value }
    }

    /// The address family.
    #[inline]
    pub const fn family(self) -> Family {
        self.family
    }

    /// The raw numeric value (low 32 bits meaningful for IPv4).
    #[inline]
    pub const fn value(self) -> u128 {
        self.value
    }

    /// The address numerically after this one, or `None` at the top of
    /// the family's space.
    #[inline]
    pub fn succ(self) -> Option<Self> {
        if self.value == self.family.max_value() {
            None
        } else {
            Some(Addr { family: self.family, value: self.value + 1 })
        }
    }

    /// The address numerically before this one, or `None` at zero.
    #[inline]
    pub fn pred(self) -> Option<Self> {
        if self.value == 0 {
            None
        } else {
            Some(Addr { family: self.family, value: self.value - 1 })
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.family {
            Family::V4 => {
                let v = self.value as u32;
                write!(f, "{}.{}.{}.{}", v >> 24, (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff)
            }
            Family::V6 => {
                // Uncompressed colon-hex is enough for a simulator; we
                // never round-trip through external tooling.
                let v = self.value;
                let groups: Vec<String> =
                    (0..8).rev().map(|i| format!("{:x}", (v >> (i * 16)) & 0xffff)).collect();
                f.write_str(&groups.join(":"))
            }
        }
    }
}

impl FromStr for Addr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || AddrParseError { input: s.to_owned() };
        if s.contains(':') {
            // IPv6: full or `::`-compressed colon-hex.
            let parse_groups = |part: &str| -> Result<Vec<u128>, AddrParseError> {
                if part.is_empty() {
                    return Ok(Vec::new());
                }
                part.split(':')
                    .map(|g| {
                        u128::from_str_radix(g, 16).map_err(|_| err()).and_then(|v| {
                            if v > 0xffff {
                                Err(err())
                            } else {
                                Ok(v)
                            }
                        })
                    })
                    .collect()
            };
            let (head, tail) = match s.find("::") {
                Some(pos) => (&s[..pos], &s[pos + 2..]),
                None => (s, ""),
            };
            let head_groups = parse_groups(head)?;
            if s.contains("::") {
                let tail_groups = parse_groups(tail)?;
                if head_groups.len() + tail_groups.len() > 7 {
                    return Err(err());
                }
                let mut groups = head_groups;
                groups.resize(8 - tail_groups.len(), 0);
                groups.extend(tail_groups);
                let mut v: u128 = 0;
                for g in groups {
                    v = (v << 16) | g;
                }
                Ok(Addr::v6(v))
            } else {
                if head_groups.len() != 8 {
                    return Err(err());
                }
                let mut v: u128 = 0;
                for g in head_groups {
                    v = (v << 16) | g;
                }
                Ok(Addr::v6(v))
            }
        } else {
            let octets: Vec<&str> = s.split('.').collect();
            if octets.len() != 4 {
                return Err(err());
            }
            let mut v: u32 = 0;
            for o in octets {
                let b: u8 = o.parse().map_err(|_| err())?;
                v = (v << 8) | b as u32;
            }
            Ok(Addr::v4(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_display_round_trip() {
        let a = Addr::v4_octets(63, 160, 0, 1);
        assert_eq!(a.to_string(), "63.160.0.1");
        assert_eq!("63.160.0.1".parse::<Addr>().unwrap(), a);
    }

    #[test]
    fn v4_rejects_garbage() {
        assert!("63.160.0".parse::<Addr>().is_err());
        assert!("63.160.0.256".parse::<Addr>().is_err());
        assert!("hello".parse::<Addr>().is_err());
        assert!("1.2.3.4.5".parse::<Addr>().is_err());
    }

    #[test]
    fn v6_parse_full_and_compressed() {
        let full = "2001:db8:0:0:0:0:0:1".parse::<Addr>().unwrap();
        let compressed = "2001:db8::1".parse::<Addr>().unwrap();
        assert_eq!(full, compressed);
        assert_eq!(full.family(), Family::V6);
        assert_eq!(full.value(), 0x2001_0db8_0000_0000_0000_0000_0000_0001);
    }

    #[test]
    fn v6_all_zero_compression() {
        assert_eq!("::".parse::<Addr>().unwrap(), Addr::v6(0));
        assert_eq!("::1".parse::<Addr>().unwrap(), Addr::v6(1));
        assert_eq!("1::".parse::<Addr>().unwrap().value() >> 112, 1);
    }

    #[test]
    fn v6_rejects_garbage() {
        assert!("2001:db8".parse::<Addr>().is_err());
        assert!("1:2:3:4:5:6:7:8:9".parse::<Addr>().is_err());
        assert!("12345::".parse::<Addr>().is_err());
    }

    #[test]
    fn ordering_puts_v4_before_v6() {
        assert!(Addr::v4(u32::MAX) < Addr::v6(0));
    }

    #[test]
    fn succ_and_pred() {
        assert_eq!(Addr::v4(1).pred(), Some(Addr::v4(0)));
        assert_eq!(Addr::v4(0).pred(), None);
        assert_eq!(Addr::v4(u32::MAX).succ(), None);
        assert_eq!(Addr::v4(41).succ(), Some(Addr::v4(42)));
        assert_eq!(Addr::v6(u128::MAX).succ(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn v4_value_overflow_panics() {
        let _ = Addr::new(Family::V4, 1 << 33);
    }
}
