//! Autonomous system numbers.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A 32-bit autonomous system number, e.g. `AS1239` (Sprint in the
/// paper's Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl Asn {
    /// The raw number.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

/// Error parsing an [`Asn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsnParseError(String);

impl fmt::Display for AsnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ASN: {:?}", self.0)
    }
}

impl std::error::Error for AsnParseError {}

impl FromStr for Asn {
    type Err = AsnParseError;

    /// Accepts `"1239"` or `"AS1239"` (case-insensitive prefix).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix("AS").or_else(|| s.strip_prefix("as")).unwrap_or(s);
        digits.parse::<u32>().map(Asn).map_err(|_| AsnParseError(s.to_owned()))
    }
}

/// A sorted set of ASNs. Resource certificates may carry AS resources in
/// addition to IP resources; the simulator uses this for completeness of
/// the RFC 3779 model even though the paper's attacks act on IP space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsnSet {
    /// Sorted, deduplicated members.
    members: Vec<Asn>,
}

impl AsnSet {
    /// The empty set.
    pub fn empty() -> Self {
        AsnSet::default()
    }

    /// Builds a set from any iterator (duplicates welcome).
    pub fn from_iter_normalised<I: IntoIterator<Item = Asn>>(iter: I) -> Self {
        let mut members: Vec<Asn> = iter.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        AsnSet { members }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Membership test.
    pub fn contains(&self, asn: Asn) -> bool {
        self.members.binary_search(&asn).is_ok()
    }

    /// Subset test.
    pub fn contains_set(&self, other: &AsnSet) -> bool {
        other.members.iter().all(|a| self.contains(*a))
    }

    /// Set union.
    pub fn union(&self, other: &AsnSet) -> AsnSet {
        AsnSet::from_iter_normalised(self.members.iter().chain(other.members.iter()).copied())
    }

    /// The members, sorted.
    pub fn members(&self) -> &[Asn] {
        &self.members
    }
}

impl FromIterator<Asn> for AsnSet {
    fn from_iter<T: IntoIterator<Item = Asn>>(iter: T) -> Self {
        AsnSet::from_iter_normalised(iter)
    }
}

impl fmt::Display for AsnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.members.iter().map(|a| a.to_string()).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_forms() {
        assert_eq!("1239".parse::<Asn>().unwrap(), Asn(1239));
        assert_eq!("AS1239".parse::<Asn>().unwrap(), Asn(1239));
        assert_eq!("as17054".parse::<Asn>().unwrap(), Asn(17054));
        assert!("ASX".parse::<Asn>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Asn(7341).to_string(), "AS7341");
    }

    #[test]
    fn set_dedup_and_membership() {
        let s: AsnSet = [Asn(3), Asn(1), Asn(3), Asn(2)].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert!(s.contains(Asn(2)));
        assert!(!s.contains(Asn(4)));
        assert!(s.contains_set(&[Asn(1), Asn(3)].into_iter().collect()));
        assert!(!s.contains_set(&[Asn(1), Asn(4)].into_iter().collect()));
    }

    #[test]
    fn union_merges() {
        let a: AsnSet = [Asn(1), Asn(2)].into_iter().collect();
        let b: AsnSet = [Asn(2), Asn(3)].into_iter().collect();
        assert_eq!(a.union(&b), [Asn(1), Asn(2), Asn(3)].into_iter().collect());
    }

    #[test]
    fn empty_set_is_subset_of_everything() {
        let a: AsnSet = [Asn(1)].into_iter().collect();
        assert!(a.contains_set(&AsnSet::empty()));
        assert!(AsnSet::empty().contains_set(&AsnSet::empty()));
    }
}
