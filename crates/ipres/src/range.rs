//! Inclusive address ranges.
//!
//! Resource certificates may hold address blocks that are not CIDR
//! prefixes — the paper's Figure 3 shows Sprint overwriting Continental
//! Broadband's RC with the ranges `[63.174.16.0–63.174.23.255]` and
//! `[63.174.25.0–63.174.31.255]`, which is exactly a carve-out that no
//! single prefix can express. [`AddrRange`] is the primitive;
//! [`ResourceSet`](crate::ResourceSet) holds canonical unions of them.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{Addr, Family};
use crate::prefix::Prefix;

/// An inclusive range of addresses `[lo, hi]` within one family.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AddrRange {
    lo: Addr,
    hi: Addr,
}

impl AddrRange {
    /// Builds a range.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints mix families or `lo > hi`.
    pub fn new(lo: Addr, hi: Addr) -> Self {
        assert_eq!(lo.family(), hi.family(), "range endpoints must share a family");
        assert!(lo <= hi, "range lo must not exceed hi");
        AddrRange { lo, hi }
    }

    /// The lowest address in the range.
    #[inline]
    pub const fn lo(self) -> Addr {
        self.lo
    }

    /// The highest address in the range.
    #[inline]
    pub const fn hi(self) -> Addr {
        self.hi
    }

    /// The address family.
    #[inline]
    pub const fn family(self) -> Family {
        self.lo.family()
    }

    /// Number of addresses in the range. Saturates at `u128::MAX` for
    /// the full IPv6 space (which contains `u128::MAX + 1` addresses).
    pub fn size(self) -> u128 {
        (self.hi.value() - self.lo.value()).saturating_add(1)
    }

    /// Whether `addr` falls inside the range.
    pub fn contains_addr(self, addr: Addr) -> bool {
        addr.family() == self.family() && self.lo <= addr && addr <= self.hi
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(self, other: AddrRange) -> bool {
        self.family() == other.family() && self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the ranges share any address.
    pub fn overlaps(self, other: AddrRange) -> bool {
        self.family() == other.family() && self.lo <= other.hi && other.lo <= self.hi
    }

    /// The intersection of two ranges, if non-empty.
    pub fn intersect(self, other: AddrRange) -> Option<AddrRange> {
        if !self.overlaps(other) {
            return None;
        }
        Some(AddrRange::new(self.lo.max(other.lo), self.hi.min(other.hi)))
    }

    /// Whether `other` starts immediately after `self` ends (so the two
    /// can merge into one run).
    pub fn abuts(self, other: AddrRange) -> bool {
        self.family() == other.family()
            && match self.hi.succ() {
                Some(next) => next == other.lo,
                None => false,
            }
    }

    /// Decomposes the range into the minimal list of CIDR prefixes that
    /// exactly tile it, in address order.
    ///
    /// This is the classic greedy alignment walk: at each step emit the
    /// largest prefix that starts at the cursor and fits in what
    /// remains.
    pub fn to_prefixes(self) -> Vec<Prefix> {
        let fam = self.family();
        let bits = fam.bits() as u32;
        let mut out = Vec::new();
        let mut cur = self.lo.value();
        let end = self.hi.value();
        loop {
            // Largest block size allowed by the alignment of `cur`.
            let align = if cur == 0 { bits } else { cur.trailing_zeros().min(bits) };
            // Largest block size that still fits before `end`.
            let remaining = end - cur + 1; // >= 1; cannot overflow: end >= cur
                                           // floor(log2(remaining)); remaining >= 1.
            let fit = 127 - remaining.leading_zeros();
            let k = align.min(fit).min(bits);
            let len = (bits - k) as u8;
            out.push(Prefix::new(Addr::new(fam, cur), len));
            let step = 1u128 << k;
            match cur.checked_add(step) {
                Some(next) if next <= end => cur = next,
                _ => break,
            }
        }
        out
    }
}

impl From<Prefix> for AddrRange {
    fn from(p: Prefix) -> Self {
        p.range()
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}-{}]", self.lo, self.hi)
    }
}

impl fmt::Debug for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AddrRange({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &str, hi: &str) -> AddrRange {
        AddrRange::new(lo.parse().unwrap(), hi.parse().unwrap())
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn size_and_contains() {
        let range = r("63.174.16.0", "63.174.23.255");
        assert_eq!(range.size(), 2048);
        assert!(range.contains_addr("63.174.20.1".parse().unwrap()));
        assert!(!range.contains_addr("63.174.24.0".parse().unwrap()));
        assert!(range.contains(r("63.174.17.0", "63.174.17.255")));
        assert!(!range.contains(r("63.174.17.0", "63.174.24.0")));
    }

    #[test]
    fn intersect_and_overlap() {
        let a = r("10.0.0.0", "10.0.0.255");
        let b = r("10.0.0.128", "10.0.1.255");
        assert!(a.overlaps(b));
        assert_eq!(a.intersect(b), Some(r("10.0.0.128", "10.0.0.255")));
        let c = r("10.0.2.0", "10.0.2.255");
        assert!(!a.overlaps(c));
        assert_eq!(a.intersect(c), None);
    }

    #[test]
    fn abuts_merges_only_adjacent() {
        assert!(r("10.0.0.0", "10.0.0.127").abuts(r("10.0.0.128", "10.0.0.255")));
        assert!(!r("10.0.0.0", "10.0.0.127").abuts(r("10.0.0.129", "10.0.0.255")));
        // Top of space never abuts anything.
        assert!(!r("255.255.255.0", "255.255.255.255").abuts(r("0.0.0.0", "0.0.0.1")));
    }

    #[test]
    fn prefix_round_trip() {
        let pre = p("63.174.16.0/20");
        assert_eq!(AddrRange::from(pre).to_prefixes(), vec![pre]);
    }

    #[test]
    fn figure3_carveout_decomposition() {
        // [63.174.16.0 - 63.174.23.255] = 63.174.16.0/21
        assert_eq!(r("63.174.16.0", "63.174.23.255").to_prefixes(), vec![p("63.174.16.0/21")]);
        // [63.174.25.0 - 63.174.31.255] = /24 + /23 + /22 (greedy walk).
        assert_eq!(
            r("63.174.25.0", "63.174.31.255").to_prefixes(),
            vec![p("63.174.25.0/24"), p("63.174.26.0/23"), p("63.174.28.0/22")]
        );
    }

    #[test]
    fn full_v4_space_decomposes_to_default() {
        assert_eq!(r("0.0.0.0", "255.255.255.255").to_prefixes(), vec![p("0.0.0.0/0")]);
    }

    #[test]
    fn unaligned_range_decomposition_covers_exactly() {
        let range = r("10.0.0.3", "10.0.0.9");
        let prefixes = range.to_prefixes();
        let total: u128 = prefixes.iter().map(|q| q.range().size()).sum();
        assert_eq!(total, range.size());
        for q in &prefixes {
            assert!(range.contains(q.range()));
        }
        // Tiles must be disjoint and sorted.
        for w in prefixes.windows(2) {
            assert!(w[0].range().hi() < w[1].range().lo());
        }
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn inverted_range_panics() {
        let _ = r("10.0.0.9", "10.0.0.3");
    }
}
