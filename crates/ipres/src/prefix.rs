//! CIDR prefixes.
//!
//! A [`Prefix`] is the unit the RPKI reasons about: ROAs authorise a
//! prefix (plus subprefixes up to a max length), BGP routes carry one,
//! and RFC 6811's *cover* relation between a VRP's prefix and a route's
//! prefix decides validity. The paper's footnote 1 defines *covers*
//! exactly as implemented by [`Prefix::covers`].

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::addr::{Addr, Family};
use crate::range::AddrRange;

/// A CIDR prefix: a base address and a length.
///
/// Invariant: the host bits below `len` are zero, and `len` does not
/// exceed the family's address width. Constructors enforce both.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: Addr,
    len: u8,
}

/// Error parsing a [`Prefix`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError {
    input: String,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {:?}", self.input)
    }
}

impl std::error::Error for PrefixParseError {}

impl Prefix {
    /// Builds a prefix, normalising by zeroing host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the address family's width.
    pub fn new(addr: Addr, len: u8) -> Self {
        let bits = addr.family().bits();
        assert!(len <= bits, "prefix length {len} exceeds {bits} bits");
        let masked = addr.value() & Self::mask(addr.family(), len);
        Prefix { addr: Addr::new(addr.family(), masked), len }
    }

    /// Convenience constructor for IPv4 prefixes from octets.
    pub fn v4(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        Prefix::new(Addr::v4_octets(a, b, c, d), len)
    }

    /// The network mask for `len` bits in `family`.
    fn mask(family: Family, len: u8) -> u128 {
        let bits = family.bits();
        if len == 0 {
            0
        } else {
            let shift = bits - len;
            (family.max_value() >> shift) << shift
        }
    }

    /// The (host-bits-zero) base address.
    #[inline]
    pub const fn addr(self) -> Addr {
        self.addr
    }

    /// The prefix length.
    ///
    /// Length 0 is the default route, not emptiness — see
    /// [`is_default`](Self::is_default).
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length (whole address space) prefix.
    #[inline]
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// The address family.
    #[inline]
    pub const fn family(self) -> Family {
        self.addr.family()
    }

    /// First address in the prefix (same as [`Prefix::addr`]).
    #[inline]
    pub const fn first(self) -> Addr {
        self.addr
    }

    /// Last address in the prefix.
    pub fn last(self) -> Addr {
        let fam = self.family();
        let hi = self.addr.value() | !Self::mask(fam, self.len) & fam.max_value();
        Addr::new(fam, hi)
    }

    /// The prefix as an inclusive address range.
    pub fn range(self) -> AddrRange {
        AddrRange::new(self.first(), self.last())
    }

    /// Whether `self` covers `other` per the paper's footnote 1:
    /// `other`'s address space is a subset of `self`'s (equality counts).
    ///
    /// Always false across families.
    pub fn covers(self, other: Prefix) -> bool {
        self.family() == other.family()
            && self.len <= other.len
            && other.addr.value() & Self::mask(self.family(), self.len) == self.addr.value()
    }

    /// Whether `self` and `other` share any addresses.
    pub fn overlaps(self, other: Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(self, addr: Addr) -> bool {
        addr.family() == self.family()
            && addr.value() & Self::mask(self.family(), self.len) == self.addr.value()
    }

    /// The immediate parent prefix (one bit shorter), or `None` for the
    /// default prefix.
    pub fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.addr, self.len - 1))
        }
    }

    /// The two immediate children (one bit longer), or `None` when the
    /// prefix is already a host route.
    pub fn children(self) -> Option<(Prefix, Prefix)> {
        let bits = self.family().bits();
        if self.len == bits {
            return None;
        }
        let left = Prefix::new(self.addr, self.len + 1);
        let branch = 1u128 << (bits - self.len - 1);
        let right = Prefix::new(Addr::new(self.family(), self.addr.value() | branch), self.len + 1);
        Some((left, right))
    }

    /// Iterates over all subprefixes of `self` with exactly length
    /// `len`, in address order.
    ///
    /// # Panics
    ///
    /// Panics if `len < self.len()`, if `len` exceeds the family width,
    /// or if the expansion would exceed 2^24 prefixes (guards against
    /// accidentally iterating a /0 into host routes).
    pub fn subprefixes(self, len: u8) -> impl Iterator<Item = Prefix> {
        let bits = self.family().bits();
        assert!(len >= self.len && len <= bits, "bad subprefix length {len}");
        let extra = (len - self.len) as u32;
        assert!(extra <= 24, "refusing to expand {extra} extra bits of subprefixes");
        let count: u128 = 1 << extra;
        let step: u128 = 1 << (bits - len);
        let base = self.addr.value();
        let family = self.family();
        (0..count).map(move |i| Prefix::new(Addr::new(family, base + i * step), len))
    }

    /// The bit at position `i` (0 = most significant) of the base
    /// address. Used by the trie.
    pub(crate) fn bit(self, i: u8) -> bool {
        debug_assert!(i < self.family().bits());
        let shift = self.family().bits() - 1 - i;
        (self.addr.value() >> shift) & 1 == 1
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

/// Prefixes order by family, then base address, then length — so a
/// prefix sorts immediately before its subprefixes, which makes sorted
/// scans cover-friendly.
impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> Ordering {
        self.addr.cmp(&other.addr).then(self.len.cmp(&other.len))
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || PrefixParseError { input: s.to_owned() };
        let (addr_s, len_s) = s.split_once('/').ok_or_else(err)?;
        let addr: Addr = addr_s.parse().map_err(|_| err())?;
        let len: u8 = len_s.parse().map_err(|_| err())?;
        if len > addr.family().bits() {
            return Err(err());
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(p("63.160.0.0/12").to_string(), "63.160.0.0/12");
        assert_eq!(p("0.0.0.0/0").to_string(), "0.0.0.0/0");
        assert_eq!(p("2001:db8::/32").to_string(), "2001:db8:0:0:0:0:0:0/32");
    }

    #[test]
    fn constructor_zeroes_host_bits() {
        assert_eq!(Prefix::v4(63, 174, 23, 9, 20), p("63.174.16.0/20"));
    }

    #[test]
    fn parse_rejects_bad_lengths() {
        assert!("1.2.3.4/33".parse::<Prefix>().is_err());
        assert!("1.2.3.4".parse::<Prefix>().is_err());
        assert!("::/129".parse::<Prefix>().is_err());
    }

    #[test]
    fn covers_paper_example() {
        // Footnote 1: 63.160.0.0/12 covers 63.168.93.0/24.
        assert!(p("63.160.0.0/12").covers(p("63.168.93.0/24")));
        assert!(p("63.160.0.0/12").covers(p("63.160.0.0/12")));
        assert!(!p("63.168.93.0/24").covers(p("63.160.0.0/12")));
        assert!(!p("63.160.0.0/12").covers(p("64.0.0.0/24")));
    }

    #[test]
    fn covers_is_family_scoped() {
        assert!(!p("0.0.0.0/0").covers(p("::/0")));
    }

    #[test]
    fn first_last_range() {
        let pre = p("63.174.16.0/20");
        assert_eq!(pre.first().to_string(), "63.174.16.0");
        assert_eq!(pre.last().to_string(), "63.174.31.255");
    }

    #[test]
    fn parent_children_round_trip() {
        let pre = p("63.174.16.0/20");
        let (l, r) = pre.children().unwrap();
        assert_eq!(l, p("63.174.16.0/21"));
        assert_eq!(r, p("63.174.24.0/21"));
        assert_eq!(l.parent().unwrap(), pre);
        assert_eq!(r.parent().unwrap(), pre);
        assert!(p("0.0.0.0/0").parent().is_none());
        assert!(p("1.2.3.4/32").children().is_none());
    }

    #[test]
    fn subprefix_enumeration() {
        let subs: Vec<Prefix> = p("63.174.16.0/20").subprefixes(22).collect();
        assert_eq!(
            subs,
            vec![
                p("63.174.16.0/22"),
                p("63.174.20.0/22"),
                p("63.174.24.0/22"),
                p("63.174.28.0/22"),
            ]
        );
        // len == self.len yields exactly self.
        assert_eq!(p("10.0.0.0/8").subprefixes(8).collect::<Vec<_>>(), vec![p("10.0.0.0/8")]);
    }

    #[test]
    fn contains_addr() {
        assert!(p("63.160.0.0/12").contains("63.174.23.0".parse().unwrap()));
        assert!(!p("63.160.0.0/12").contains("63.128.0.0".parse().unwrap()));
    }

    #[test]
    fn ordering_sorts_cover_before_covered() {
        let mut v = vec![p("63.174.16.0/22"), p("63.160.0.0/12"), p("63.174.16.0/20")];
        v.sort();
        assert_eq!(v, vec![p("63.160.0.0/12"), p("63.174.16.0/20"), p("63.174.16.0/22")]);
    }

    #[test]
    #[should_panic(expected = "refusing to expand")]
    fn subprefix_guard() {
        let _ = p("0.0.0.0/0").subprefixes(32);
    }
}
