//! Property tests pinning the resource algebra to brute-force oracles.
//!
//! DESIGN.md invariants 1 and 2 live here: `ResourceSet` is a lattice in
//! canonical form, and `PrefixTrie` queries agree with linear scans.

use ipres::{Addr, AddrRange, Family, Prefix, PrefixTrie, ResourceSet};
use proptest::prelude::*;

/// A small universe keeps overlap probability high: 16-bit v4 values
/// widened into sparse ranges.
fn arb_range() -> impl Strategy<Value = AddrRange> {
    (0u32..=0xffff, 0u32..=0xffff).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        AddrRange::new(Addr::v4(lo << 8), Addr::v4((hi << 8) | 0xff))
    })
}

fn arb_set() -> impl Strategy<Value = ResourceSet> {
    proptest::collection::vec(arb_range(), 0..8).prop_map(ResourceSet::from_ranges)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(v, len)| Prefix::new(Addr::v4(v), len))
}

/// Membership oracle via the canonical runs.
fn member(set: &ResourceSet, addr: Addr) -> bool {
    set.ranges().iter().any(|r| r.contains_addr(addr))
}

/// Sample points that exercise run boundaries of both sets.
fn boundary_points(a: &ResourceSet, b: &ResourceSet) -> Vec<Addr> {
    let mut pts = Vec::new();
    for r in a.ranges().iter().chain(b.ranges()) {
        for addr in [r.lo(), r.hi()] {
            pts.push(addr);
            if let Some(x) = addr.pred() {
                pts.push(x);
            }
            if let Some(x) = addr.succ() {
                pts.push(x);
            }
        }
    }
    pts
}

proptest! {
    #[test]
    fn canonical_form_is_sorted_disjoint_nonabutting(s in arb_set()) {
        for w in s.ranges().windows(2) {
            prop_assert!(w[0].hi() < w[1].lo());
            prop_assert!(!w[0].abuts(w[1]));
        }
    }

    #[test]
    fn union_is_pointwise_or(a in arb_set(), b in arb_set()) {
        let u = a.union(&b);
        for pt in boundary_points(&a, &b) {
            prop_assert_eq!(member(&u, pt), member(&a, pt) || member(&b, pt));
        }
    }

    #[test]
    fn intersection_is_pointwise_and(a in arb_set(), b in arb_set()) {
        let i = a.intersection(&b);
        for pt in boundary_points(&a, &b) {
            prop_assert_eq!(member(&i, pt), member(&a, pt) && member(&b, pt));
        }
    }

    #[test]
    fn difference_is_pointwise_andnot(a in arb_set(), b in arb_set()) {
        let d = a.difference(&b);
        for pt in boundary_points(&a, &b) {
            prop_assert_eq!(member(&d, pt), member(&a, pt) && !member(&b, pt));
        }
    }

    #[test]
    fn difference_union_restores(a in arb_set(), b in arb_set()) {
        // (a − b) ∪ (a ∩ b) == a
        let rebuilt = a.difference(&b).union(&a.intersection(&b));
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn covers_iff_difference_empty(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.contains_set(&b), b.difference(&a).is_empty());
    }

    #[test]
    fn overlaps_iff_intersection_nonempty(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.overlaps(&b), !a.intersection(&b).is_empty());
    }

    #[test]
    fn size_is_additive_over_difference(a in arb_set(), b in arb_set()) {
        let inter = a.intersection(&b);
        let diff = a.difference(&b);
        prop_assert_eq!(diff.size() + inter.size(), a.size());
    }

    #[test]
    fn to_prefixes_round_trips(a in arb_set()) {
        let tiled = ResourceSet::from_prefixes(a.to_prefixes());
        prop_assert_eq!(tiled, a);
    }

    #[test]
    fn prefix_tiling_is_disjoint_and_minimal_locally(a in arb_set()) {
        let tiles = a.to_prefixes();
        for w in tiles.windows(2) {
            prop_assert!(w[0].range().hi() < w[1].range().lo());
            // Local minimality: two sibling tiles of one parent would
            // have been emitted as the parent by the greedy walk.
            prop_assert!(
                w[0].parent() != w[1].parent() || w[0].len() != w[1].len(),
                "sibling tiles {} and {} should have merged",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn trie_covering_agrees_with_scan(entries in proptest::collection::vec(arb_prefix(), 0..40), probe in arb_prefix()) {
        let mut trie = PrefixTrie::new();
        for (i, p) in entries.iter().enumerate() {
            trie.insert(*p, i);
        }
        let mut got: Vec<(Prefix, usize)> =
            trie.covering(probe).into_iter().map(|(p, v)| (p, *v)).collect();
        got.sort();
        let mut want: Vec<(Prefix, usize)> = entries
            .iter()
            .enumerate()
            .filter(|(_, p)| p.covers(probe))
            .map(|(i, p)| (*p, i))
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn trie_covered_by_agrees_with_scan(entries in proptest::collection::vec(arb_prefix(), 0..40), probe in arb_prefix()) {
        let mut trie = PrefixTrie::new();
        for (i, p) in entries.iter().enumerate() {
            trie.insert(*p, i);
        }
        let mut got: Vec<(Prefix, usize)> =
            trie.covered_by(probe).into_iter().map(|(p, v)| (p, *v)).collect();
        got.sort();
        let mut want: Vec<(Prefix, usize)> = entries
            .iter()
            .enumerate()
            .filter(|(_, p)| probe.covers(**p))
            .map(|(i, p)| (*p, i))
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// The allocation-free walk visits exactly the entries `covering`
    /// returns, in the same shortest-prefix-first order, and agrees
    /// with the brute-force scan.
    #[test]
    fn trie_covering_for_each_agrees_with_covering_and_scan(
        entries in proptest::collection::vec(arb_prefix(), 0..40),
        probe in arb_prefix(),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, p) in entries.iter().enumerate() {
            trie.insert(*p, i);
        }
        let mut walked: Vec<(Prefix, usize)> = Vec::new();
        trie.covering_for_each(probe, |p, v| {
            walked.push((p, *v));
            true
        });
        let full: Vec<(Prefix, usize)> =
            trie.covering(probe).into_iter().map(|(p, v)| (p, *v)).collect();
        prop_assert_eq!(&walked, &full);
        for w in walked.windows(2) {
            prop_assert!(w[0].0.len() <= w[1].0.len(), "walk must be shortest-prefix-first");
        }
        let mut got = walked.clone();
        got.sort();
        let mut want: Vec<(Prefix, usize)> = entries
            .iter()
            .enumerate()
            .filter(|(_, p)| p.covers(probe))
            .map(|(i, p)| (*p, i))
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Returning `false` after `k` callbacks yields exactly the first
    /// `k` elements of the full covering sequence — the early-stop path
    /// truncates, never reorders or skips.
    #[test]
    fn trie_covering_for_each_early_stop_is_a_prefix(
        entries in proptest::collection::vec(arb_prefix(), 1..40),
        probe in arb_prefix(),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, p) in entries.iter().enumerate() {
            trie.insert(*p, i);
        }
        let full: Vec<(Prefix, usize)> =
            trie.covering(probe).into_iter().map(|(p, v)| (p, *v)).collect();
        if !full.is_empty() {
            let k = full.len().div_ceil(2);
            let mut cut: Vec<(Prefix, usize)> = Vec::new();
            trie.covering_for_each(probe, |p, v| {
                cut.push((p, *v));
                cut.len() < k
            });
            prop_assert_eq!(cut.as_slice(), &full[..k]);
        }
    }

    #[test]
    fn trie_lpm_agrees_with_scan(entries in proptest::collection::vec(arb_prefix(), 1..40), addr in any::<u32>()) {
        let mut trie = PrefixTrie::new();
        for (i, p) in entries.iter().enumerate() {
            trie.insert(*p, i);
        }
        let addr = Addr::v4(addr);
        let got = trie.longest_match(addr).map(|(p, _)| p);
        let want = entries
            .iter()
            .filter(|p| p.contains(addr))
            .max_by_key(|p| p.len())
            .copied();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn prefix_cover_matches_range_contain(a in arb_prefix(), b in arb_prefix()) {
        prop_assert_eq!(a.covers(b), a.range().contains(b.range()));
        prop_assert_eq!(a.overlaps(b), a.range().overlaps(b.range()));
    }

    #[test]
    fn set_ops_ignore_family_crosstalk(a in arb_set()) {
        let v6 = ResourceSet::from_prefix(Prefix::new(Addr::v6(0x2001 << 112), 16));
        let mixed = a.union(&v6);
        prop_assert_eq!(mixed.difference(&v6), a.clone());
        prop_assert_eq!(mixed.intersection(&a), a.clone());
        prop_assert!(!a.overlaps(&v6));
    }
}

#[test]
fn family_bits_sanity() {
    assert_eq!(Family::V4.bits(), 32);
    assert_eq!(Family::V6.bits(), 128);
}

/// IPv6 variants of the core lattice properties: a small hex universe
/// inside 2001:db8::/32 keeps overlap probability high.
fn arb_v6_range() -> impl Strategy<Value = AddrRange> {
    (0u128..=0xffff, 0u128..=0xffff).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let base = 0x2001_0db8u128 << 96;
        AddrRange::new(
            Addr::v6(base | (lo << 64)),
            Addr::v6(base | (hi << 64) | 0xffff_ffff_ffff_ffff),
        )
    })
}

fn arb_v6_set() -> impl Strategy<Value = ResourceSet> {
    proptest::collection::vec(arb_v6_range(), 0..8).prop_map(ResourceSet::from_ranges)
}

fn arb_v6_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u64>(), 32u8..=64).prop_map(|(v, len)| {
        let base = (0x2001_0db8u128 << 96) | ((v as u128) << 32);
        Prefix::new(Addr::v6(base), len)
    })
}

proptest! {
    #[test]
    fn v6_difference_union_restores(a in arb_v6_set(), b in arb_v6_set()) {
        let rebuilt = a.difference(&b).union(&a.intersection(&b));
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn v6_covers_iff_difference_empty(a in arb_v6_set(), b in arb_v6_set()) {
        prop_assert_eq!(a.contains_set(&b), b.difference(&a).is_empty());
    }

    #[test]
    fn v6_to_prefixes_round_trips(a in arb_v6_set()) {
        prop_assert_eq!(ResourceSet::from_prefixes(a.to_prefixes()), a);
    }

    #[test]
    fn v6_trie_lpm_agrees_with_scan(
        entries in proptest::collection::vec(arb_v6_prefix(), 1..30),
        probe in any::<u64>(),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, p) in entries.iter().enumerate() {
            trie.insert(*p, i);
        }
        let addr = Addr::v6((0x2001_0db8u128 << 96) | ((probe as u128) << 32));
        let got = trie.longest_match(addr).map(|(p, _)| p);
        let want = entries
            .iter()
            .filter(|p| p.contains(addr))
            .max_by_key(|p| p.len())
            .copied();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn v6_prefix_cover_matches_range_contain(a in arb_v6_prefix(), b in arb_v6_prefix()) {
        prop_assert_eq!(a.covers(b), a.range().contains(b.range()));
    }
}
