//! Distributed RPKI repositories and their retrieval protocol.
//!
//! RFC 6481 stores RPKI objects at *publication points*: directories
//! controlled by the **issuer** of the objects, spread across the
//! Internet, fetched out of band over rsync. Three consequences drive
//! the paper, and all three are modelled here:
//!
//! - An issuer can silently delete or overwrite anything in its own
//!   directory ([`Repository`] mutation APIs — Side Effect 2).
//! - A relying party sees only what the transport delivers: files can
//!   be missing or corrupted ([`client::sync_dir`] over `netsim` —
//!   Side Effect 6).
//! - A repository is itself a host with an IP address, so fetching from
//!   it depends on BGP ([`Repository::hosted_at`] + the netsim
//!   reachability oracle — Side Effect 7).
//!
//! Module layout: [`store`] (the at-rest file store plus the RRDP
//! publication logs maintained at write time), [`proto`] (wire messages
//! of the rsync-like list/get protocol), [`client`] (the synchronous
//! sync driver that pumps the event loop), [`rrdp`] (the delta-based
//! RRDP transport: notification/snapshot/delta frames and the polling
//! client state machine, with the rsync path as its downgrade target),
//! [`pubd`] (the publication-server policies: snapshot compaction,
//! delta retention, and the server-side work/serve ledgers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod proto;
pub mod pubd;
pub mod rrdp;
pub mod store;

pub use cache::{sync_dir_caching, sync_dir_incremental, IncrementalStats, SyncCache};
pub use client::{
    probe_dir, sync_dir, sync_dir_with_policy, AttemptReport, DirProbe, FileFate, Freshness,
    RepoRegistry, SyncOutcome, SyncPolicy, SyncReport,
};
pub use proto::{RsyncRequest, RsyncResponse};
pub use pubd::{PubdPolicy, PubdServed, PubdWork, RetentionPolicy, SnapshotDoc, MAX_DELTAS};
pub use rrdp::{
    rrdp_probe_dir, rrdp_sync_dir, DeltaChange, DeltaRef, FallbackCause, RrdpClientState,
    RrdpError, RrdpRequest, RrdpResponse, RrdpStats, RrdpSyncKind,
};
pub use store::{DirLoad, Repository};
